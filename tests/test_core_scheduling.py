"""Tests for power-constrained SOC test scheduling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CaseStudy
from repro.core import (
    BlockTestSpec,
    BlockTestTask,
    GreedyScheduler,
    ScheduleBudget,
    TamCandidate,
    available_schedulers,
    get_scheduler,
    register_scheduler,
    schedule_block_tests,
    schedule_tests,
    tasks_from_flow,
)
from repro.core import TestSchedule as ScheduleClass
from repro.core.scheduling import budget_sweep, generate_block_specs
from repro.dft import partition_wrapper_chains, wrapper_plan
from repro.errors import ConfigError
from repro.soc import build_turbo_eagle


def _tasks():
    return [
        BlockTestTask("B1", 100.0, 2.0),
        BlockTestTask("B2", 80.0, 3.0),
        BlockTestTask("B3", 60.0, 2.5),
        BlockTestTask("B4", 50.0, 1.0),
        BlockTestTask("B5", 200.0, 6.0),
        BlockTestTask("B6", 90.0, 2.0),
    ]


class TestScheduler:
    def test_budget_respected(self):
        schedule = schedule_block_tests(_tasks(), power_budget_mw=7.0)
        for session in schedule.sessions:
            assert session.power_mw <= 7.0
        assert schedule.peak_power_mw <= 7.0

    def test_every_block_scheduled_once(self):
        schedule = schedule_block_tests(_tasks(), power_budget_mw=7.0)
        assert sorted(schedule.blocks()) == [
            "B1", "B2", "B3", "B4", "B5", "B6",
        ]

    def test_parallelism_beats_serial(self):
        schedule = schedule_block_tests(_tasks(), power_budget_mw=10.0)
        assert schedule.makespan_us < schedule.serial_time_us
        assert schedule.speedup > 1.0

    def test_tight_budget_degenerates_to_serial(self):
        # Budget fits exactly one task at a time (max power is 6).
        schedule = schedule_block_tests(_tasks(), power_budget_mw=6.0)
        # B5 (6.0) must be alone; everything else may still pair up.
        b5_session = next(
            s for s in schedule.sessions
            if any(t.block == "B5" for t in s.tasks)
        )
        assert len(b5_session.tasks) == 1

    def test_infeasible_task_rejected(self):
        with pytest.raises(ConfigError):
            schedule_block_tests(_tasks(), power_budget_mw=5.0)

    def test_duplicate_block_rejected(self):
        tasks = _tasks() + [BlockTestTask("B1", 10.0, 1.0)]
        with pytest.raises(ConfigError):
            schedule_block_tests(tasks, power_budget_mw=10.0)

    def test_invalid_task_values(self):
        with pytest.raises(ConfigError):
            BlockTestTask("B1", -1.0, 1.0)
        with pytest.raises(ConfigError):
            BlockTestTask("B1", 1.0, -1.0)
        with pytest.raises(ConfigError):
            schedule_block_tests(_tasks(), power_budget_mw=0.0)

    @settings(max_examples=40, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=1.0, max_value=500.0),
            min_size=1, max_size=10,
        ),
        powers=st.lists(
            st.floats(min_value=0.1, max_value=5.0),
            min_size=10, max_size=10,
        ),
    )
    def test_properties_hold_for_random_tasks(self, times, powers):
        tasks = [
            BlockTestTask(f"X{i}", t, powers[i])
            for i, t in enumerate(times)
        ]
        schedule = schedule_block_tests(tasks, power_budget_mw=5.0)
        assert sorted(schedule.blocks()) == sorted(t.block for t in tasks)
        for session in schedule.sessions:
            assert session.power_mw <= 5.0 + 1e-9
        # Makespan is bounded by serial time and by the longest task.
        assert schedule.makespan_us <= schedule.serial_time_us + 1e-9
        assert schedule.makespan_us >= max(t.test_time_us for t in tasks)


class TestTasksFromFlow:
    @pytest.fixture(scope="class")
    def study(self):
        return CaseStudy(scale="tiny", seed=2007, backtrack_limit=60)

    def test_staged_flow_tasks(self, study):
        flow = study.staged()
        tasks = tasks_from_flow(
            study.design, flow, study.thresholds_mw
        )
        blocks = [t.block for t in tasks]
        assert set(blocks) == {"B1", "B2", "B3", "B4", "B5", "B6"}
        assert all(t.test_time_us > 0 for t in tasks)
        budget = sum(study.thresholds_mw.values())
        schedule = schedule_block_tests(tasks, power_budget_mw=budget)
        assert schedule.speedup >= 1.0


# ----------------------------------------------------------------------
# wrapper/TAM co-optimisation model
# ----------------------------------------------------------------------
class TestTamModel:
    def test_from_base_width_time_tradeoff(self):
        spec = BlockTestSpec.from_base("B1", 120.0, 3.0, [1, 2, 4])
        by_width = {c.width: c for c in spec.candidates}
        assert set(by_width) == {1, 2, 4}
        assert by_width[2].time_us == pytest.approx(60.0)
        assert by_width[4].time_us == pytest.approx(30.0)

    def test_diagonal_tie_break_key(self):
        tall = TamCandidate(4, 3.0, 1.0)
        flat = TamCandidate(1, 3.0, 1.0)
        assert tall.diagonal > flat.diagonal
        assert tall.diagonal == pytest.approx((16 + 9.0) ** 0.5)

    def test_duplicate_widths_rejected(self):
        with pytest.raises(ConfigError):
            BlockTestSpec(
                "B1",
                (TamCandidate(2, 1.0, 1.0), TamCandidate(2, 2.0, 1.0)),
            )

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigError):
            BlockTestSpec("B1", ())

    def test_task_is_width1_spec(self):
        spec = BlockTestTask("B1", 10.0, 2.0).as_spec()
        assert [c.width for c in spec.candidates] == [1]
        assert spec.narrowest().time_us == 10.0


# ----------------------------------------------------------------------
# Scheduler protocol + registry
# ----------------------------------------------------------------------
class TestSchedulerRegistry:
    def test_builtins_registered(self):
        names = available_schedulers()
        assert "greedy" in names and "binpack" in names

    def test_unknown_strategy_named_in_error(self):
        with pytest.raises(ConfigError, match="nosuch"):
            get_scheduler("nosuch")

    def test_custom_strategy_round_trip(self):
        class Custom:
            name = "custom-test"

            def schedule(self, tasks, budget):
                return GreedyScheduler().schedule(tasks, budget)

        register_scheduler("custom-test", Custom)
        try:
            schedule = get_scheduler("custom-test").schedule(
                _tasks(), ScheduleBudget(power_mw=10.0)
            )
            assert sorted(schedule.blocks()) == sorted(
                t.block for t in _tasks()
            )
            with pytest.raises(ConfigError):
                register_scheduler("custom-test", Custom)
        finally:
            from repro.core.scheduling import strategies

            strategies._REGISTRY.pop("custom-test", None)

    def test_schedule_tests_dispatches(self):
        budget = ScheduleBudget(power_mw=10.0)
        greedy = schedule_tests(_tasks(), budget, strategy="greedy")
        packed = schedule_tests(_tasks(), budget, strategy="binpack")
        assert greedy.strategy == "greedy"
        assert packed.strategy == "binpack"
        assert packed.makespan_us <= greedy.makespan_us + 1e-9


# ----------------------------------------------------------------------
# edge-case contracts
# ----------------------------------------------------------------------
class TestEdgeContracts:
    def test_zero_tasks_raise_config_error(self):
        with pytest.raises(ConfigError, match="no tasks"):
            schedule_block_tests([], power_budget_mw=5.0)
        with pytest.raises(ConfigError, match="no tasks"):
            schedule_tests([], ScheduleBudget(power_mw=5.0))

    def test_empty_schedule_speedup_raises_not_zero_division(self):
        empty = ScheduleClass(placements=[], power_budget_mw=5.0)
        with pytest.raises(ConfigError, match="speedup is undefined"):
            empty.speedup

    def test_budget_below_largest_block_names_it(self):
        with pytest.raises(ConfigError, match="'B5'"):
            schedule_block_tests(_tasks(), power_budget_mw=5.0)

    def test_tam_too_narrow_names_block(self):
        specs = [
            BlockTestSpec.from_base("B1", 10.0, 1.0, [1]),
            BlockTestSpec.from_base("WIDE", 10.0, 1.0, [4, 8]),
        ]
        with pytest.raises(ConfigError, match="'WIDE'"):
            schedule_tests(
                specs, ScheduleBudget(power_mw=10.0, tam_width=2)
            )


# ----------------------------------------------------------------------
# bin-packing properties (hypothesis)
# ----------------------------------------------------------------------
def _random_specs(draw_times, draw_powers, draw_widths):
    specs = []
    for i, t in enumerate(draw_times):
        widths = sorted(set(draw_widths[i]))
        specs.append(
            BlockTestSpec.from_base(
                f"X{i}", t, draw_powers[i], widths
            )
        )
    return specs


class TestBinPackingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=1.0, max_value=400.0),
            min_size=2, max_size=8,
        ),
        powers=st.lists(
            st.floats(min_value=0.1, max_value=4.0),
            min_size=8, max_size=8,
        ),
        widths=st.lists(
            st.lists(
                st.sampled_from([1, 2, 4, 8]), min_size=1, max_size=3
            ),
            min_size=8, max_size=8,
        ),
        budget_mw=st.floats(min_value=4.0, max_value=12.0),
        tam_width=st.sampled_from([8, 12, 16, None]),
    )
    def test_envelope_and_tam_always_respected(
        self, times, powers, widths, budget_mw, tam_width
    ):
        # Force width 1 into every candidate list so the TAM limit can
        # never make a block infeasible on its own.
        specs = _random_specs(
            times, powers, [w + [1] for w in widths]
        )
        budget = ScheduleBudget(power_mw=budget_mw, tam_width=tam_width)
        greedy = schedule_tests(specs, budget, strategy="greedy")
        packed = schedule_tests(specs, budget, strategy="binpack")
        for schedule in (greedy, packed):
            schedule.validate()
            assert sorted(schedule.blocks()) == sorted(
                s.block for s in specs
            )
            for _t, power in schedule.power_profile():
                assert power <= budget_mw + 1e-9
            if tam_width is not None:
                for _t, used in schedule.tam_profile():
                    assert used <= tam_width
        # The portfolio guarantee: packing never loses to greedy.
        assert packed.makespan_us <= greedy.makespan_us + 1e-9

    def test_packing_beats_greedy_on_multi_width_design(self):
        # Deterministic multi-width SOC where rectangle packing must
        # find a strictly better makespan than greedy sessions.
        specs = generate_block_specs(8, seed=2007)
        budget = ScheduleBudget(power_mw=15.0, tam_width=16)
        greedy = schedule_tests(specs, budget, strategy="greedy")
        packed = schedule_tests(specs, budget, strategy="binpack")
        packed.validate()
        assert packed.makespan_us < greedy.makespan_us


# ----------------------------------------------------------------------
# wrapper partitioning
# ----------------------------------------------------------------------
class TestWrapperPartitioning:
    def test_round_robin_is_balanced(self):
        chains = partition_wrapper_chains(list(range(10)), 4)
        lengths = sorted(len(c) for c in chains)
        assert lengths == [2, 2, 3, 3]
        assert sorted(x for c in chains for x in c) == list(range(10))

    def test_width_beyond_cells_collapses(self):
        chains = partition_wrapper_chains([7, 8], 5)
        assert len(chains) == 2

    def test_no_cells_raises(self):
        from repro.errors import ScanError

        with pytest.raises(ScanError):
            partition_wrapper_chains([], 2)

    def test_design_width_options_and_plan(self):
        design = build_turbo_eagle("tiny", seed=2007)
        for block in design.blocks():
            options = design.tam_width_options(block)
            assert options, f"{block} has no width options"
            assert options == sorted(set(options))
            ceiling = max(options)
            plan = wrapper_plan(design, block, ceiling)
            assert plan.n_cells == len(design.flops_in_block(block))
            depth1 = wrapper_plan(design, block, 1).max_chain_length
            assert plan.max_chain_length <= depth1


# ----------------------------------------------------------------------
# synthetic SOC families
# ----------------------------------------------------------------------
class TestSyntheticSocs:
    def test_deterministic(self):
        a = generate_block_specs(12, seed=42)
        b = generate_block_specs(12, seed=42)
        assert a == b
        assert len(a) == 12

    def test_budget_sweep_always_feasible(self):
        specs = generate_block_specs(10, seed=7)
        for budget_mw in budget_sweep(specs):
            schedule = schedule_tests(
                specs, ScheduleBudget(power_mw=budget_mw, tam_width=16)
            )
            schedule.validate()
            assert sorted(schedule.blocks()) == sorted(
                s.block for s in specs
            )
