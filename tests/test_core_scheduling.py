"""Tests for power-constrained SOC test scheduling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CaseStudy
from repro.core import (
    BlockTestTask,
    schedule_block_tests,
    tasks_from_flow,
)
from repro.errors import ConfigError


def _tasks():
    return [
        BlockTestTask("B1", 100.0, 2.0),
        BlockTestTask("B2", 80.0, 3.0),
        BlockTestTask("B3", 60.0, 2.5),
        BlockTestTask("B4", 50.0, 1.0),
        BlockTestTask("B5", 200.0, 6.0),
        BlockTestTask("B6", 90.0, 2.0),
    ]


class TestScheduler:
    def test_budget_respected(self):
        schedule = schedule_block_tests(_tasks(), power_budget_mw=7.0)
        for session in schedule.sessions:
            assert session.power_mw <= 7.0
        assert schedule.peak_power_mw <= 7.0

    def test_every_block_scheduled_once(self):
        schedule = schedule_block_tests(_tasks(), power_budget_mw=7.0)
        assert sorted(schedule.blocks()) == [
            "B1", "B2", "B3", "B4", "B5", "B6",
        ]

    def test_parallelism_beats_serial(self):
        schedule = schedule_block_tests(_tasks(), power_budget_mw=10.0)
        assert schedule.makespan_us < schedule.serial_time_us
        assert schedule.speedup > 1.0

    def test_tight_budget_degenerates_to_serial(self):
        # Budget fits exactly one task at a time (max power is 6).
        schedule = schedule_block_tests(_tasks(), power_budget_mw=6.0)
        # B5 (6.0) must be alone; everything else may still pair up.
        b5_session = next(
            s for s in schedule.sessions
            if any(t.block == "B5" for t in s.tasks)
        )
        assert len(b5_session.tasks) == 1

    def test_infeasible_task_rejected(self):
        with pytest.raises(ConfigError):
            schedule_block_tests(_tasks(), power_budget_mw=5.0)

    def test_duplicate_block_rejected(self):
        tasks = _tasks() + [BlockTestTask("B1", 10.0, 1.0)]
        with pytest.raises(ConfigError):
            schedule_block_tests(tasks, power_budget_mw=10.0)

    def test_invalid_task_values(self):
        with pytest.raises(ConfigError):
            BlockTestTask("B1", -1.0, 1.0)
        with pytest.raises(ConfigError):
            BlockTestTask("B1", 1.0, -1.0)
        with pytest.raises(ConfigError):
            schedule_block_tests(_tasks(), power_budget_mw=0.0)

    @settings(max_examples=40, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=1.0, max_value=500.0),
            min_size=1, max_size=10,
        ),
        powers=st.lists(
            st.floats(min_value=0.1, max_value=5.0),
            min_size=10, max_size=10,
        ),
    )
    def test_properties_hold_for_random_tasks(self, times, powers):
        tasks = [
            BlockTestTask(f"X{i}", t, powers[i])
            for i, t in enumerate(times)
        ]
        schedule = schedule_block_tests(tasks, power_budget_mw=5.0)
        assert sorted(schedule.blocks()) == sorted(t.block for t in tasks)
        for session in schedule.sessions:
            assert session.power_mw <= 5.0 + 1e-9
        # Makespan is bounded by serial time and by the longest task.
        assert schedule.makespan_us <= schedule.serial_time_us + 1e-9
        assert schedule.makespan_us >= max(t.test_time_us for t in tasks)


class TestTasksFromFlow:
    @pytest.fixture(scope="class")
    def study(self):
        return CaseStudy(scale="tiny", seed=2007, backtrack_limit=60)

    def test_staged_flow_tasks(self, study):
        flow = study.staged()
        tasks = tasks_from_flow(
            study.design, flow, study.thresholds_mw
        )
        blocks = [t.block for t in tasks]
        assert set(blocks) == {"B1", "B2", "B3", "B4", "B5", "B6"}
        assert all(t.test_time_us > 0 for t in tasks)
        budget = sum(study.thresholds_mw.values())
        schedule = schedule_block_tests(tasks, power_budget_mw=budget)
        assert schedule.speedup >= 1.0
