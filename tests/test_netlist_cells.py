"""Unit tests for repro.netlist.cells — bit-parallel logic functions."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.netlist.cells import (
    CELL_ARITY,
    CELL_FUNCTIONS,
    controlling_value,
    evaluate_kind,
    output_inversion,
)

# Reference single-bit semantics for every kind.
_REFERENCE = {
    "INV": lambda v: 1 - v[0],
    "BUF": lambda v: v[0],
    "CLKBUF": lambda v: v[0],
    "AND2": lambda v: v[0] & v[1],
    "AND3": lambda v: v[0] & v[1] & v[2],
    "AND4": lambda v: v[0] & v[1] & v[2] & v[3],
    "NAND2": lambda v: 1 - (v[0] & v[1]),
    "NAND3": lambda v: 1 - (v[0] & v[1] & v[2]),
    "NAND4": lambda v: 1 - (v[0] & v[1] & v[2] & v[3]),
    "OR2": lambda v: v[0] | v[1],
    "OR3": lambda v: v[0] | v[1] | v[2],
    "OR4": lambda v: v[0] | v[1] | v[2] | v[3],
    "NOR2": lambda v: 1 - (v[0] | v[1]),
    "NOR3": lambda v: 1 - (v[0] | v[1] | v[2]),
    "NOR4": lambda v: 1 - (v[0] | v[1] | v[2] | v[3]),
    "XOR2": lambda v: v[0] ^ v[1],
    "XNOR2": lambda v: 1 - (v[0] ^ v[1]),
    "MUX2": lambda v: v[1] if v[2] else v[0],
    "AOI21": lambda v: 1 - ((v[0] & v[1]) | v[2]),
    "OAI21": lambda v: 1 - ((v[0] | v[1]) & v[2]),
    "TIE0": lambda v: 0,
    "TIE1": lambda v: 1,
}


@pytest.mark.parametrize("kind", sorted(CELL_FUNCTIONS))
def test_truth_table_matches_reference(kind):
    """Exhaustive single-bit truth table check for every kind."""
    arity = CELL_ARITY[kind]
    for bits in itertools.product((0, 1), repeat=arity):
        got = evaluate_kind(kind, list(bits), mask=1)
        assert got == _REFERENCE[kind](bits), (kind, bits)


@pytest.mark.parametrize("kind", sorted(CELL_FUNCTIONS))
def test_bit_parallel_matches_bitwise(kind):
    """Packed evaluation equals per-bit evaluation on a 7-pattern batch."""
    arity = CELL_ARITY[kind]
    n = 7
    mask = (1 << n) - 1
    words = [0b1011001, 0b0111010, 0b1100110, 0b0101011][:arity]
    packed = evaluate_kind(kind, words, mask)
    for bit in range(n):
        single = [(w >> bit) & 1 for w in words]
        assert (packed >> bit) & 1 == _REFERENCE[kind](single)


def test_unknown_kind_raises():
    with pytest.raises(NetlistError):
        evaluate_kind("NAND9", [1, 2], 3)


def test_wrong_arity_raises():
    with pytest.raises(NetlistError):
        evaluate_kind("NAND2", [1], 1)


def test_controlling_values():
    assert controlling_value("AND3") == 0
    assert controlling_value("NAND2") == 0
    assert controlling_value("OR4") == 1
    assert controlling_value("NOR2") == 1
    assert controlling_value("XOR2") is None
    assert controlling_value("MUX2") is None


def test_output_inversion_flags():
    assert output_inversion("NAND2")
    assert output_inversion("NOR3")
    assert output_inversion("INV")
    assert not output_inversion("AND2")
    assert not output_inversion("BUF")


@given(
    a=st.integers(min_value=0, max_value=(1 << 64) - 1),
    b=st.integers(min_value=0, max_value=(1 << 64) - 1),
)
def test_demorgan_packed(a, b):
    """Property: NAND(a,b) == OR(INV a, INV b) at any packed width."""
    mask = (1 << 64) - 1
    nand = evaluate_kind("NAND2", [a, b], mask)
    de_morgan = evaluate_kind(
        "OR2",
        [evaluate_kind("INV", [a], mask), evaluate_kind("INV", [b], mask)],
        mask,
    )
    assert nand == de_morgan


@given(
    d0=st.integers(min_value=0, max_value=255),
    d1=st.integers(min_value=0, max_value=255),
)
def test_mux_extremes(d0, d1):
    """Property: MUX with sel all-0 yields d0, all-1 yields d1."""
    mask = 255
    assert evaluate_kind("MUX2", [d0, d1, 0], mask) == d0
    assert evaluate_kind("MUX2", [d0, d1, mask], mask) == d1
