"""Tests for the case-study artifact exporter, its CLI command, the
checkpoint store and the structured run report."""

from __future__ import annotations

import json
import os

import pytest

from repro import CaseStudy
from repro.__main__ import main
from repro.errors import CheckpointError
from repro.perf.resilient import ChunkFailure, ExecutionReport
from repro.reporting import (
    RUN_COMPLETED,
    RUN_PARTIAL,
    CheckpointStore,
    RunReport,
    config_fingerprint,
    export_case_study,
)


@pytest.fixture(scope="module")
def study():
    return CaseStudy(scale="tiny", seed=2007, backtrack_limit=60)


class TestExport:
    def test_all_artifacts_written(self, study, tmp_path):
        written = export_case_study(study, str(tmp_path))
        names = {os.path.basename(p) for p in written}
        expected = {
            "table1_design.txt",
            "table2_domains.txt",
            "table3_case1_full_cycle.csv",
            "table3_case2_half_cycle.csv",
            "table4_cap_vs_scap.txt",
            "fig1_floorplan.txt",
            "fig2_scap_conventional_b5.csv",
            "fig6_scap_staged_b5.csv",
            "fig6_meta.txt",
            "fig3_P1_vdd_map.csv",
            "fig3_P1_vdd_map.txt",
            "fig3_P2_vdd_map.csv",
            "fig3_P2_vdd_map.txt",
            "fig4_coverage_conventional.csv",
            "fig4_coverage_staged.csv",
            "fig7_endpoint_delays.csv",
            "headline.txt",
        }
        assert expected.issubset(names)
        for path in written:
            assert os.path.getsize(path) > 0

    def test_csv_contents_parse(self, study, tmp_path):
        export_case_study(study, str(tmp_path))
        fig2 = (tmp_path / "fig2_scap_conventional_b5.csv").read_text()
        header, *rows = fig2.strip().splitlines()
        assert header == "pattern,scap_mw"
        assert len(rows) == study.conventional().n_patterns
        for row in rows[:5]:
            idx, val = row.split(",")
            int(idx)
            float(val)

    def test_export_idempotent(self, study, tmp_path):
        first = export_case_study(study, str(tmp_path))
        second = export_case_study(study, str(tmp_path))
        assert sorted(first) == sorted(second)


class TestExportCli:
    def test_cli_export(self, tmp_path, capsys):
        out = tmp_path / "arts"
        assert main([
            "export", "--scale", "tiny", "--out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "wrote" in printed
        assert (out / "headline.txt").exists()


class TestCheckpointStore:
    def test_save_load_roundtrip_and_order(self, tmp_path):
        store = CheckpointStore(str(tmp_path), fingerprint="fp")
        store.save("stage_b", {"x": 1}, meta={"n": 1})
        store.save("stage_a", [1, 2, 3])
        assert store.has("stage_a") and store.has("stage_b")
        assert not store.has("stage_c")
        assert store.keys() == ["stage_b", "stage_a"]  # completion order
        assert store.load("stage_b") == {"x": 1}
        assert store.meta("stage_b") == {"n": 1}
        assert store.saves == 2 and store.loads == 1

    def test_reopen_same_fingerprint_resumes(self, tmp_path):
        CheckpointStore(str(tmp_path), "fp").save("s", 42)
        again = CheckpointStore(str(tmp_path), "fp")
        assert again.load("s") == 42

    def test_fingerprint_mismatch_starts_fresh(self, tmp_path):
        CheckpointStore(str(tmp_path), "fp1").save("s", 42)
        with pytest.warns(RuntimeWarning, match="different .*configuration"):
            fresh = CheckpointStore(str(tmp_path), "fp2")
        assert not fresh.has("s")

    def test_discard_and_clear(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "fp")
        store.save("a", 1)
        store.save("b", 2)
        store.discard("a")
        assert not store.has("a") and store.has("b")
        store.clear()
        assert store.keys() == []

    def test_corrupt_payload_raises_checkpoint_error(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "fp")
        store.save("s", {"big": list(range(100))})
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        payload = tmp_path / manifest["stages"]["s"]["file"]
        payload.write_bytes(b"not a pickle")
        with pytest.raises(CheckpointError, match="corrupt"):
            store.load("s")

    def test_missing_key_raises(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with pytest.raises(CheckpointError):
            store.load("nope")

    def test_try_load_treats_truncated_payload_as_absent(self, tmp_path):
        """A partially-written stage file means "recompute", not death.

        The payload is truncated mid-pickle (a crash on a filesystem
        without atomic rename); ``try_load`` warns, drops the stale
        manifest entry, and returns None so the flow recomputes.
        """
        store = CheckpointStore(str(tmp_path), "fp")
        store.save("s", {"big": list(range(100))})
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        payload = tmp_path / manifest["stages"]["s"]["file"]
        payload.write_bytes(payload.read_bytes()[:10])  # truncate
        with pytest.warns(RuntimeWarning, match="recomputed"):
            assert store.try_load("s") is None
        # the broken entry was discarded: later calls are silent misses
        assert not store.has("s")
        assert store.try_load("s") is None
        # and the stage can simply be saved again
        store.save("s", {"big": [1]})
        assert store.try_load("s") == {"big": [1]}

    def test_try_load_missing_stage_is_silent_none(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "fp")
        assert store.try_load("never-saved") is None

    def test_filesystem_hostile_keys(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "fp")
        key = "stage/with:odd*chars and spaces" + "x" * 200
        store.save(key, "payload")
        assert CheckpointStore(str(tmp_path), "fp").load(key) == "payload"

    def test_config_fingerprint_sensitivity(self):
        a = config_fingerprint(scale="tiny", seed=1)
        assert a == config_fingerprint(seed=1, scale="tiny")  # order-free
        assert a != config_fingerprint(scale="tiny", seed=2)
        assert a != config_fingerprint(scale="small", seed=1)


class TestRunReport:
    def _report(self):
        rep = RunReport(flow="demo", checkpoint_dir="/tmp/ck")
        rep.record_stage("s0", "completed", from_checkpoint=True)
        rep.record_stage("s1", "completed")
        rep.record_stage("s2", "pending")
        return rep

    def test_stage_queries(self):
        rep = self._report()
        assert rep.completed_stages() == ["s0", "s1"]
        assert rep.resumed_stages() == ["s0"]
        assert rep.pending_stages() == ["s2"]

    def test_absorb_execution_report(self):
        rep = self._report()
        exec_rep = ExecutionReport(
            n_chunks=4,
            chunk_attempts={0: 1, 1: 3},
            failures=[ChunkFailure(1, 0, "transient", "x"),
                      ChunkFailure(1, 1, "transient", "x")],
        )
        rep.absorb_execution_report("s1", exec_rep)
        assert rep.retries["s1"] == 2
        assert rep.total_retries == 2
        assert len(rep.failures) == 2
        assert rep.failures[0]["kind"] == "transient"

    def test_json_roundtrip_and_save(self, tmp_path):
        rep = self._report()
        rep.status = RUN_PARTIAL
        rep.error = "RuntimeError('x')"
        path = tmp_path / "report.json"
        rep.save(str(path))
        data = json.loads(path.read_text())
        assert data["flow"] == "demo"
        assert data["status"] == RUN_PARTIAL
        assert data["completed_stages"] == ["s0", "s1"]
        assert data["error"] == "RuntimeError('x')"
        assert data == rep.to_dict()

    def test_default_status_completed(self):
        assert RunReport(flow="f").status == RUN_COMPLETED
