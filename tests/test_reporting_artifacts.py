"""Tests for the case-study artifact exporter and its CLI command."""

from __future__ import annotations

import os

import pytest

from repro import CaseStudy
from repro.__main__ import main
from repro.reporting import export_case_study


@pytest.fixture(scope="module")
def study():
    return CaseStudy(scale="tiny", seed=2007, backtrack_limit=60)


class TestExport:
    def test_all_artifacts_written(self, study, tmp_path):
        written = export_case_study(study, str(tmp_path))
        names = {os.path.basename(p) for p in written}
        expected = {
            "table1_design.txt",
            "table2_domains.txt",
            "table3_case1_full_cycle.csv",
            "table3_case2_half_cycle.csv",
            "table4_cap_vs_scap.txt",
            "fig1_floorplan.txt",
            "fig2_scap_conventional_b5.csv",
            "fig6_scap_staged_b5.csv",
            "fig6_meta.txt",
            "fig3_P1_vdd_map.csv",
            "fig3_P1_vdd_map.txt",
            "fig3_P2_vdd_map.csv",
            "fig3_P2_vdd_map.txt",
            "fig4_coverage_conventional.csv",
            "fig4_coverage_staged.csv",
            "fig7_endpoint_delays.csv",
            "headline.txt",
        }
        assert expected.issubset(names)
        for path in written:
            assert os.path.getsize(path) > 0

    def test_csv_contents_parse(self, study, tmp_path):
        export_case_study(study, str(tmp_path))
        fig2 = (tmp_path / "fig2_scap_conventional_b5.csv").read_text()
        header, *rows = fig2.strip().splitlines()
        assert header == "pattern,scap_mw"
        assert len(rows) == study.conventional().n_patterns
        for row in rows[:5]:
            idx, val = row.split(",")
            int(idx)
            float(val)

    def test_export_idempotent(self, study, tmp_path):
        first = export_case_study(study, str(tmp_path))
        second = export_case_study(study, str(tmp_path))
        assert sorted(first) == sorted(second)


class TestExportCli:
    def test_cli_export(self, tmp_path, capsys):
        out = tmp_path / "arts"
        assert main([
            "export", "--scale", "tiny", "--out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "wrote" in printed
        assert (out / "headline.txt").exists()
