"""The vectorised logic-simulation engine vs the bigint reference.

The numpy path groups gates by (level, kind, fan-in) and propagates a
``(n_nets, n_words)`` uint64 matrix; bitwise ops never mix bit
positions, so for every netlist and every pattern count it must be
bit-for-bit the bigint engine.  These tests pin that, plus the
auto-dispatch thresholds and the engine parameter's contract.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.logic import (
    VECTOR_MAX_PATTERNS,
    VECTOR_MIN_GATES,
    VECTOR_MIN_PATTERNS,
    LogicSim,
    loc_launch_capture,
    pack_matrix,
    values_to_words,
    words_to_values,
)
from repro.soc import build_turbo_eagle

from .strategies import random_netlist


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=2007)


def _state(netlist, n_patterns, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(
        0, 2, size=(n_patterns, netlist.n_flops), dtype=np.int8
    )
    return pack_matrix(matrix)


class TestWordCodec:
    @pytest.mark.parametrize("n_patterns", [1, 3, 63, 64, 65, 150, 256])
    def test_round_trip(self, n_patterns):
        rng = np.random.default_rng(n_patterns)
        mask = (1 << n_patterns) - 1
        values = [
            int.from_bytes(rng.bytes((n_patterns + 7) // 8), "little") & mask
            for _ in range(17)
        ]
        words = values_to_words(values, n_patterns)
        assert words.dtype == np.uint64
        assert words.shape == (17, (n_patterns + 63) // 64)
        assert words_to_values(words, mask) == values

    def test_tail_bits_masked_out(self):
        # A stray bit above the pattern count must not survive the
        # conversion back (the vector engine relies on this for the
        # final tail lane).
        words = np.full((1, 1), np.uint64(0xFF), dtype=np.uint64)
        assert words_to_values(words, 0b111) == [0b111]


class TestEngineEquivalence:
    @pytest.mark.parametrize("n_patterns", [1, 5, 64, 150, 256])
    def test_soc_run_matches(self, design, n_patterns):
        sim = LogicSim(design.netlist)
        packed, mask = _state(design.netlist, n_patterns, n_patterns)
        big = sim.run(packed, mask=mask, engine="bigint")
        vec = sim.run(packed, mask=mask, engine="vector")
        assert vec == big

    def test_with_primary_inputs(self, design):
        nl = design.netlist
        sim = LogicSim(nl)
        packed, mask = _state(nl, 96, 42)
        rng = np.random.default_rng(43)
        pi = {
            net: int(rng.integers(0, 1 << 63)) & mask
            for net in nl.primary_inputs
        }
        assert sim.run(packed, pi=pi, mask=mask, engine="vector") == sim.run(
            packed, pi=pi, mask=mask, engine="bigint"
        )

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_random_netlists_match(self, data):
        nl = data.draw(random_netlist())
        sim = LogicSim(nl)
        n_pat = data.draw(st.integers(min_value=1, max_value=130))
        packed, mask = _state(nl, n_pat, data.draw(st.integers(0, 999)))
        assert sim.run(packed, mask=mask, engine="vector") == sim.run(
            packed, mask=mask, engine="bigint"
        )

    def test_loc_cycle_unaffected_by_engine(self, design):
        # The launch-capture helper sits above run(); both engines must
        # produce identical frames through it.
        nl = design.netlist
        packed, mask = _state(nl, 64, 5)
        sim = LogicSim(nl)
        cyc = loc_launch_capture(sim, packed, design.dominant_domain(),
                                 mask=mask)
        forced = sim.run(packed, mask=mask, engine="vector")
        assert forced == sim.run(packed, mask=mask, engine="bigint")
        assert cyc.frame1[: nl.n_nets] == sim.run(
            packed, mask=mask
        )


class TestAutoDispatch:
    def test_unknown_engine_rejected(self, design):
        sim = LogicSim(design.netlist)
        with pytest.raises(SimulationError):
            sim.run({}, mask=1, engine="quantum")

    def test_profitability_thresholds(self, design):
        sim = LogicSim(design.netlist)
        big_design = design.netlist.n_gates >= VECTOR_MIN_GATES
        assert sim._vector_profitable(VECTOR_MIN_PATTERNS) == big_design
        assert not sim._vector_profitable(VECTOR_MIN_PATTERNS - 1)
        assert not sim._vector_profitable(VECTOR_MAX_PATTERNS + 1)

    def test_small_netlist_stays_bigint(self, tiny_comb):
        sim = LogicSim(tiny_comb)
        assert not sim._vector_profitable(64)

    def test_vector_plan_covers_every_gate(self, design):
        sim = LogicSim(design.netlist)
        plan = sim.vector_plan()
        covered = sum(outs.size for _kind, _ins, outs in plan)
        assert covered == design.netlist.n_gates
