"""Tests for parasitic extraction and the Verilog writer/parser."""

from __future__ import annotations

import io

import pytest

from repro.netlist import (
    Netlist,
    extract_net_caps,
    parse_verilog,
    write_verilog,
)
from repro.netlist.parasitics import WIRE_CAP_PER_UM


class TestParasitics:
    def test_every_loaded_net_has_cap(self, tiny_comb):
        model = extract_net_caps(tiny_comb)
        n1 = tiny_comb.net_id("n1")
        assert model.cap_of(n1) > 0

    def test_cap_includes_driver_sink_and_wire(self, tiny_seq):
        model = extract_net_caps(tiny_seq)
        lib = tiny_seq.library
        q0 = tiny_seq.net_id("q0")
        # q0: driven by f0 (SDFFX1 out cap), loads u_inv.A and u_and.B.
        expected_pins = (
            lib.cell("SDFFX1").output_cap_ff
            + lib.cell("INVX1").input_cap_ff
            + lib.cell("AND2X1").input_cap_ff
        )
        # Placement exists, so wire cap is HPWL-based.
        # pins at f0(5,5), u_inv(10,10), u_and(20,10): HPWL = 15 + 5 = 20.
        expected = expected_pins + WIRE_CAP_PER_UM * 20.0
        assert model.cap_of(q0) == pytest.approx(expected)

    def test_unplaced_design_uses_fanout_fallback(self, tiny_comb):
        model = extract_net_caps(tiny_comb)
        a = tiny_comb.net_id("a")
        lib = tiny_comb.library
        expected = lib.cell("NAND2X1").input_cap_ff + model.wire_cap_per_fanout
        assert model.cap_of(a) == pytest.approx(expected)

    def test_total_cap_positive(self, tiny_seq):
        assert extract_net_caps(tiny_seq).total_cap_ff > 0


class TestVerilogRoundTrip:
    def _roundtrip(self, nl: Netlist) -> Netlist:
        buf = io.StringIO()
        write_verilog(nl, buf)
        buf.seek(0)
        return parse_verilog(buf)

    def test_comb_roundtrip(self, tiny_comb):
        back = self._roundtrip(tiny_comb)
        assert back.name == tiny_comb.name
        assert back.n_gates == tiny_comb.n_gates
        assert len(back.primary_inputs) == 3
        assert len(back.primary_outputs) == 1
        assert {g.cell for g in back.gates} == {"NAND2X1", "XOR2X1"}

    def test_seq_roundtrip_preserves_metadata(self, tiny_seq):
        back = self._roundtrip(tiny_seq)
        assert back.n_flops == 2
        f0 = next(f for f in back.flops if f.name == "f0")
        assert f0.clock_domain == "clka"
        assert f0.is_scan
        assert f0.pos == (5.0, 5.0)

    def test_roundtrip_preserves_connectivity(self, tiny_seq):
        back = self._roundtrip(tiny_seq)
        inv = next(g for g in back.gates if g.name == "u_inv")
        f1 = next(f for f in back.flops if f.name == "f1")
        assert inv.output == f1.d

    def test_verilog_output_mentions_module(self, tiny_comb):
        buf = io.StringIO()
        write_verilog(tiny_comb, buf)
        text = buf.getvalue()
        assert "module tiny_comb" in text
        assert "endmodule" in text
        assert "NAND2X1 u_nand" in text
