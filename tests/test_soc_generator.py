"""Tests for the SOC generator, clock trees and design characteristics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.netlist import check_netlist
from repro.netlist.levelize import max_logic_depth
from repro.soc import build_turbo_eagle, scale_preset
from repro.soc.clocks import build_clock_tree, turbo_eagle_domains


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=11)


class TestGenerator:
    def test_structurally_clean(self, design):
        assert check_netlist(design.netlist) == []

    def test_deterministic_for_seed(self):
        d1 = build_turbo_eagle("tiny", seed=3)
        d2 = build_turbo_eagle("tiny", seed=3)
        assert d1.netlist.net_names == d2.netlist.net_names
        assert [g.cell for g in d1.netlist.gates] == [
            g.cell for g in d2.netlist.gates
        ]
        assert [f.chain for f in d1.netlist.flops] == [
            f.chain for f in d2.netlist.flops
        ]

    def test_different_seeds_differ(self):
        d1 = build_turbo_eagle("tiny", seed=3)
        d2 = build_turbo_eagle("tiny", seed=4)
        assert [g.inputs for g in d1.netlist.gates] != [
            g.inputs for g in d2.netlist.gates
        ]

    def test_six_blocks_populated(self, design):
        for block in design.blocks():
            assert design.flops_in_block(block), block
            assert design.gates_in_block(block), block

    def test_clka_dominant(self, design):
        assert design.dominant_domain() == "clka"
        clka = len(design.flops_in_domain("clka"))
        total = design.netlist.n_flops
        assert 0.6 < clka / total < 0.95

    def test_clka_covers_all_blocks(self, design):
        assert design.blocks_covered_by_domain("clka") == [
            "B1", "B2", "B3", "B4", "B5", "B6",
        ]

    def test_single_block_domains(self, design):
        assert design.blocks_covered_by_domain("clkb") == ["B1"]
        assert design.blocks_covered_by_domain("clkf") == ["B2"]

    def test_negative_edge_flops_exist(self, design):
        neg = [f for f in design.netlist.flops if f.edge == "neg"]
        assert len(neg) == scale_preset("tiny").n_neg_edge
        assert all(f.clock_domain == "clka" for f in neg)
        assert all(f.block == "B1" for f in neg)

    def test_b5_is_power_dense(self, design):
        # More gates per flop in B5 than in the peripheral blocks.
        density = {
            b: len(design.gates_in_block(b))
            / max(1, len(design.flops_in_block(b)))
            for b in design.blocks()
        }
        assert density["B5"] >= max(
            v for b, v in density.items() if b != "B5"
        ) * 0.9

    def test_all_instances_placed_in_their_block(self, design):
        fp = design.floorplan
        for g in design.netlist.gates:
            assert g.pos is not None
            if g.block is not None:  # bus fabric is top-level glue
                assert fp.block_at(*g.pos) == g.block

    def test_depth_matches_preset(self, design):
        depth = max_logic_depth(design.netlist)
        # cloud depth + mux fabric + observation trees
        assert depth >= scale_preset("tiny").depth

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigError):
            build_turbo_eagle("galactic")

    def test_characteristics_table(self, design):
        char = design.characteristics()
        assert char["clock_domains"] == 6
        assert char["scan_chains"] == scale_preset("tiny").n_chains
        assert char["total_scan_flops"] == design.netlist.n_flops

    def test_domain_table_rows(self, design):
        rows = design.domain_table()
        assert len(rows) == 6
        total = sum(r["scan_cells"] for r in rows)
        assert total == design.netlist.n_flops


class TestClockTree:
    def test_every_domain_flop_has_a_leaf(self, design):
        for name, tree in design.clock_trees.items():
            flops = design.flops_in_domain(name)
            assert set(tree.leaf_of_flop) == set(flops)

    def test_insertion_delay_positive(self, design):
        tree = design.clock_trees["clka"]
        for fi in design.flops_in_domain("clka"):
            assert tree.insertion_delay_ns(fi) > 0

    def test_skew_small_vs_period(self, design):
        tree = design.clock_trees["clka"]
        period = design.domains["clka"].period_ns
        assert 0 <= tree.skew_ns() < 0.25 * period

    def test_nearby_flops_have_similar_delay(self, design):
        tree = design.clock_trees["clka"]
        # Two flops sharing a leaf buffer differ only in local wire.
        by_leaf = {}
        for fi, leaf in tree.leaf_of_flop.items():
            by_leaf.setdefault(leaf, []).append(fi)
        group = next(g for g in by_leaf.values() if len(g) >= 2)
        d0 = tree.insertion_delay_ns(group[0])
        d1 = tree.insertion_delay_ns(group[1])
        assert abs(d0 - d1) < 0.2

    def test_delay_scale_hook_slows_tree(self, design):
        tree = design.clock_trees["clka"]
        fi = design.flops_in_domain("clka")[0]
        nominal = tree.insertion_delay_ns(fi)
        scaled = tree.insertion_delay_ns(
            fi, delay_scale=lambda buf, d: d * 1.5
        )
        assert scaled > nominal

    def test_foreign_flop_rejected(self, design):
        tree = design.clock_trees["clkb"]
        clka_flop = design.flops_in_domain("clka")[0]
        with pytest.raises(ConfigError):
            tree.insertion_delay_ns(clka_flop)

    def test_switched_cap_positive(self, design):
        assert design.clock_trees["clka"].switched_cap_ff() > 0

    def test_empty_domain_tree(self):
        tree = build_clock_tree("clkx", {}, root_pos=(0.0, 0.0))
        assert tree.n_buffers == 1
        assert tree.skew_ns() == 0.0

    def test_domain_specs(self):
        domains = turbo_eagle_domains()
        assert domains["clka"].period_ns == pytest.approx(20.0)
        assert domains["clkb"].freq_mhz == 100.0
