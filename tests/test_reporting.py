"""Tests for the reporting helpers."""

from __future__ import annotations

from repro.reporting import curve_to_csv, format_table, series_to_csv


class TestFormatTable:
    def test_basic_alignment(self):
        rows = [
            {"block": "B1", "power": 1.23456},
            {"block": "B5", "power": 10.5},
        ]
        out = format_table(rows)
        lines = out.splitlines()
        assert lines[0].startswith("block")
        assert "1.235" in out  # default float format
        assert "10.500" in out
        # All rows same width.
        assert len({len(line) for line in lines}) <= 2

    def test_column_selection_and_title(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        out = format_table(rows, columns=["c", "a"], title="T")
        assert out.splitlines()[0] == "T"
        header = out.splitlines()[1]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_empty(self):
        assert "(no rows)" in format_table([])
        assert format_table([], title="X").startswith("X")

    def test_missing_keys_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        out = format_table(rows, columns=["a", "b"])
        assert "3" in out


class TestSeriesCsv:
    def test_series(self):
        csv = series_to_csv([1.5, 2.5])
        assert csv.splitlines() == ["index,value", "0,1.5", "1,2.5"]

    def test_curve(self):
        csv = curve_to_csv([(0, 0.5), (3, 0.75)])
        assert csv.splitlines() == [
            "pattern,coverage", "0,0.5", "3,0.75",
        ]
