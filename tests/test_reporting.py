"""Tests for the reporting helpers."""

from __future__ import annotations

from repro.reporting import curve_to_csv, format_table, series_to_csv


class TestFormatTable:
    def test_basic_alignment(self):
        rows = [
            {"block": "B1", "power": 1.23456},
            {"block": "B5", "power": 10.5},
        ]
        out = format_table(rows)
        lines = out.splitlines()
        assert lines[0].startswith("block")
        assert "1.235" in out  # default float format
        assert "10.500" in out
        # All rows same width.
        assert len({len(line) for line in lines}) <= 2

    def test_column_selection_and_title(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        out = format_table(rows, columns=["c", "a"], title="T")
        assert out.splitlines()[0] == "T"
        header = out.splitlines()[1]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_empty(self):
        assert "(no rows)" in format_table([])
        assert format_table([], title="X").startswith("X")

    def test_missing_keys_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        out = format_table(rows, columns=["a", "b"])
        assert "3" in out


class TestSeriesCsv:
    def test_series(self):
        csv = series_to_csv([1.5, 2.5])
        assert csv.splitlines() == ["index,value", "0,1.5", "1,2.5"]

    def test_curve(self):
        csv = curve_to_csv([(0, 0.5), (3, 0.75)])
        assert csv.splitlines() == [
            "pattern,coverage", "0,0.5", "3,0.75",
        ]


class TestRunReportRoundTrip:
    def _build(self):
        from repro.reporting import RunReport

        report = RunReport(flow="noise_aware_staged", status="completed")
        report.record_stage(
            "stage0", "completed",
            detail={"patterns": 12, "elapsed_s": 1.25},
        )
        report.record_stage(
            "stage1", "completed", from_checkpoint=True,
            detail={"patterns": 7},
        )
        report.retries = {"stage0": 2}
        report.failures = [{"stage": "stage0", "kind": "crash", "chunk": 3}]
        report.drc = {"status": "clean", "violations": 0}
        report.telemetry = {
            "run_id": "rt1",
            "metrics": {"atpg.patterns_generated": {
                "kind": "counter", "series": {"": 19.0}}},
        }
        return report

    def test_save_load_round_trip(self, tmp_path):
        from repro.reporting import RunReport

        report = self._build()
        path = str(tmp_path / "run_report.json")
        report.save(path)
        loaded = RunReport.load(path)
        assert loaded.to_dict() == report.to_dict()
        assert loaded.completed_stages() == ["stage0", "stage1"]
        assert loaded.resumed_stages() == ["stage1"]
        assert loaded.total_retries == 2
        assert loaded.telemetry["run_id"] == "rt1"

    def test_from_dict_recomputes_derived_and_skips_unknown(self):
        from repro.reporting import RunReport

        data = self._build().to_dict()
        data["completed_stages"] = ["lies"]  # derived: must be recomputed
        data["future_key"] = {"ignored": True}
        loaded = RunReport.from_dict(data)
        assert loaded.completed_stages() == ["stage0", "stage1"]
        assert not hasattr(loaded, "future_key")

    def test_stage_times_rows(self):
        rows = self._build().stage_times()
        assert rows[0] == {
            "stage": "stage0", "status": "completed",
            "elapsed_s": 1.25, "patterns": 12,
        }
        assert rows[1]["status"] == "completed (checkpoint)"
        assert rows[1]["elapsed_s"] == 0.0
