"""Unit tests of the job service: state machine, leases, back-pressure.

Everything time-dependent drives the store through its injectable
``now`` parameter — no sleeps, no real clocks — so lease expiry,
backoff windows and quarantine are tested exactly, not approximately.
The handful of tests that run a real (tiny) flow are the integration
seam: they assert the service's headline invariant, that a job's
pattern set is bit-identical to a single-process
``run_noise_tolerant_flow``.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.core import run_noise_tolerant_flow
from repro.core.flow import flow_stage_names
from repro.errors import (
    JobNotFoundError,
    ServiceBusyError,
    ServiceError,
)
from repro.service import (
    JOB_CANCELLED,
    JOB_DEAD,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobSpec,
    JobStore,
    ServiceClient,
    ServiceConfig,
    ServiceSupervisor,
)
from repro.soc import build_turbo_eagle

TTL = 30.0


@pytest.fixture
def store(tmp_path) -> JobStore:
    return JobStore(
        str(tmp_path / "store"),
        ServiceConfig(lease_ttl_s=TTL, max_queue_depth=4,
                      max_shard_attempts=3),
    )


def drive_job_to_done(store: JobStore, job_id: str, worker: str = "w",
                      now: float = 0.0) -> None:
    """Walk every shard through claim/start/complete by hand."""
    while True:
        job = store.get(job_id)
        if job.terminal:
            return
        claimed = store.claim(worker, now=now)
        assert claimed is not None, f"nothing claimable for {job_id}"
        job, shard = claimed
        token = shard.lease.token
        assert store.start_shard(job.id, shard.index, worker, token,
                                 now=now)
        assert store.complete_shard(job.id, shard.index, worker, token,
                                    now=now)


# ----------------------------------------------------------------------
# state machine
# ----------------------------------------------------------------------
class TestStateMachine:
    def test_submit_creates_queued_job_with_stage_shards(self, store):
        job = store.submit(JobSpec(), now=1.0)
        assert job.state == JOB_QUEUED
        assert [s.name for s in job.shards] == flow_stage_names()
        assert all(s.state == "queued" for s in job.shards)
        assert store.get(job.id).id == job.id

    def test_full_lifecycle_to_done(self, store):
        job = store.submit(JobSpec(), now=0.0)
        for index in range(len(job.shards)):
            claimed = store.claim("w1", now=0.0)
            assert claimed is not None
            cjob, shard = claimed
            assert (cjob.id, shard.index) == (job.id, index)
            assert shard.state == "leased"
            assert store.get(job.id).state == JOB_RUNNING
            token = shard.lease.token
            assert store.start_shard(job.id, index, "w1", token, now=0.0)
            assert store.get(job.id).shards[index].state == "running"
            assert store.complete_shard(job.id, index, "w1", token,
                                        now=0.0)
        final = store.get(job.id)
        assert final.state == JOB_DONE
        assert all(s.state == "done" for s in final.shards)
        assert store.claim("w1", now=0.0) is None

    def test_shards_are_sequential_within_a_job(self, store):
        job = store.submit(JobSpec(), now=0.0)
        claimed = store.claim("w1", now=0.0)
        assert claimed is not None and claimed[1].index == 0
        # shard 1 must not be claimable while shard 0 is leased
        assert store.claim("w2", now=0.0) is None
        assert store.get(job.id).shards[1].state == "queued"

    def test_jobs_claimed_fifo_across_jobs(self, store):
        a = store.submit(JobSpec(), now=0.0)
        b = store.submit(JobSpec(), now=1.0)
        first = store.claim("w1", now=2.0)
        second = store.claim("w2", now=2.0)
        assert first is not None and first[0].id == a.id
        # job A's next shard is blocked, so worker 2 gets job B
        assert second is not None and second[0].id == b.id

    def test_missing_job_raises(self, store):
        with pytest.raises(JobNotFoundError):
            store.get("j-nope")

    def test_store_reopen_sees_persisted_state(self, store):
        job = store.submit(JobSpec(scale="tiny", seed=7), now=0.0)
        reopened = JobStore(store.root)
        got = reopened.get(job.id)
        assert got.spec.seed == 7
        assert got.state == JOB_QUEUED
        # config round-trips through config.json too
        assert reopened.config.lease_ttl_s == TTL
        assert reopened.config.max_queue_depth == 4


# ----------------------------------------------------------------------
# cancellation
# ----------------------------------------------------------------------
class TestCancel:
    def test_cancel_queued_job(self, store):
        job = store.submit(JobSpec(), now=0.0)
        cancelled = store.cancel(job.id, now=1.0)
        assert cancelled.state == JOB_CANCELLED
        assert cancelled.terminal
        assert "cancelled" in cancelled.error
        # a cancelled job is never claimable
        assert store.claim("w", now=2.0) is None

    def test_cancel_frees_backpressure_slot(self, tmp_path):
        store = JobStore(str(tmp_path / "s"),
                         ServiceConfig(max_queue_depth=1))
        job = store.submit(JobSpec(), now=0.0)
        with pytest.raises(ServiceBusyError):
            store.submit(JobSpec(), now=0.0)
        store.cancel(job.id, now=1.0)
        assert store.queue_depth() == 0
        assert store.submit(JobSpec(), now=2.0).state == JOB_QUEUED

    def test_cancel_is_legal_only_from_queued(self, store):
        job = store.submit(JobSpec(), now=0.0)
        store.claim("w", now=0.0)
        with pytest.raises(ServiceError) as err:
            store.cancel(job.id, now=1.0)
        assert "only queued jobs" in str(err.value)
        # terminal states refuse too
        done = store.submit(JobSpec(), now=2.0)
        drive_job_to_done(store, done.id)
        with pytest.raises(ServiceError):
            store.cancel(done.id)

    def test_cancel_unknown_job_raises(self, store):
        with pytest.raises(JobNotFoundError):
            store.cancel("j-nope")

    def test_client_cancel_delegates(self, store):
        client = ServiceClient(store)
        job_id = client.submit(JobSpec())
        assert client.cancel(job_id).state == JOB_CANCELLED


# ----------------------------------------------------------------------
# external-netlist specs
# ----------------------------------------------------------------------
class TestNetlistSpec:
    def test_netlist_spec_round_trips_and_derives_shards(self, store):
        import io

        from repro.netlist.verilog import write_verilog
        from repro.soc import derive_stage_plan, design_from_netlist

        design = build_turbo_eagle(scale="tiny", seed=2007)
        buf = io.StringIO()
        write_verilog(design.netlist, buf)
        spec = JobSpec(netlist_verilog=buf.getvalue())
        job = store.submit(spec, now=0.0)
        # shard names come from the plan *derived from the netlist*
        # (which for the round-tripped design reproduces the paper's
        # built-in staging — the activity heuristic lands on the same
        # all-but-two / second-busiest / busiest split)
        rebuilt, plan = spec.build_design_and_plan()
        assert tuple(plan) == derive_stage_plan(rebuilt)
        assert [s.name for s in job.shards] == flow_stage_names(plan)
        assert len(job.shards) == len(plan)
        # and they survive the job.json round trip
        reopened = JobStore(store.root).get(job.id)
        assert reopened.spec.netlist_verilog == spec.netlist_verilog
        assert [s.name for s in reopened.shards] == [
            s.name for s in job.shards
        ]
        # the reconstruction is deterministic: a re-parse agrees
        again, _ = reopened.spec.build_design_and_plan()
        assert design_from_netlist is not None
        assert again.netlist.n_flops == rebuilt.netlist.n_flops
        assert again.blocks() == rebuilt.blocks()


# ----------------------------------------------------------------------
# wait polling backs off (no busy-polling a flock'd job.json)
# ----------------------------------------------------------------------
class FakeTime:
    """A sleep-driven clock standing in for the ``time`` module."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list = []

    def monotonic(self) -> float:
        return self.now

    def time(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


class TestWaitBackoff:
    def test_wait_poll_count_drops_on_long_jobs(self, store, monkeypatch):
        """A job that stays queued for 60 s costs ~30 capped polls,
        not the 300 a fixed 0.2 s interval would burn."""
        import repro.service.client as client_mod

        fake = FakeTime()
        monkeypatch.setattr(client_mod, "time", fake)
        client = ServiceClient(store)
        job_id = client.submit(JobSpec())
        with pytest.raises(ServiceError):
            client.wait(job_id, timeout_s=60.0, inline_fallback=False)
        fixed_interval_polls = 60.0 / 0.2
        assert len(fake.sleeps) < fixed_interval_polls / 5
        # exponential up to the cap, never past it, never decreasing
        assert fake.sleeps == sorted(fake.sleeps)
        assert fake.sleeps[0] == pytest.approx(0.2)
        assert max(fake.sleeps) == pytest.approx(2.0)

    def test_wait_backoff_resets_when_the_job_moves(self, store,
                                                    monkeypatch):
        """Progress snaps the poll interval back to the base."""
        import repro.service.client as client_mod

        fake = FakeTime()
        monkeypatch.setattr(client_mod, "time", fake)
        client = ServiceClient(store)
        job_id = client.submit(JobSpec())
        # let the backoff climb to the cap ...
        with pytest.raises(ServiceError):
            client.wait(job_id, timeout_s=20.0, inline_fallback=False)
        assert max(fake.sleeps) == pytest.approx(2.0)
        # ... then make the record change and wait again: first poll
        # re-observes (reset), so the very next sleep is the base again
        store.claim("w", now=fake.now)
        fake.sleeps.clear()
        with pytest.raises(ServiceError):
            client.wait(job_id, timeout_s=1.0, inline_fallback=False)
        assert fake.sleeps[0] == pytest.approx(0.2)


# ----------------------------------------------------------------------
# back-pressure
# ----------------------------------------------------------------------
class TestBackPressure:
    def test_submit_refused_at_depth_limit(self, tmp_path):
        store = JobStore(str(tmp_path / "s"),
                         ServiceConfig(max_queue_depth=2))
        store.submit(JobSpec(), now=0.0)
        store.submit(JobSpec(), now=0.0)
        with pytest.raises(ServiceBusyError) as err:
            store.submit(JobSpec(), now=0.0)
        assert err.value.depth == 2
        assert err.value.limit == 2

    def test_depth_frees_up_when_a_job_finishes(self, tmp_path):
        store = JobStore(str(tmp_path / "s"),
                         ServiceConfig(max_queue_depth=1))
        job = store.submit(JobSpec(), now=0.0)
        with pytest.raises(ServiceBusyError):
            store.submit(JobSpec(), now=0.0)
        drive_job_to_done(store, job.id)
        assert store.submit(JobSpec(), now=0.0).state == JOB_QUEUED

    def test_terminal_jobs_do_not_count_toward_depth(self, store):
        job = store.submit(JobSpec(), now=0.0)
        drive_job_to_done(store, job.id)
        assert store.queue_depth() == 0


# ----------------------------------------------------------------------
# leases: expiry, fencing, heartbeats, backoff
# ----------------------------------------------------------------------
class TestLeases:
    def test_expired_lease_is_reclaimed_with_backoff(self, store):
        job = store.submit(JobSpec(), now=0.0)
        first = store.claim("w1", now=0.0)
        assert first is not None
        # before expiry nothing is claimable
        assert store.claim("w2", now=TTL - 1.0) is None
        # at expiry the shard is reaped into its backoff window ...
        assert store.claim("w2", now=TTL) is None
        shard = store.get(job.id).shards[0]
        assert shard.state == "queued"
        assert shard.attempts == 1
        assert shard.failures[0]["kind"] == "lease_expired"
        assert shard.not_before > TTL
        # ... and claimable once the backoff has elapsed
        reclaimed = store.claim("w2", now=TTL + 60.0)
        assert reclaimed is not None
        assert reclaimed[1].lease.worker == "w2"

    def test_fencing_token_blocks_stale_worker(self, store):
        job = store.submit(JobSpec(), now=0.0)
        first = store.claim("w1", now=0.0)
        token1 = first[1].lease.token
        # first post-expiry claim reaps into the backoff window ...
        assert store.claim("w2", now=TTL + 60.0) is None
        # ... and the next one (past the backoff) re-grants, fenced
        reclaimed = store.claim("w2", now=TTL + 120.0)
        token2 = reclaimed[1].lease.token
        assert token2 > token1
        t = TTL + 121.0
        # the zombie's every move is refused
        assert not store.heartbeat(job.id, 0, "w1", token1, now=t)
        assert not store.start_shard(job.id, 0, "w1", token1, now=t)
        assert not store.complete_shard(job.id, 0, "w1", token1, now=t)
        assert not store.fail_shard(job.id, 0, "w1", token1, "boom",
                                    retryable=True, now=t)
        # the new holder proceeds normally
        assert store.start_shard(job.id, 0, "w2", token2, now=t)
        assert store.complete_shard(job.id, 0, "w2", token2, now=t)
        assert store.get(job.id).shards[0].state == "done"

    def test_heartbeat_extends_the_lease(self, store):
        job = store.submit(JobSpec(), now=0.0)
        claimed = store.claim("w1", now=0.0)
        token = claimed[1].lease.token
        assert store.heartbeat(job.id, 0, "w1", token, now=TTL - 5.0)
        # would have expired at TTL without the renewal
        assert store.claim("w2", now=TTL + 1.0) is None
        assert store.get(job.id).shards[0].lease.worker == "w1"

    def test_reap_expired_is_explicit_too(self, store):
        job = store.submit(JobSpec(), now=0.0)
        store.claim("w1", now=0.0)
        assert store.reap_expired(now=1.0) == 0
        assert store.reap_expired(now=TTL + 1.0) == 1
        assert store.get(job.id).shards[0].state == "queued"


# ----------------------------------------------------------------------
# quarantine and failure
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_repeatedly_dying_shard_is_quarantined_dead(self, store):
        job = store.submit(JobSpec(), now=0.0)
        now = 0.0
        for attempt in range(store.config.max_shard_attempts):
            claimed = store.claim("w", now=now)
            assert claimed is not None, f"attempt {attempt} not claimable"
            token = claimed[1].lease.token
            assert store.fail_shard(job.id, 0, "w", token,
                                    f"crash #{attempt}", retryable=True,
                                    now=now)
            now += 120.0  # comfortably past any backoff
        final = store.get(job.id)
        assert final.state == JOB_DEAD
        assert final.shards[0].state == "dead"
        assert "quarantined" in final.error
        # never claimable again — no infinite retry
        assert store.claim("w", now=now + 1000.0) is None
        # the failure log survives, one entry per burned lease
        assert len(final.shards[0].failures) == 3
        assert [f["error"] for f in final.shards[0].failures] == [
            "crash #0", "crash #1", "crash #2",
        ]

    def test_dead_job_has_failure_report_on_disk(self, store):
        from repro.reporting import RunReport

        job = store.submit(JobSpec(), now=0.0)
        now = 0.0
        for _ in range(store.config.max_shard_attempts):
            claimed = store.claim("w", now=now)
            token = claimed[1].lease.token
            store.fail_shard(job.id, 0, "w", token, "kaboom",
                             retryable=True, now=now)
            now += 120.0
        report = RunReport.load(store.report_path(job.id))
        assert report.status == "failed"
        assert "quarantined" in report.error
        assert len(report.failures) == 3
        assert all(f["stage"] == job.shards[0].name
                   for f in report.failures)
        # untouched shards are reported pending, not lost
        assert report.pending_stages() == [s.name for s in job.shards[1:]]

    def test_deterministic_error_fails_job_immediately(self, store):
        job = store.submit(JobSpec(), now=0.0)
        claimed = store.claim("w", now=0.0)
        token = claimed[1].lease.token
        assert store.fail_shard(job.id, 0, "w", token,
                                "ValueError('bad')", retryable=False,
                                now=0.0)
        final = store.get(job.id)
        assert final.state == JOB_FAILED
        assert final.shards[0].state == "failed"
        assert final.error == "ValueError('bad')"
        assert store.load_report(job.id) is not None

    def test_lease_expiry_also_burns_attempts(self, store):
        """Workers that silently die count against the same budget."""
        job = store.submit(JobSpec(), now=0.0)
        now = 0.0
        for _ in range(store.config.max_shard_attempts):
            claimed = store.claim("w", now=now)
            if claimed is None:  # claim just reaped into a backoff
                now += 60.0
                claimed = store.claim("w", now=now)
            assert claimed is not None
            now += TTL + 120.0  # let every lease rot
        # the final reap trips the quarantine instead of a re-grant
        assert store.claim("w", now=now) is None
        assert store.get(job.id).state == JOB_DEAD


# ----------------------------------------------------------------------
# client + integration (real tiny flows)
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=1)
def reference_matrix():
    """The single-process flow's pattern matrix (computed once)."""
    design = build_turbo_eagle(scale="tiny", seed=2007)
    result, _ = run_noise_tolerant_flow(design, seed=1)
    return result.pattern_set.as_matrix()


class TestClientIntegration:
    def test_wait_inline_fallback_completes_bit_identical(self, tmp_path):
        """Graceful degradation: no worker anywhere, the client drains
        the job itself — and the patterns match the single-process
        flow bit for bit."""
        client = ServiceClient(str(tmp_path / "store"))
        job_id = client.submit(JobSpec(scale="tiny"))
        job = client.wait(job_id, timeout_s=300)
        assert job.state == JOB_DONE
        result = client.result(job_id)
        assert np.array_equal(result["matrix"], reference_matrix())
        report = client.report(job_id)
        assert report.status == "completed"
        assert [s.name for s in report.stages] == flow_stage_names()

    def test_supervisor_inline_degradation(self, tmp_path):
        """A supervisor with zero workers still finishes the queue."""
        store = JobStore(str(tmp_path / "store"))
        client = ServiceClient(store)
        job_id = client.submit(JobSpec(scale="tiny"))
        with ServiceSupervisor(store, n_workers=0) as sup:
            sup.run_until_drained(timeout_s=300)
        assert client.status(job_id).state == JOB_DONE
        assert client.result(job_id)["n_patterns"] > 0

    def test_transient_chaos_retries_then_succeeds(self, tmp_path):
        """An injected transient failure burns one attempt, then the
        retry completes the job with identical patterns."""
        client = ServiceClient(str(tmp_path / "store"))
        job_id = client.submit(
            JobSpec(scale="tiny",
                    chaos={"fail_shard": 1, "fail_attempts": 1})
        )
        job = client.wait(job_id, timeout_s=300)
        assert job.state == JOB_DONE
        assert job.shards[1].attempts == 1
        assert job.shards[1].failures[0]["kind"] == "transient"
        result = client.result(job_id)
        assert np.array_equal(result["matrix"], reference_matrix())

    def test_result_before_done_raises(self, tmp_path):
        client = ServiceClient(str(tmp_path / "store"))
        job_id = client.submit(JobSpec())
        with pytest.raises(ServiceError):
            client.result(job_id)

    def test_wait_timeout_raises_and_preserves_job(self, tmp_path):
        client = ServiceClient(str(tmp_path / "store"))
        job_id = client.submit(JobSpec())
        with pytest.raises(ServiceError):
            client.wait(job_id, timeout_s=0.0, inline_fallback=False)
        assert client.status(job_id).state == JOB_QUEUED

    def test_submit_spec_xor_kwargs(self, tmp_path):
        client = ServiceClient(str(tmp_path / "store"))
        with pytest.raises(ServiceError):
            client.submit(JobSpec(), scale="tiny")
