"""Tests for pattern repair and the full-chip multi-domain flow."""

from __future__ import annotations

import pytest

from repro import CaseStudy
from repro.atpg import (
    FaultSimulator,
    build_fault_universe,
    collapse_faults,
)
from repro.core import repair_pattern_set, run_full_chip
from repro.core.validation import validate_pattern_set
from repro.errors import ConfigError
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def study():
    return CaseStudy(scale="tiny", seed=2007, backtrack_limit=60)


class TestRepair:
    @pytest.fixture(scope="class")
    def outcome(self, study):
        fsim = FaultSimulator(study.design.netlist, study.domain)
        reps, _ = collapse_faults(
            study.design.netlist,
            build_fault_universe(study.design.netlist),
        )
        return repair_pattern_set(
            study.calculator,
            study.conventional().pattern_set,
            study.thresholds_mw,
            fsim=fsim,
            faults=reps,
            report=study.validation("conventional"),
        )

    def test_violations_reduced(self, study, outcome):
        assert outcome.violations_after < outcome.violations_before
        # Re-filling fixes the violations the random filler caused; the
        # unrepairable rest violate through their own care-bit activity
        # (they need regeneration, not refill).
        assert outcome.repair_rate > 0.1
        assert outcome.repaired_patterns

    def test_set_size_preserved(self, study, outcome):
        assert len(outcome.repaired_set) == len(
            study.conventional().pattern_set
        )

    def test_care_bits_untouched(self, study, outcome):
        original = study.conventional().pattern_set
        for before, after in zip(original, outcome.repaired_set):
            assert (before.care == after.care).all()
            assert (
                before.v1[before.care] == after.v1[after.care]
            ).all()

    def test_targeted_detections_survive(self, study, outcome):
        """Care bits preserved => primary targets still detected, so the
        coverage loss is bounded to fortuitous detections."""
        assert outcome.faults_after <= outcome.faults_before
        assert outcome.faults_after > 0.8 * outcome.faults_before

    def test_repaired_patterns_marked(self, outcome):
        for idx in outcome.repaired_patterns:
            assert outcome.repaired_set[idx].fill == "0(repaired)"


class TestFullChip:
    @pytest.fixture(scope="class")
    def design(self):
        return build_turbo_eagle("tiny", seed=2007)

    @pytest.fixture(scope="class")
    def result(self, design):
        return run_full_chip(design, seed=1, backtrack_limit=40)

    def test_dominant_first_and_staged(self, design, result):
        assert result.outcomes[0].domain == design.dominant_domain()
        assert result.outcomes[0].flow_name == "noise_aware_staged"

    def test_all_populated_domains_run(self, design, result):
        ran = {o.domain for o in result.outcomes}
        populated = {
            d for d in design.domains if design.flops_in_domain(d)
        }
        # Later domains may be skipped only when nothing remains.
        assert result.outcomes[0].domain in ran
        assert ran.issubset(populated)

    def test_no_double_counting(self, design, result):
        """Each fault is credited to exactly one domain, so the sum of
        per-domain detections cannot exceed the collapsed universe."""
        reps, _ = collapse_faults(
            design.netlist, build_fault_universe(design.netlist)
        )
        assert result.total_detected <= len(reps)

    def test_secondary_domains_add_coverage(self, result):
        dominant_detected = result.outcomes[0].detected
        assert result.total_detected >= dominant_detected
        assert result.total_patterns >= len(result.outcomes[0].pattern_set)

    def test_baseline_variant(self, design):
        base = run_full_chip(
            design, noise_aware_dominant=False, seed=1,
            backtrack_limit=40,
        )
        assert base.outcomes[0].flow_name == "conventional"

    def test_needs_scan(self, design):
        bare = build_turbo_eagle("tiny", seed=3, insert_scan=False)
        with pytest.raises(ConfigError):
            run_full_chip(bare)
