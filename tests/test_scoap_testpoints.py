"""Tests for testability analysis and observation-point insertion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg import AtpgEngine, analyze_testability
from repro.dft import insert_observation_points
from repro.errors import ScanError
from repro.netlist import Netlist, check_netlist
from repro.sim import LogicSim, loc_launch_capture
from repro.soc import build_turbo_eagle


class TestScoap:
    def test_cop_basics(self):
        nl = Netlist("cop")
        q0 = nl.add_net("q0")
        q1 = nl.add_net("q1")
        a = nl.add_net("a")
        o = nl.add_net("o")
        x = nl.add_net("x")
        nl.add_gate("g_and", "AND2X1", [q0, q1], a)
        nl.add_gate("g_or", "OR2X1", [q0, q1], o)
        nl.add_gate("g_xor", "XOR2X1", [a, o], x)
        nl.add_flop("f0", "SDFFX1", d=x, q=q0, clock_domain="clka",
                    is_scan=True)
        nl.add_flop("f1", "SDFFX1", d=a, q=q1, clock_domain="clka",
                    is_scan=True)
        report = analyze_testability(nl, "clka")
        assert report.p_one[q0] == pytest.approx(0.5)
        assert report.p_one[a] == pytest.approx(0.25)   # AND of two 0.5
        assert report.p_one[o] == pytest.approx(0.75)   # OR of two 0.5
        # Capture nets are fully observable.
        assert report.observability[x] == pytest.approx(1.0)
        assert report.observability[a] == pytest.approx(1.0)  # is f1.d

    def test_held_pis_are_uncontrollable(self, ):
        nl = Netlist("pi")
        pi = nl.add_net("pi0")
        q = nl.add_net("q")
        y = nl.add_net("y")
        nl.add_primary_input(pi)
        nl.add_gate("g", "AND2X1", [pi, q], y)
        nl.add_flop("f", "SDFFX1", d=y, q=q, clock_domain="clka",
                    is_scan=True)
        report = analyze_testability(nl, "clka")
        assert report.p_one[pi] == 0.0
        assert report.controllability(pi) == 0.0
        # y is constant 0 through the AND: zero controllability too.
        assert report.p_one[y] == 0.0

    def test_deep_nets_less_observable(self):
        design = build_turbo_eagle("tiny", seed=7)
        report = analyze_testability(design.netlist, "clka")
        obs = report.observability
        # Capture nets sit at 1.0; plenty of logic sits below.
        assert obs.max() == pytest.approx(1.0)
        assert (obs < 0.2).sum() > 0

    def test_worst_lists(self):
        design = build_turbo_eagle("tiny", seed=7)
        report = analyze_testability(design.netlist, "clka")
        worst = report.worst_observability_nets(5)
        assert len(worst) == 5
        values = [report.observability[n] for n in worst]
        assert values == sorted(values)


class TestObservationPoints:
    @pytest.fixture()
    def design(self):
        return build_turbo_eagle("tiny", seed=7)

    def test_insertion_structurally_clean(self, design):
        new = insert_observation_points(
            design.netlist, design.scan, "clka", n_points=6
        )
        assert len(new) == 6
        assert check_netlist(design.netlist) == []
        # New flops are on chains and scan-enabled.
        for fi in new:
            flop = design.netlist.flops[fi]
            assert flop.is_scan and flop.chain is not None
            chain = design.scan.chain(flop.chain)
            assert chain.flops[flop.chain_pos] == fi

    def test_functionally_transparent(self, design):
        sim = LogicSim(design.netlist)
        n_before = design.netlist.n_flops
        v1 = {fi: (fi % 2) for fi in range(n_before)}
        before = loc_launch_capture(sim, v1, "clka").captured
        insert_observation_points(design.netlist, design.scan, "clka",
                                  n_points=6)
        sim2 = LogicSim(design.netlist)
        v1_after = dict(v1)
        for fi in range(n_before, design.netlist.n_flops):
            v1_after[fi] = 0
        after = loc_launch_capture(sim2, v1_after, "clka").captured
        for fi in before:
            assert after[fi] == before[fi]

    def test_coverage_improves(self, design):
        base = AtpgEngine(design.netlist, "clka", scan=design.scan,
                          seed=3).run(fill="random")
        insert_observation_points(design.netlist, design.scan, "clka",
                                  n_points=10)
        boosted = AtpgEngine(design.netlist, "clka", scan=design.scan,
                             seed=3).run(fill="random")
        assert boosted.test_coverage > base.test_coverage

    def test_bad_args(self, design):
        with pytest.raises(ScanError):
            insert_observation_points(design.netlist, design.scan,
                                      "clka", n_points=0)
