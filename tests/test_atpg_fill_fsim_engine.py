"""Tests for fill policies, fault simulation and the ATPG engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import (
    AtpgEngine,
    FaultSimulator,
    apply_fill,
    build_fault_universe,
    collapse_faults,
)
from repro.atpg.fill import care_mask
from repro.atpg.fsim import first_detection_index
from repro.atpg.patterns import Pattern, PatternSet
from repro.errors import AtpgError
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=13)


class TestFill:
    def test_fill0_and_fill1(self, design):
        n = design.netlist.n_flops
        cube = {0: 1, 5: 0}
        v0 = apply_fill(cube, n, "0")
        assert v0[0] == 1 and v0[5] == 0
        assert v0.sum() == 1
        v1 = apply_fill(cube, n, "1")
        assert v1[5] == 0
        assert v1.sum() == n - 1

    def test_random_fill_preserves_care_bits(self, design):
        n = design.netlist.n_flops
        cube = {2: 1, 7: 0, 11: 1}
        rng = np.random.default_rng(5)
        v = apply_fill(cube, n, "random", rng=rng)
        assert v[2] == 1 and v[7] == 0 and v[11] == 1
        # Random fill must actually vary.
        v2 = apply_fill(cube, n, "random", rng=rng)
        assert (v != v2).any()

    def test_random_fill_needs_rng(self, design):
        with pytest.raises(AtpgError):
            apply_fill({0: 1}, 4, "random")

    def test_adjacent_fill_follows_chain(self, design):
        scan = design.scan
        chain = scan.chains[0]
        n = design.netlist.n_flops
        # One care bit in the middle of chain 0.
        mid = chain.flops[len(chain.flops) // 2]
        cube = {mid: 1}
        v = apply_fill(cube, n, "adjacent", scan=scan)
        # Everything after the care bit on this chain copies it; leading
        # cells copy the first care value.
        for fi in chain.flops:
            assert v[fi] == 1
        # Chains without care bits stay 0.
        other = scan.chains[1]
        assert all(v[fi] == 0 for fi in other.flops)

    def test_adjacent_fill_needs_scan(self):
        with pytest.raises(AtpgError):
            apply_fill({0: 1}, 4, "adjacent")

    def test_unknown_policy(self):
        with pytest.raises(AtpgError):
            apply_fill({0: 1}, 4, "majority")

    def test_care_mask(self):
        mask = care_mask({1: 0, 3: 1}, 5)
        assert mask.tolist() == [False, True, False, True, False]


class TestPatterns:
    def test_pattern_container(self, design):
        n = design.netlist.n_flops
        v1 = np.zeros(n, dtype=np.uint8)
        care = np.zeros(n, dtype=bool)
        care[3] = True
        p = Pattern(0, v1, care, "clka", "0")
        assert p.care_count == 1
        assert 0 < p.care_ratio < 1
        assert p.v1_dict()[3] == 0

    def test_pattern_set_domain_check(self, design):
        n = design.netlist.n_flops
        ps = PatternSet("clka")
        p = Pattern(0, np.zeros(n, np.uint8), np.zeros(n, bool), "clkb", "0")
        with pytest.raises(AtpgError):
            ps.append(p)

    def test_as_matrix(self, design):
        n = design.netlist.n_flops
        ps = PatternSet("clka")
        for i in range(3):
            ps.append(Pattern(i, np.full(n, i % 2, np.uint8),
                              np.zeros(n, bool), "clka", "0"))
        m = ps.as_matrix()
        assert m.shape == (3, n)
        assert m[1].sum() == n


class TestFaultSimulator:
    def test_first_detection_index(self):
        assert first_detection_index(0b1000) == 3
        assert first_detection_index(1) == 0
        with pytest.raises(AtpgError):
            first_detection_index(0)

    def test_shape_checks(self, design):
        fsim = FaultSimulator(design.netlist, "clka")
        with pytest.raises(AtpgError):
            fsim.run(np.zeros((2, 3), dtype=np.uint8), [])

    def test_no_activation_no_detection(self, design):
        """A fault whose stem never takes the initial value in frame 1
        cannot be detected."""
        nl = design.netlist
        fsim = FaultSimulator(nl, "clka")
        faults = build_fault_universe(nl)
        v1 = np.zeros((4, nl.n_flops), dtype=np.uint8)  # all-zero states
        words = fsim.run(v1, faults)
        from repro.sim.logic import LogicSim
        sim = LogicSim(nl)
        values = sim.run({fi: 0 for fi in range(nl.n_flops)})
        for fault, word in words.items():
            init = fault.initial_value
            assert values[fault.net] == init  # activation really held

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_detection_word_subset_of_activation(self, seed):
        design = build_turbo_eagle("tiny", seed=13)
        nl = design.netlist
        fsim = FaultSimulator(nl, "clka")
        rng = np.random.default_rng(seed)
        v1 = rng.integers(0, 2, size=(8, nl.n_flops), dtype=np.uint8)
        faults = build_fault_universe(nl)[:200]
        words = fsim.run(v1, faults)
        packed, mask = fsim.pack(v1)
        from repro.sim.logic import LogicSim, loc_launch_capture
        cyc = loc_launch_capture(LogicSim(nl), packed, "clka", mask=mask)
        for fault, word in words.items():
            f1 = cyc.frame1[fault.net]
            act = f1 if fault.initial_value else (~f1 & mask)
            assert word & ~act == 0, "detection without activation"


class TestEngine:
    @pytest.fixture(scope="class")
    def results(self, design):
        eng = AtpgEngine(design.netlist, "clka", scan=design.scan, seed=9)
        return {
            "random": eng.run(fill="random"),
            "0": eng.run(fill="0"),
        }

    def test_coverage_reasonable(self, results):
        assert results["random"].test_coverage > 0.6
        assert results["0"].test_coverage > 0.6

    def test_fill0_needs_more_patterns(self, results):
        """The paper's ~8-16 % pattern-count increase for fill-0."""
        assert results["0"].n_patterns >= results["random"].n_patterns

    def test_no_inconsistencies(self, results):
        assert results["random"].inconsistent == []
        assert results["0"].inconsistent == []

    def test_coverage_curve_monotone(self, results):
        curve = results["random"].coverage_curve()
        ys = [y for _x, y in curve]
        assert all(b >= a for a, b in zip(ys, ys[1:]))
        assert ys[-1] == pytest.approx(results["random"].test_coverage)

    def test_detected_indices_valid(self, results):
        res = results["random"]
        for fault, idx in res.detected.items():
            assert 0 <= idx < res.n_patterns

    def test_patterns_have_metadata(self, results):
        for p in results["0"].pattern_set:
            assert p.fill == "0"
            assert p.domain == "clka"
            assert p.care_count > 0

    def test_max_patterns_cap(self, design):
        eng = AtpgEngine(design.netlist, "clka", scan=design.scan, seed=9)
        res = eng.run(fill="random", max_patterns=5)
        assert res.n_patterns <= 5

    def test_detected_faults_verify_against_fsim(self, design, results):
        """Cross-check: every fault the engine says pattern i detects is
        really detected by pattern i (re-simulated independently)."""
        res = results["random"]
        fsim = FaultSimulator(design.netlist, "clka")
        matrix = res.pattern_set.as_matrix()
        sample = list(res.detected.items())[:50]
        for fault, idx in sample:
            words = fsim.run(matrix[idx:idx + 1], [fault])
            assert words.get(fault, 0) & 1, (fault, idx)
