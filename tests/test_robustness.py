"""Seed-robustness and fault-tolerance of the full pipeline.

Part one: the headline result is not one lucky seed — the
conventional-vs-staged comparison holds on three independently
generated tiny SOCs.

Part two (``-m chaos``): the execution layer survives deliberately
injected infrastructure failures — workers SIGKILLed mid-batch, hung
past their deadline, transient faults — and interrupted flows resume
from checkpoints, all **bit-identical** to an undisturbed serial run.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import CaseStudy
from repro.core.flow import NoiseAwarePatternGenerator, run_noise_tolerant_flow
from repro.perf import chaos
from repro.perf.resilient import execution_policy, last_report
from repro.power.calculator import ScapCalculator
from repro.soc import build_turbo_eagle

SEEDS = (11, 97, 2024)


@pytest.mark.parametrize("seed", SEEDS)
def test_headline_holds_across_seeds(seed):
    study = CaseStudy(scale="tiny", seed=seed, backtrack_limit=60)
    conv = study.validation("conventional")
    stag = study.validation("staged")

    # Claim 1: staged never violates B5 more than conventional.
    assert (
        stag.violation_fraction("B5") <= conv.violation_fraction("B5")
    ), seed

    # Claim 2: the pre-B5 prefix of the staged flow is under threshold.
    boundaries = study.staged().step_boundaries
    series = stag.scap_series("B5")
    prefix = series[: boundaries[-1]]
    threshold = study.thresholds_mw["B5"]
    assert prefix.size == 0 or (prefix <= threshold).all(), seed

    # Claim 3: coverage comparable between the two flows.
    assert abs(
        study.conventional().test_coverage - study.staged().test_coverage
    ) < 0.15, seed

    # Claim 4: SCAP > CAP for active patterns (STW below the cycle).
    actives = [p for p in conv.profiles if p.stw_ns > 0]
    assert actives
    assert all(p.scap_mw() >= p.cap_mw() for p in actives), seed


# ----------------------------------------------------------------------
# chaos: injected infrastructure failures on the real pipeline
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_design():
    return build_turbo_eagle("tiny", seed=2007)


@pytest.fixture(scope="module")
def fault_batch(tiny_design):
    from repro.atpg.faults import build_fault_universe, collapse_faults

    nl = tiny_design.netlist
    reps, _ = collapse_faults(nl, build_fault_universe(nl))
    rng = np.random.default_rng(5)
    matrix = rng.integers(0, 2, size=(120, nl.n_flops), dtype=np.int8)
    return list(reps), matrix


@pytest.mark.chaos
class TestChaosPipeline:
    """Kill, hang and fail workers under the paper's real workloads."""

    def test_fsim_survives_worker_kill_bit_identical(
        self, tiny_design, fault_batch
    ):
        from repro.atpg.fsim import FaultSimulator

        faults, matrix = fault_batch
        fsim = FaultSimulator(tiny_design.netlist, tiny_design.dominant_domain())
        serial = fsim.run_batch(matrix, faults, lane_width=64)
        spec = chaos.ChaosSpec(kill={1: (0,)})
        with chaos.inject(spec), execution_policy(
            backoff_base_s=0.001, jitter=0.0
        ):
            survived = fsim.run_batch(
                matrix, faults, lane_width=64, n_workers=2
            )
        assert survived == serial
        report = last_report()
        assert report.pool_rebuilds >= 1
        assert not report.serial_fallback  # recovered, not degraded
        # bounded recovery: at most the chunks in flight when the
        # worker died (<= n_workers) burned an extra try — completed
        # chunks were never re-run
        assert 1 <= len(report.retried_chunks) <= 2
        assert all(a <= 2 for a in report.chunk_attempts.values())

    def test_scap_survives_worker_kill_bit_identical(
        self, tiny_design, fault_batch
    ):
        _faults, matrix = fault_batch
        domain = tiny_design.dominant_domain()
        serial = ScapCalculator(tiny_design, domain).profile_patterns(
            matrix[:60]
        )
        calc = ScapCalculator(tiny_design, domain)
        spec = chaos.ChaosSpec(kill={0: (0,)})
        with chaos.inject(spec), execution_policy(
            backoff_base_s=0.001, jitter=0.0
        ):
            survived = calc.profile_patterns(matrix[:60], n_workers=2)
        assert survived == serial
        assert not last_report().serial_fallback

    def test_scap_hang_past_timeout_recovers(self, tiny_design, fault_batch):
        _faults, matrix = fault_batch
        domain = tiny_design.dominant_domain()
        serial = ScapCalculator(tiny_design, domain).profile_patterns(
            matrix[:60]
        )
        calc = ScapCalculator(tiny_design, domain)
        spec = chaos.ChaosSpec(hang={0: (0,)}, hang_s=60.0)
        with chaos.inject(spec), execution_policy(
            timeout_s=15.0, backoff_base_s=0.001, jitter=0.0
        ):
            survived = calc.profile_patterns(matrix[:60], n_workers=2)
        assert survived == serial
        report = last_report()
        assert report.n_timeouts >= 1
        assert not report.serial_fallback

    def test_fsim_transient_failures_retry_to_success(
        self, tiny_design, fault_batch
    ):
        from repro.atpg.fsim import FaultSimulator

        faults, matrix = fault_batch
        fsim = FaultSimulator(tiny_design.netlist, tiny_design.dominant_domain())
        serial = fsim.run_batch(matrix, faults, lane_width=64)
        spec = chaos.ChaosSpec(fail={0: (0,), 2: (0, 1)})
        with chaos.inject(spec), execution_policy(
            backoff_base_s=0.001, jitter=0.0
        ):
            survived = fsim.run_batch(
                matrix, faults, lane_width=64, n_workers=2
            )
        assert survived == serial
        assert last_report().total_retries >= 3


@pytest.mark.chaos
class TestCheckpointResume:
    """Interrupted flows resume and finish bit-identical."""

    def test_flow_stop_and_resume_bit_identical(self, tiny_design, tmp_path):
        kwargs = dict(seed=1, backtrack_limit=60)
        reference = NoiseAwarePatternGenerator(
            tiny_design, **kwargs
        ).run()

        ckdir = str(tmp_path / "ck")
        partial, rep1 = run_noise_tolerant_flow(
            tiny_design, checkpoint_dir=ckdir, stop_after_stage=1,
            **kwargs,
        )
        assert rep1.status == "partial"
        assert rep1.completed_stages() and rep1.pending_stages()

        resumed, rep2 = run_noise_tolerant_flow(
            tiny_design, checkpoint_dir=ckdir, **kwargs
        )
        assert rep2.status == "completed"
        assert rep2.resumed_stages() == rep1.completed_stages()
        assert np.array_equal(
            resumed.pattern_set.as_matrix(),
            reference.pattern_set.as_matrix(),
        )
        assert resumed.step_boundaries == reference.step_boundaries
        assert resumed.test_coverage == reference.test_coverage

    def test_flow_crash_midway_reports_partial_then_resumes(
        self, tiny_design, tmp_path, monkeypatch
    ):
        kwargs = dict(seed=1, backtrack_limit=60)
        reference = NoiseAwarePatternGenerator(
            tiny_design, **kwargs
        ).run()

        real_run_stage = NoiseAwarePatternGenerator._run_stage

        def sabotaged(self, fsim, step, combined, next_index, max_patterns):
            if step == ("B6",):
                raise RuntimeError("simulated crash in stage 1")
            return real_run_stage(
                self, fsim, step, combined, next_index, max_patterns
            )

        ckdir = str(tmp_path / "ck")
        monkeypatch.setattr(
            NoiseAwarePatternGenerator, "_run_stage", sabotaged
        )
        crashed, rep1 = run_noise_tolerant_flow(
            tiny_design, checkpoint_dir=ckdir,
            report_path=str(tmp_path / "partial.json"), **kwargs,
        )
        assert crashed is None
        assert rep1.status == "partial"
        assert "simulated crash" in rep1.error
        assert (tmp_path / "partial.json").exists()

        monkeypatch.setattr(
            NoiseAwarePatternGenerator, "_run_stage", real_run_stage
        )
        resumed, rep2 = run_noise_tolerant_flow(
            tiny_design, checkpoint_dir=ckdir, **kwargs
        )
        assert rep2.status == "completed"
        assert rep2.resumed_stages()  # stage 0 came from the checkpoint
        assert np.array_equal(
            resumed.pattern_set.as_matrix(),
            reference.pattern_set.as_matrix(),
        )

    def test_strict_mode_reraises(self, tiny_design, tmp_path, monkeypatch):
        def explode(self, fsim, step, combined, next_index, max_patterns):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(
            NoiseAwarePatternGenerator, "_run_stage", explode
        )
        with pytest.raises(RuntimeError, match="kaboom"):
            run_noise_tolerant_flow(
                tiny_design, checkpoint_dir=str(tmp_path / "ck"),
                strict=True, seed=1, backtrack_limit=60,
            )

    def test_casestudy_checkpoint_roundtrip(self, tmp_path):
        ckdir = str(tmp_path / "cs")
        first = CaseStudy(
            scale="tiny", seed=11, backtrack_limit=60, checkpoint_dir=ckdir
        )
        staged1 = first.staged()
        val1 = first.validation("staged")
        assert first._checkpoint.saves >= 2

        second = CaseStudy(
            scale="tiny", seed=11, backtrack_limit=60, checkpoint_dir=ckdir
        )
        staged2 = second.staged()
        val2 = second.validation("staged")
        assert second._checkpoint.loads >= 1  # reran nothing from scratch
        assert np.array_equal(
            staged1.pattern_set.as_matrix(), staged2.pattern_set.as_matrix()
        )
        assert val1.profiles == val2.profiles
        assert val1.violations == val2.violations

    def test_stale_checkpoint_is_reset_not_reused(self, tmp_path):
        ckdir = str(tmp_path / "cs")
        CaseStudy(
            scale="tiny", seed=11, backtrack_limit=60, checkpoint_dir=ckdir
        ).staged()
        # Same directory, different configuration: the fingerprint
        # mismatch must discard the store, never serve stale results.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            other = CaseStudy(
                scale="tiny", seed=97, backtrack_limit=60,
                checkpoint_dir=ckdir,
            )
        assert any("checkpoint" in str(w.message) for w in caught)
        assert not other._checkpoint.keys()
