"""Seed-robustness: the headline result is not one lucky seed.

Runs the conventional-vs-staged comparison on three independently
generated tiny SOCs and checks the paper's qualitative claims hold for
each: the staged fill-0 flow never violates the B5 threshold before B5
is targeted, and never violates more than the conventional flow does.
"""

from __future__ import annotations

import pytest

from repro import CaseStudy

SEEDS = (11, 97, 2024)


@pytest.mark.parametrize("seed", SEEDS)
def test_headline_holds_across_seeds(seed):
    study = CaseStudy(scale="tiny", seed=seed, backtrack_limit=60)
    conv = study.validation("conventional")
    stag = study.validation("staged")

    # Claim 1: staged never violates B5 more than conventional.
    assert (
        stag.violation_fraction("B5") <= conv.violation_fraction("B5")
    ), seed

    # Claim 2: the pre-B5 prefix of the staged flow is under threshold.
    boundaries = study.staged().step_boundaries
    series = stag.scap_series("B5")
    prefix = series[: boundaries[-1]]
    threshold = study.thresholds_mw["B5"]
    assert prefix.size == 0 or (prefix <= threshold).all(), seed

    # Claim 3: coverage comparable between the two flows.
    assert abs(
        study.conventional().test_coverage - study.staged().test_coverage
    ) < 0.15, seed

    # Claim 4: SCAP > CAP for active patterns (STW below the cycle).
    actives = [p for p in conv.profiles if p.stw_ns > 0]
    assert actives
    assert all(p.scap_mw() >= p.cap_mw() for p in actives), seed
