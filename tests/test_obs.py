"""Tests for ``repro.obs`` — tracing, metrics, profiling and logging.

Unit tests for each layer, facade-scoping semantics, the invariants the
subsystem promises (well-nested span trees, even with worker-side
events absorbed across the process boundary; disabled telemetry leaves
flow results bit-identical), and — under ``-m chaos`` — that the trace
stays parseable and the metrics sane when a worker is killed mid-batch.
"""

from __future__ import annotations

import io
import json
import logging
import time

import pytest

from repro.obs import (
    LOG_LEVELS,
    NULL_TELEMETRY,
    MetricsRegistry,
    NullTelemetry,
    StageProfiler,
    Telemetry,
    Tracer,
    current_telemetry,
    events_to_chrome,
    load_trace_jsonl,
    nesting_errors,
    prometheus_name,
    run_logger,
    setup_logging,
    summarize,
    use_telemetry,
    worker_event,
)


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_tree_parents_and_order(self):
        tracer = Tracer("t1")
        with tracer.span("outer", k=1):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        names = [e["name"] for e in tracer.events]
        # children close (and record) before the parent
        assert names == ["inner", "inner2", "outer"]
        by_name = {e["name"]: e for e in tracer.events}
        outer = by_name["outer"]
        assert outer["parent_id"] is None
        assert by_name["inner"]["parent_id"] == outer["span_id"]
        assert by_name["inner2"]["parent_id"] == outer["span_id"]
        assert outer["attrs"] == {"k": 1}
        assert not nesting_errors(tracer.events)

    def test_span_records_error_and_reraises(self):
        tracer = Tracer("t2")
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (event,) = tracer.events
        assert "ValueError" in event["attrs"]["error"]

    def test_set_attrs_after_entry(self):
        tracer = Tracer("t3")
        with tracer.span("s") as span:
            span.set(found=7)
        assert tracer.events[0]["attrs"]["found"] == 7

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer("t4")
        with tracer.span("a"):
            with tracer.span("b", x="y"):
                pass
        path = str(tmp_path / "trace.jsonl")
        tracer.save_jsonl(path)
        events = load_trace_jsonl(path)
        assert [e["name"] for e in events] == ["b", "a"]
        assert not nesting_errors(events)

    def test_chrome_conversion_rebases_to_zero(self):
        tracer = Tracer("t5")
        with tracer.span("a"):
            pass
        chrome = events_to_chrome(tracer.events)
        assert chrome[0]["ph"] == "X"
        assert chrome[0]["ts"] == 0.0  # earliest event rebased to t=0
        assert chrome[0]["dur"] >= 0.0

    def test_absorbed_worker_events_parent_under_open_span(self):
        tracer = Tracer("t6")
        with tracer.span("dispatch"):
            tracer.absorb_events(
                [worker_event("exec.chunk", time.time(), 0.0, chunk=3)]
            )
        by_name = {e["name"]: e for e in tracer.events}
        assert (
            by_name["exec.chunk"]["parent_id"]
            == by_name["dispatch"]["span_id"]
        )
        assert by_name["exec.chunk"]["attrs"]["chunk"] == 3
        assert not nesting_errors(tracer.events)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_labels_and_total(self):
        reg = MetricsRegistry()
        reg.counter("exec.failures").inc(kind="crash")
        reg.counter("exec.failures").inc(2, kind="timeout")
        counter = reg.counter("exec.failures")
        assert counter.value(kind="crash") == 1
        assert counter.value(kind="timeout") == 2
        assert counter.total == 3

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        reg.gauge("pool.workers").set(4)
        assert reg.gauge("pool.workers").value() == 4
        hist = reg.histogram("exec.map_s", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(50.0)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(55.5)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_prometheus_exposition(self):
        assert prometheus_name("exec.retries", "counter") == (
            "repro_exec_retries_total"
        )
        reg = MetricsRegistry()
        reg.counter("exec.retries").inc(3)
        reg.gauge("pool.workers").set(2)
        text = reg.to_prometheus()
        assert "repro_exec_retries_total 3.0" in text
        assert "# TYPE repro_exec_retries_total counter" in text
        assert "repro_pool_workers 2.0" in text

    def test_snapshot_is_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc(kind="x")
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["a.b"]["kind"] == "counter"


# ----------------------------------------------------------------------
# profiling + logging
# ----------------------------------------------------------------------
class TestProfiler:
    def test_hotspots_and_table(self):
        prof = StageProfiler(top_n=5)
        with prof.profile("stage0"):
            sum(i * i for i in range(20_000))
        rows = prof.hotspots()
        assert rows and all("tottime_s" in r for r in rows)
        assert "hotspots" in prof.format_table().lower()

    def test_nested_profile_is_noop_not_error(self):
        prof = StageProfiler()
        with prof.profile("outer"):
            with prof.profile("inner"):  # cProfile cannot nest
                pass
        assert "outer" in prof.stages
        assert "inner" not in prof.stages


class TestLogs:
    def test_setup_is_idempotent(self):
        logger = setup_logging("warning")
        n = len(logger.handlers)
        assert setup_logging("info") is logger
        assert len(logger.handlers) == n
        assert logger.level == logging.INFO

    def test_run_logger_stamps_run_id(self):
        stream = io.StringIO()
        setup_logging("info", stream=stream)
        run_logger("abc123", "repro.test").info("hello %s", "world")
        out = stream.getvalue()
        assert "run=abc123" in out and "hello world" in out

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            setup_logging("loud")
        assert "debug" in LOG_LEVELS


# ----------------------------------------------------------------------
# the facade and its scoping
# ----------------------------------------------------------------------
class TestTelemetryFacade:
    def test_null_singleton_is_allocation_free(self):
        assert isinstance(NULL_TELEMETRY, NullTelemetry)
        # every call hands back the one shared span object
        assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")
        assert NULL_TELEMETRY.count("c") is None
        assert NULL_TELEMETRY.snapshot() is None
        assert not NULL_TELEMETRY.wants_worker_spans

    def test_ambient_default_and_scoping(self):
        assert current_telemetry() is NULL_TELEMETRY
        tel = Telemetry(run_id="scope")
        with use_telemetry(tel) as scoped:
            assert scoped is tel
            assert current_telemetry() is tel
            with use_telemetry(None):
                assert current_telemetry() is NULL_TELEMETRY
            assert current_telemetry() is tel
        assert current_telemetry() is NULL_TELEMETRY

    def test_disabled_layers_degrade_to_noops(self):
        tel = Telemetry(run_id="bare", tracing=False, metrics=False)
        assert not tel.wants_worker_spans
        with tel.span("x"):
            tel.count("a")
            tel.observe("b", 1.0)
        snap = tel.snapshot()
        assert snap["run_id"] == "bare"
        assert "metrics" not in snap and "n_trace_events" not in snap

    def test_snapshot_collects_all_layers(self):
        tel = Telemetry(run_id="full", profile=True)
        with tel.span("s"):
            with tel.profile_stage("st"):
                pass
        tel.count("k", 2)
        snap = tel.snapshot()
        assert snap["n_trace_events"] == 1
        assert snap["metrics"]["k"]["series"][""] == 2
        assert "hotspots" in snap


class TestConvert:
    def test_nesting_errors_flag_escapes_and_orphans(self):
        good = {"name": "p", "span_id": "s1", "parent_id": None,
                "ts_s": 100.0, "dur_s": 10.0, "pid": 1, "attrs": {}}
        escape = {"name": "c", "span_id": "s2", "parent_id": "s1",
                  "ts_s": 120.0, "dur_s": 5.0, "pid": 1, "attrs": {}}
        orphan = {"name": "o", "span_id": "s3", "parent_id": "zz",
                  "ts_s": 101.0, "dur_s": 1.0, "pid": 1, "attrs": {}}
        problems = nesting_errors([good, escape, orphan])
        assert len(problems) == 2
        assert any("escapes" in p for p in problems)
        assert any("missing parent" in p for p in problems)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok", "span_id": "s1", "ts_s": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace_jsonl(str(path))

    def test_summarize_aggregates_by_name(self):
        events = [
            {"name": "a", "span_id": "1", "parent_id": None,
             "ts_s": 0.0, "dur_s": 2.0, "pid": 1, "attrs": {}},
            {"name": "a", "span_id": "2", "parent_id": None,
             "ts_s": 0.0, "dur_s": 4.0, "pid": 1, "attrs": {}},
        ]
        (row,) = summarize(events)
        assert row["count"] == 2
        assert row["total_s"] == pytest.approx(6.0)
        assert row["max_s"] == pytest.approx(4.0)


# ----------------------------------------------------------------------
# integration with the flow
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_design():
    from repro.soc import build_turbo_eagle

    return build_turbo_eagle("tiny", 2007)


class TestFlowTelemetry:
    def test_flow_trace_metrics_and_report_digest(self, tiny_design):
        from repro.core import run_noise_tolerant_flow

        tel = Telemetry(run_id="flowtest")
        result, report = run_noise_tolerant_flow(
            tiny_design, max_patterns=12, telemetry=tel, seed=1,
        )
        assert report.status == "completed"
        # span tree covers the whole stack and stays well-nested
        names = {e["name"] for e in tel.tracer.events}
        assert {"flow.run", "flow.drc_gate", "atpg.stage", "atpg.run",
                "fsim.run_batch", "fsim.lane"} <= names
        assert not nesting_errors(tel.tracer.events)
        # the metric digest landed in the run report and agrees with
        # the flow's own accounting
        metrics = report.telemetry["metrics"]
        assert metrics["atpg.patterns_generated"]["series"][""] == (
            result.n_patterns
        )
        assert report.telemetry["run_id"] == "flowtest"
        # stage wall times were recorded for the loaded-report view
        assert all(
            row["elapsed_s"] > 0
            for row in report.stage_times()
            if "completed" in row["status"]
        )

    def test_null_telemetry_is_bit_identical(self, tiny_design):
        from repro.core import run_noise_tolerant_flow

        with_tel, _ = run_noise_tolerant_flow(
            tiny_design, max_patterns=12, seed=1,
            telemetry=Telemetry(run_id="a"),
        )
        without, _ = run_noise_tolerant_flow(
            tiny_design, max_patterns=12, seed=1,
        )
        assert (
            with_tel.pattern_set.as_matrix().tolist()
            == without.pattern_set.as_matrix().tolist()
        )

    def test_validation_counts_scap_violations(self, tiny_design):
        import numpy as np

        from repro.core import validate_pattern_set
        from repro.power import ScapCalculator

        calc = ScapCalculator(tiny_design)
        rng = np.random.default_rng(7)
        matrix = rng.integers(
            0, 2, size=(8, tiny_design.netlist.n_flops)
        ).astype("uint8")
        tel = Telemetry(run_id="val")
        with use_telemetry(tel):
            report = validate_pattern_set(
                calc, matrix, {"B5": 0.0}  # zero threshold: all violate
            )
        assert report.violations
        counted = tel.metrics.counter("scap.violations").total
        assert counted == len(report.violations)


# ----------------------------------------------------------------------
# chaos: telemetry under injected infrastructure failure
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestObsChaos:
    def test_trace_and_metrics_survive_worker_kill(self, tiny_design):
        import numpy as np

        from repro.atpg.faults import build_fault_universe
        from repro.atpg.fsim import FaultSimulator
        from repro.perf import chaos
        from repro.perf.resilient import execution_policy, last_report

        netlist = tiny_design.netlist
        domain = tiny_design.dominant_domain()
        faults = build_fault_universe(netlist)[:80]
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, 2, size=(64, netlist.n_flops)).astype(
            "uint8"
        )
        fsim = FaultSimulator(netlist, domain)
        serial = fsim.run_batch(matrix, faults, lane_width=64)

        tel = Telemetry(run_id="chaos")
        spec = chaos.ChaosSpec(kill={1: (0,)})
        with use_telemetry(tel), chaos.inject(spec), execution_policy(
            backoff_base_s=0.001, jitter=0.0
        ):
            survived = fsim.run_batch(
                matrix, faults, lane_width=64, n_workers=2
            )

        # recovery did not change results, and telemetry watched it all
        assert survived == serial
        report = last_report()
        assert not nesting_errors(tel.tracer.events)
        crashes = tel.metrics.counter("exec.worker_crashes").total
        assert crashes >= 1
        assert tel.metrics.counter("exec.retries").total == (
            report.total_retries
        )
        assert tel.metrics.counter("exec.chunks").total == report.n_chunks
        assert tel.metrics.counter("exec.pool_rebuilds").total == (
            report.pool_rebuilds
        )
        # worker chunk spans rode home on the result channel; the
        # killed attempt never reported, so at most one event per
        # successful attempt arrived
        chunk_events = [
            e for e in tel.tracer.events if e["name"] == "exec.chunk"
        ]
        assert chunk_events
        assert len(chunk_events) <= sum(report.chunk_attempts.values())
        # monotonicity: every counter series is non-negative
        for metric in tel.metrics.snapshot().values():
            if metric["kind"] == "counter":
                assert all(v >= 0 for v in metric["series"].values())
