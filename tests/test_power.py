"""Tests for the power models: statistical, CAP/SCAP, SCAP calculator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import joules_to_milliwatts
from repro.errors import ConfigError
from repro.power import (
    PatternPowerProfile,
    ScapCalculator,
    clock_tree_cycle_energy_fj,
    statistical_block_power,
)
from repro.power.energy import clock_buffer_energies_fj
from repro.power.statistical import chip_power_mw
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=19)


class TestUnits:
    def test_fj_per_ns_is_microwatt(self):
        # 1000 fJ over 1 ns = 1 uW = 1e-3 mW.
        assert joules_to_milliwatts(1000.0, 1.0) == pytest.approx(1.0)

    def test_zero_window_rejected(self):
        with pytest.raises(ConfigError):
            joules_to_milliwatts(1.0, 0.0)


class TestStatisticalPower:
    def test_case2_doubles_logic_power(self, design):
        c1 = statistical_block_power(design, window_fraction=1.0,
                                     include_clock=False)
        c2 = statistical_block_power(design, window_fraction=0.5,
                                     include_clock=False)
        for block in c1:
            assert c2[block].avg_power_mw == pytest.approx(
                2.0 * c1[block].avg_power_mw
            )

    def test_b5_is_dominant_power_block(self, design):
        stats = statistical_block_power(design)
        powers = {b: s.avg_power_mw for b, s in stats.items()}
        assert max(powers, key=powers.get) == "B5"

    def test_toggle_rate_scales_logic_power(self, design):
        lo = statistical_block_power(design, toggle_rate=0.1,
                                     include_clock=False)
        hi = statistical_block_power(design, toggle_rate=0.3,
                                     include_clock=False)
        assert hi["B5"].avg_power_mw == pytest.approx(
            3.0 * lo["B5"].avg_power_mw
        )

    def test_invalid_parameters(self, design):
        with pytest.raises(ConfigError):
            statistical_block_power(design, window_fraction=0.0)
        with pytest.raises(ConfigError):
            statistical_block_power(design, toggle_rate=1.5)

    def test_chip_power_is_sum(self, design):
        stats = statistical_block_power(design)
        assert chip_power_mw(stats) == pytest.approx(
            sum(s.avg_power_mw for s in stats.values())
        )

    def test_clock_energy_positive(self, design):
        tree = design.clock_trees["clka"]
        assert clock_tree_cycle_energy_fj(tree) > 0
        per_buf = clock_buffer_energies_fj(tree)
        assert sum(per_buf.values()) == pytest.approx(
            clock_tree_cycle_energy_fj(tree, edges=1)
        )


class TestScapModel:
    def test_scap_vs_cap(self):
        profile = PatternPowerProfile(
            pattern_index=0,
            period_ns=20.0,
            stw_ns=10.0,
            n_transitions=100,
            energy_fj_total=20000.0,
            energy_fj_by_block={"B5": 5000.0},
        )
        assert profile.cap_mw() == pytest.approx(1e-3 * 20000 / 20)
        assert profile.scap_mw() == pytest.approx(2 * profile.cap_mw())
        assert profile.scap_to_cap_ratio == pytest.approx(2.0)
        assert profile.scap_mw("B5") == pytest.approx(1e-3 * 5000 / 10)
        assert profile.scap_mw("B9") == 0.0

    def test_quiet_pattern_zero_scap(self):
        profile = PatternPowerProfile(0, 20.0, 0.0, 0, 0.0)
        assert profile.scap_mw() == 0.0
        assert profile.scap_to_cap_ratio == 0.0


class TestScapCalculator:
    @pytest.fixture(scope="class")
    def calc(self, design):
        return ScapCalculator(design, "clka")

    def test_random_pattern_profile(self, design, calc):
        rng = np.random.default_rng(1)
        v1 = {fi: int(rng.integers(2)) for fi in range(design.netlist.n_flops)}
        profile = calc.profile_pattern(v1, index=7)
        assert profile.pattern_index == 7
        assert profile.stw_ns > 0
        assert profile.scap_mw() > profile.cap_mw()

    def test_all_zero_pattern_is_quiet(self, design, calc):
        """The load-enable structure makes all-zeros a near fixed point:
        only the ungated bus registers may flip once."""
        v1 = {fi: 0 for fi in range(design.netlist.n_flops)}
        profile = calc.profile_pattern(v1, index=0)
        bus_nets = sum(
            1 for name in design.netlist.net_names if name.startswith("bus_")
        )
        assert profile.n_transitions <= bus_nets
        # And every block's own logic stays silent.
        for block in design.blocks():
            assert profile.energy_fj(block) == 0.0

    def test_engines_agree_on_energy_order(self, design):
        rng = np.random.default_rng(3)
        v1 = {fi: int(rng.integers(2)) for fi in range(design.netlist.n_flops)}
        ev = ScapCalculator(design, "clka", engine="event")
        fa = ScapCalculator(design, "clka", engine="fast")
        pe = ev.profile_pattern(v1, index=0)
        pf = fa.profile_pattern(v1, index=0)
        # Fast engine ignores hazards: it can only under-count.
        assert pf.energy_fj_total <= pe.energy_fj_total * 1.0001
        assert pf.energy_fj_total > 0.3 * pe.energy_fj_total

    def test_raw_dict_needs_index(self, calc):
        with pytest.raises(ConfigError):
            calc.profile_pattern({0: 1})

    def test_bad_engine_rejected(self, design):
        with pytest.raises(ConfigError):
            ScapCalculator(design, "clka", engine="spice")

    def test_unknown_domain_rejected(self, design):
        with pytest.raises(ConfigError):
            ScapCalculator(design, "clkz")
