"""Tests for STIL pattern I/O and the preferred-fill extension."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.atpg import AtpgEngine, apply_fill
from repro.atpg.fill import preferred_fill_bits
from repro.dft import read_stil, write_stil
from repro.errors import AtpgError, ScanError
from repro.power import ScapCalculator
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=9)


@pytest.fixture(scope="module")
def pattern_set(design):
    engine = AtpgEngine(design.netlist, "clka", scan=design.scan, seed=4)
    return engine.run(fill="random", max_patterns=12).pattern_set


class TestStil:
    def _roundtrip(self, ps, scan=None):
        buf = io.StringIO()
        write_stil(ps, buf, scan=scan)
        buf.seek(0)
        return read_stil(buf)

    def test_roundtrip_preserves_vectors(self, design, pattern_set):
        back = self._roundtrip(pattern_set, design.scan)
        assert len(back) == len(pattern_set)
        assert back.domain == pattern_set.domain
        assert back.fill == pattern_set.fill
        for orig, copy in zip(pattern_set, back):
            assert (orig.v1 == copy.v1).all()
            assert (orig.care == copy.care).all()
            assert orig.index == copy.index
            assert orig.targeted_faults == copy.targeted_faults

    def test_file_mentions_chains(self, design, pattern_set):
        buf = io.StringIO()
        write_stil(pattern_set, buf, scan=design.scan)
        text = buf.getvalue()
        assert "ScanStructures" in text
        assert f"Chain {design.scan.chains[0].index}" in text

    def test_bad_magic_rejected(self):
        with pytest.raises(ScanError):
            read_stil(io.StringIO("WGL 1.0;\n"))

    def test_truncated_pattern_rejected(self):
        text = "STIL 1.0;\nPattern 0 {\n  Care 1;\n}\n"
        with pytest.raises(ScanError):
            read_stil(io.StringIO(text))

    def test_inconsistent_lengths_rejected(self):
        text = (
            "STIL 1.0;\n"
            "Pattern 0 {\n  Targets -;\n  Care 0;\n"
            "  Load 0101;\n  Mask 0000;\n}\n"
            "Pattern 1 {\n  Targets -;\n  Care 0;\n"
            "  Load 01;\n  Mask 00;\n}\n"
        )
        with pytest.raises(ScanError):
            read_stil(io.StringIO(text))


class TestPreferredFill:
    def test_table_shape(self, design):
        bits = preferred_fill_bits(design.netlist, "clka")
        assert bits.shape == (design.netlist.n_flops,)
        assert set(np.unique(bits)).issubset({0, 1})

    def test_held_flops_prefer_zero(self, design):
        bits = preferred_fill_bits(design.netlist, "clka")
        for fi, flop in enumerate(design.netlist.flops):
            if flop.clock_domain != "clka" or flop.edge != "pos":
                assert bits[fi] == 0

    def test_apply_preferred_respects_care_bits(self, design):
        n = design.netlist.n_flops
        bits = preferred_fill_bits(design.netlist, "clka")
        cube = {0: 1 - int(bits[0]), 3: 1}
        v1 = apply_fill(cube, n, "preferred", preferred=bits)
        assert v1[0] == cube[0]
        free = np.ones(n, dtype=bool)
        free[[0, 3]] = False
        assert (v1[free] == bits[free]).all()

    def test_preferred_needs_table(self):
        with pytest.raises(AtpgError):
            apply_fill({0: 1}, 4, "preferred")

    def test_preferred_quieter_than_random(self, design):
        """Extension result: preferred fill lowers mean launch activity
        versus random fill for the same fault targets."""
        calc = ScapCalculator(design, "clka")

        def mean_transitions(fill):
            engine = AtpgEngine(design.netlist, "clka", scan=design.scan,
                                seed=4)
            res = engine.run(fill=fill, max_patterns=15)
            totals = [
                calc.profile_pattern(p).n_transitions
                for p in res.pattern_set
            ]
            return float(np.mean(totals))

        assert mean_transitions("preferred") < mean_transitions("random")
