"""Tests for the static DRC & testability lint subsystem (repro.drc)."""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.drc import (
    DrcContext,
    ERROR,
    INFO,
    WARN,
    Violation,
    WaiverSet,
    check_netlist_drc,
    default_registry,
    load_waivers,
    run_drc,
)
from repro.errors import ConfigError, DrcError
from repro.netlist import Netlist, check_netlist
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.soc import build_turbo_eagle


# ----------------------------------------------------------------------
# deliberately broken netlists, one per defect class
# ----------------------------------------------------------------------
def _base(name: str) -> Netlist:
    """a --inv--> y with one scan flop hanging off the input."""
    nl = Netlist(name)
    a = nl.add_net("a")
    y = nl.add_net("y")
    nl.add_primary_input(a)
    nl.add_primary_output(y)
    nl.add_gate("u_y", "INVX1", [a], y)
    return nl


def broken_loop() -> Netlist:
    nl = _base("has_loop")
    l1 = nl.add_net("l1")
    l2 = nl.add_net("l2")
    z = nl.add_net("z")
    nl.add_gate("u_loop1", "INVX1", [l2], l1)
    nl.add_gate("u_loop2", "INVX1", [l1], l2)
    nl.add_gate("u_z", "INVX1", [l1], z)
    nl.add_primary_output(z)
    return nl


def broken_float() -> Netlist:
    nl = _base("has_float")
    ghost = nl.add_net("ghost")
    z = nl.add_net("z")
    nl.add_gate("u_f", "INVX1", [ghost], z)
    nl.add_primary_output(z)
    return nl


def broken_contention() -> Netlist:
    nl = _base("has_contention")
    b = nl.add_net("b")
    nl.add_primary_input(b)
    z = nl.add_net("z")
    nl.add_gate("u_c1", "INVX1", [nl.net_id("a")], z)
    nl.add_gate("u_c2", "INVX1", [b], z)
    nl.add_primary_output(z)
    return nl


def broken_chain() -> Netlist:
    """Two scan flops claiming the same shift position on chain 0."""
    nl = _base("has_broken_chain")
    q0 = nl.add_net("q0")
    q1 = nl.add_net("q1")
    d01 = nl.add_net("d01")
    nl.add_gate("u_d", "INVX1", [q0], d01)
    f0 = nl.add_flop("f0", "SDFFX1", d=d01, q=q0,
                     clock_domain="clka", is_scan=True)
    f1 = nl.add_flop("f1", "SDFFX1", d=d01, q=q1,
                     clock_domain="clka", is_scan=True)
    nl.flops[f0].chain, nl.flops[f0].chain_pos = 0, 0
    nl.flops[f1].chain, nl.flops[f1].chain_pos = 0, 0
    nl.add_primary_output(q1)
    return nl


def broken_cdc() -> Netlist:
    """clka flop feeds a clkb flop combinationally."""
    nl = _base("has_cdc")
    q0 = nl.add_net("q0")
    q1 = nl.add_net("q1")
    d0 = nl.add_net("d0")
    d1 = nl.add_net("d1")
    nl.add_gate("u_d1", "INVX1", [q0], d1)
    nl.add_gate("u_d0", "INVX1", [q1], d0)
    f0 = nl.add_flop("f0", "SDFFX1", d=d0, q=q0,
                     clock_domain="clka", is_scan=True)
    f1 = nl.add_flop("f1", "SDFFX1", d=d1, q=q1,
                     clock_domain="clkb", is_scan=True)
    nl.flops[f0].chain, nl.flops[f0].chain_pos = 0, 0
    nl.flops[f1].chain, nl.flops[f1].chain_pos = 0, 1
    nl.add_primary_output(q1)
    return nl


def _run(nl: Netlist):
    return run_drc(DrcContext.for_netlist(nl))


# ----------------------------------------------------------------------
class TestStructuralRules:
    def test_clean_base_is_error_free(self):
        assert _run(_base("clean")).is_clean("error")

    def test_loop_detected_with_cycle_gates(self):
        report = _run(broken_loop())
        hits = report.by_rule("STR-LOOP")
        assert len(hits) == 1
        assert hits[0].severity == ERROR
        assert "combinational loop" in hits[0].message
        # the reported walk names the actual cycle, not just "a loop"
        assert {"u_loop1", "u_loop2"} <= set(hits[0].location["gates"])

    def test_floating_input_detected(self):
        report = _run(broken_float())
        hits = report.by_rule("STR-FLOAT")
        assert any("ghost" in v.message for v in hits)
        assert all(v.severity == ERROR for v in hits)

    def test_contention_detected_with_both_drivers(self):
        report = _run(broken_contention())
        hits = report.by_rule("STR-DRIVE")
        assert len(hits) == 1
        assert "u_c1" in hits[0].message and "u_c2" in hits[0].message

    def test_dangling_output_is_warn_only(self):
        nl = _base("has_dangle")
        z = nl.add_net("z")
        nl.add_gate("u_dangle", "INVX1", [nl.net_id("a")], z)
        report = _run(nl)
        assert report.is_clean("error")
        assert any(
            v.rule_id == "STR-DANGLE" and "u_dangle" in v.message
            for v in report.warnings()
        )

    def test_unknown_cell_detected(self):
        nl = _base("has_bad_cell")
        nl.gates[0].cell = "NAND99X7"  # mutate past the add_gate check
        report = _run(nl)
        assert "STR-CELL" in report.rule_ids_hit()


class TestScanRules:
    def test_duplicate_position_breaks_chain(self):
        report = _run(broken_chain())
        hits = report.by_rule("SCN-CHAIN")
        assert hits and all(v.severity == ERROR for v in hits)
        assert any("shift order is broken" in v.message for v in hits)

    def test_field_mismatch_chain_without_pos(self):
        nl = broken_cdc()
        nl.flops[0].chain_pos = None  # chain still set
        report = _run(nl)
        assert any(
            "inconsistent chain assignment" in v.message
            for v in report.by_rule("SCN-FIELD")
        )

    def test_field_mismatch_nonscan_on_chain(self):
        nl = broken_cdc()
        nl.flops[0].is_scan = False
        report = _run(nl)
        assert any(
            "not a scan cell" in v.message
            for v in report.by_rule("SCN-FIELD")
        )

    def test_orphan_scan_cell_is_warn(self):
        nl = broken_cdc()
        q2 = nl.add_net("q2")
        d2 = nl.add_net("d2")
        nl.add_gate("u_d2", "INVX1", [nl.net_id("q0")], d2)
        nl.add_flop("f_orphan", "SDFFX1", d=d2, q=q2,
                    clock_domain="clka", is_scan=True)
        nl.add_primary_output(q2)
        report = _run(nl)
        assert any(
            v.rule_id == "SCN-ORPHAN" and "f_orphan" in v.message
            for v in report.warnings()
        )

    def test_mixed_edges_in_chain(self):
        nl = broken_cdc()
        nl.flops[1].edge = "neg"
        report = _run(nl)
        assert "SCN-EDGE" in report.rule_ids_hit()

    def test_domain_crossing_chain_needs_lockup(self):
        report = _run(broken_cdc())
        hits = report.by_rule("SCN-LOCKUP")
        assert hits and all(v.severity == WARN for v in hits)
        assert "lockup" in hits[0].message

    def test_scan_rules_skipped_without_chain_metadata(self):
        report = _run(_base("no_scan"))
        assert "SCN-CHAIN" in report.rules_skipped
        # SCN-FIELD needs only flop metadata and must still run
        assert "SCN-FIELD" in report.rules_run


class TestClockingRules:
    def test_cdc_reported_per_domain_pair(self):
        report = _run(broken_cdc())
        hits = report.by_rule("CLK-CDC")
        pairs = {
            (v.location["from_domain"], v.location["to_domain"])
            for v in hits
        }
        assert ("clka", "clkb") in pairs and ("clkb", "clka") in pairs

    def test_cdc_still_fires_when_netlist_also_loops(self):
        nl = broken_cdc()
        l1 = nl.add_net("l1")
        l2 = nl.add_net("l2")
        nl.add_gate("u_loop1", "INVX1", [l2], l1)
        nl.add_gate("u_loop2", "INVX1", [l1], l2)
        report = _run(nl)
        assert "STR-LOOP" in report.rule_ids_hit()
        assert "CLK-CDC" in report.rule_ids_hit()

    def test_chain_spanning_domains_flagged(self):
        report = _run(broken_cdc())
        assert any(
            "spans clock domains" in v.message
            for v in report.by_rule("CLK-CHAIN")
        )

    def test_undeclared_domain_is_error(self):
        design = build_turbo_eagle("tiny", seed=3)
        design.netlist.flops[0].clock_domain = "clk_rogue"
        report = run_drc(DrcContext.for_design(design))
        assert any(
            v.severity == ERROR and "undeclared domain" in v.message
            for v in report.by_rule("CLK-CHAIN")
        )


class TestRegistryAndReport:
    def test_registry_covers_five_families(self):
        reg = default_registry()
        families = {r.family for r in reg.rules()}
        assert families == {
            "structural", "scan", "clocking", "power", "timing",
        }
        assert len(reg) >= 16

    def test_family_filter(self):
        report = run_drc(
            DrcContext.for_netlist(broken_cdc()), families=["structural"]
        )
        assert all(r.startswith("STR-") for r in report.rules_run)

    def test_report_json_roundtrip(self, tmp_path):
        report = _run(broken_loop())
        path = tmp_path / "drc.json"
        report.save(str(path))
        data = json.loads(path.read_text())
        assert data["counts"]["ERROR"] == len(report.errors())
        assert any(
            v["rule_id"] == "STR-LOOP" for v in data["violations"]
        )

    def test_severity_ordering(self):
        report = _run(broken_loop())
        sevs = [v.severity for v in report.violations]
        order = {ERROR: 0, WARN: 1, INFO: 2}
        assert sevs == sorted(sevs, key=order.__getitem__)


class TestWaivers:
    def test_waived_error_does_not_gate(self):
        waivers = WaiverSet.from_dict(
            {
                "waivers": [
                    {
                        "rule": "STR-LOOP",
                        "match": "u_loop1",
                        "reason": "known ring oscillator",
                    }
                ]
            }
        )
        report = run_drc(
            DrcContext.for_netlist(broken_loop()), waivers=waivers
        )
        loop = report.by_rule("STR-LOOP")[0]
        assert loop.waived
        assert not report.gating_violations("error")
        # the finding stays visible in the report
        assert loop in report.errors(include_waived=True)

    def test_wildcard_rule_patterns(self):
        waivers = WaiverSet.from_dict(
            {"waivers": [{"rule": "STR-*", "reason": "bring-up"}]}
        )
        report = run_drc(
            DrcContext.for_netlist(broken_contention()), waivers=waivers
        )
        assert not report.gating_violations("error")

    def test_load_waivers_file(self, tmp_path):
        path = tmp_path / "waivers.json"
        path.write_text(json.dumps(
            {"waivers": [{"rule": "STR-LOOP", "reason": "x"}]}
        ))
        ws = load_waivers(str(path))
        assert len(ws.waivers) == 1

    def test_malformed_waiver_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            load_waivers(str(path))


class TestBackCompatWrapper:
    def test_check_netlist_returns_error_strings(self):
        issues = check_netlist(broken_float())
        assert issues and any("floating" in s for s in issues)

    def test_check_netlist_clean(self):
        assert check_netlist(_base("clean2")) == []

    def test_check_netlist_drc_returns_report(self):
        report = check_netlist_drc(broken_contention())
        assert report.by_rule("STR-DRIVE")


class TestFlowGate:
    def test_generated_design_passes_gate(self):
        from repro.core.flow import run_drc_gate

        design = build_turbo_eagle("tiny", seed=3)
        report = run_drc_gate(design)
        assert report.is_clean("error")

    def test_corrupted_design_raises_drc_error(self):
        from repro.core.flow import run_drc_gate

        design = build_turbo_eagle("tiny", seed=3)
        design.netlist.flops[0].chain_pos = None  # break scan metadata
        with pytest.raises(DrcError) as excinfo:
            run_drc_gate(design)
        assert excinfo.value.report is not None
        assert "SCN-FIELD" in excinfo.value.report.rule_ids_hit()

    def test_waived_corruption_passes_gate(self):
        from repro.core.flow import run_drc_gate

        design = build_turbo_eagle("tiny", seed=3)
        design.netlist.flops[0].chain_pos = None
        waivers = WaiverSet.from_dict(
            {"waivers": [{"rule": "SCN-FIELD", "reason": "bring-up"}]}
        )
        report = run_drc_gate(design, waivers=waivers)
        assert report.by_rule("SCN-FIELD")[0].waived

    def test_flow_records_drc_in_run_report(self):
        from repro.core.flow import run_noise_tolerant_flow

        design = build_turbo_eagle("tiny", seed=3)
        result, report = run_noise_tolerant_flow(design, max_patterns=2)
        assert result is not None
        assert report.drc is not None and report.drc["clean"]

    def test_flow_fails_fast_on_corrupt_design(self, tmp_path):
        from repro.core.flow import run_noise_tolerant_flow
        from repro.reporting import RUN_FAILED

        design = build_turbo_eagle("tiny", seed=3)
        design.netlist.flops[0].chain_pos = None
        report_path = tmp_path / "run.json"
        with pytest.raises(DrcError):
            run_noise_tolerant_flow(
                design, max_patterns=2, report_path=str(report_path)
            )
        data = json.loads(report_path.read_text())
        assert data["status"] == RUN_FAILED
        assert not data["drc"]["clean"]


# ----------------------------------------------------------------------
# property: generated designs are DRC-clean at ERROR severity, for any
# generation seed (the gate should only ever trip on *modified* designs)
# ----------------------------------------------------------------------
class TestGeneratedDesignsClean:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_tiny_design_error_clean_for_any_seed(self, seed):
        design = build_turbo_eagle("tiny", seed=seed)
        report = run_drc(DrcContext.for_design(design))
        assert report.is_clean("error"), report.format_text()

    def test_regenerated_design_stays_clean(self):
        # regeneration with the same seed is deterministic and clean
        for _ in range(2):
            design = build_turbo_eagle("tiny", seed=2007)
            assert run_drc(DrcContext.for_design(design)).is_clean("error")


# ----------------------------------------------------------------------
# Verilog round-trip of scan-chain metadata (chain=c:p pragma)
# ----------------------------------------------------------------------
class TestVerilogChainPragma:
    def test_chain_metadata_roundtrips(self):
        design = build_turbo_eagle("tiny", seed=3)
        buf = io.StringIO()
        write_verilog(design.netlist, buf)
        text = buf.getvalue()
        assert "chain=" in text
        parsed = parse_verilog(io.StringIO(text))
        orig = [(f.name, f.chain, f.chain_pos)
                for f in design.netlist.flops]
        back = [(f.name, f.chain, f.chain_pos) for f in parsed.flops]
        assert back == orig

    def test_parsed_netlist_runs_scan_rules(self):
        design = build_turbo_eagle("tiny", seed=3)
        buf = io.StringIO()
        write_verilog(design.netlist, buf)
        report = _run(parse_verilog(io.StringIO(buf.getvalue())))
        assert "SCN-CHAIN" in report.rules_run
        assert report.is_clean("error")


# ----------------------------------------------------------------------
# timing rule family (TIM-*)
# ----------------------------------------------------------------------
def uncon_endpoint() -> Netlist:
    """A scan flop whose D cone is fed only by a primary input."""
    nl = _base("has_uncon")
    q0 = nl.add_net("q0")
    d0 = nl.add_net("d0")
    nl.add_gate("u_d0", "INVX1", [0], d0)  # net 0 is PI "a"
    f0 = nl.add_flop("f0", "SDFFX1", d=d0, q=q0,
                     clock_domain="clka", is_scan=True)
    nl.flops[f0].chain, nl.flops[f0].chain_pos = 0, 0
    nl.add_primary_output(q0)
    return nl


def launched_endpoint() -> Netlist:
    """Two scan flops, the second launched by the first."""
    nl = _base("has_launch")
    q0 = nl.add_net("q0")
    q1 = nl.add_net("q1")
    d0 = nl.add_net("d0")
    d1 = nl.add_net("d1")
    nl.add_gate("u_d0", "INVX1", [0], d0)
    nl.add_gate("u_d1", "INVX1", [q0], d1)
    f0 = nl.add_flop("f0", "SDFFX1", d=d0, q=q0,
                     clock_domain="clka", is_scan=True)
    f1 = nl.add_flop("f1", "SDFFX1", d=d1, q=q1,
                     clock_domain="clka", is_scan=True)
    nl.flops[f0].chain, nl.flops[f0].chain_pos = 0, 0
    nl.flops[f1].chain, nl.flops[f1].chain_pos = 0, 1
    nl.add_primary_output(q1)
    return nl


def _fast_domain(design, name: str, freq_mhz: float):
    """Swap one clock domain for an impossibly fast copy."""
    from repro.soc.clocks import ClockDomainSpec

    old = design.domains[name]
    design.domains[name] = ClockDomainSpec(
        name=name, freq_mhz=freq_mhz, blocks=old.blocks
    )
    return design


class TestTimingRules:
    def test_clean_design_reports_closure(self):
        design = build_turbo_eagle("tiny", seed=3)
        report = run_drc(
            DrcContext.for_design(design), families=["timing"]
        )
        assert set(report.rules_run) == {
            "TIM-SLACK", "TIM-MARGIN", "TIM-UNCON",
        }
        assert report.rules_skipped["TIM-DROOP"] == "no power-grid model"
        closures = report.by_rule("TIM-SLACK")
        assert closures and all(v.severity == INFO for v in closures)
        assert all("timing closed" in v.message for v in closures)

    def test_droop_rule_needs_grid(self):
        from repro.pgrid import GridModel

        design = build_turbo_eagle("tiny", seed=3)
        model = GridModel.calibrated(design, nx=12, ny=12)
        ctx = DrcContext.for_design(design, grid=model)
        report = run_drc(ctx, families=["timing"])
        assert "TIM-DROOP" in report.rules_run
        droop = report.by_rule("TIM-DROOP")
        assert droop, "TIM-DROOP reported nothing"
        # every domain gets exactly one summary finding
        assert len(droop) == len(
            {v.location["domain"] for v in droop}
        )

    def test_slack_errors_on_impossible_period(self):
        design = _fast_domain(
            build_turbo_eagle("tiny", seed=3), "clka", 5000.0
        )
        report = run_drc(
            DrcContext.for_design(design), families=["timing"]
        )
        errors = [
            v for v in report.by_rule("TIM-SLACK")
            if v.severity == ERROR
        ]
        assert errors
        assert all(v.location["slack_ns"] < 0 for v in errors)
        assert report.gating_violations("error")

    def test_slack_errors_waivable(self):
        design = _fast_domain(
            build_turbo_eagle("tiny", seed=3), "clka", 5000.0
        )
        waivers = WaiverSet.from_dict(
            {"waivers": [{"rule": "TIM-SLACK", "reason": "bring-up"}]}
        )
        report = run_drc(
            DrcContext.for_design(design), families=["timing"],
            waivers=waivers,
        )
        assert not report.gating_violations("error")

    def test_margin_guard_band(self):
        design = build_turbo_eagle("tiny", seed=3)
        # Huge guard band: every closing endpoint is inside it.
        wide = run_drc(
            DrcContext.for_design(design, timing_guard_band_ns=1e6),
            families=["timing"],
        )
        assert wide.by_rule("TIM-MARGIN")
        # Zero guard band: nothing can sit inside it.
        none = run_drc(
            DrcContext.for_design(design, timing_guard_band_ns=0.0),
            families=["timing"],
        )
        assert not none.by_rule("TIM-MARGIN")

    def test_uncon_flags_pi_only_cone(self):
        report = run_drc(
            DrcContext.for_netlist(uncon_endpoint()),
            families=["timing"],
        )
        uncon = report.by_rule("TIM-UNCON")
        assert len(uncon) == 1
        assert uncon[0].location["flop_name"] == "f0"
        # ... and a launched endpoint is not flagged
        report2 = run_drc(
            DrcContext.for_netlist(launched_endpoint()),
            families=["timing"],
        )
        flagged = {
            v.location["flop_name"]
            for v in report2.by_rule("TIM-UNCON")
        }
        assert "f1" not in flagged

    def test_bare_netlist_skips_design_rules(self):
        report = run_drc(
            DrcContext.for_netlist(uncon_endpoint()),
            families=["timing"],
        )
        assert report.rules_run == ["TIM-UNCON"]
        for rule_id in ("TIM-SLACK", "TIM-MARGIN", "TIM-DROOP"):
            assert rule_id in report.rules_skipped

    def test_timing_findings_json_roundtrip(self, tmp_path):
        design = _fast_domain(
            build_turbo_eagle("tiny", seed=3), "clka", 5000.0
        )
        report = run_drc(
            DrcContext.for_design(design), families=["timing"]
        )
        path = tmp_path / "tim.json"
        report.save(str(path))
        data = json.loads(path.read_text())
        assert any(
            v["rule_id"] == "TIM-SLACK" and v["severity"] == ERROR
            for v in data["violations"]
        )

    def test_flow_gate_ignores_timing_family(self):
        # The pre-flow gate runs structural/scan/clocking only: a
        # timing-broken (but structurally clean) design still flows.
        from repro.core.flow import run_drc_gate

        design = _fast_domain(
            build_turbo_eagle("tiny", seed=3), "clka", 5000.0
        )
        report = run_drc_gate(design)
        assert report.is_clean("error")
        assert "TIM-SLACK" not in report.rules_run
