"""Tests for per-block fill (the paper's 'more ideal scenario')."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CaseStudy
from repro.atpg import AtpgEngine
from repro.atpg.fill import apply_per_block_fill
from repro.core import NoiseAwarePatternGenerator, validate_pattern_set
from repro.errors import AtpgError
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=107)


class TestApplyPerBlockFill:
    def test_policies_applied_by_block(self, design):
        n = design.netlist.n_flops
        blocks = [f.block for f in design.netlist.flops]
        cube = {0: 1}
        v1 = apply_per_block_fill(
            cube, n, blocks, {"B1": "1"}, default_policy="0",
            scan=design.scan,
        )
        for fi in range(1, n):
            if blocks[fi] == "B1":
                assert v1[fi] == 1
            elif blocks[fi] is not None:
                assert v1[fi] == 0
        assert v1[0] == 1  # care bit wins everywhere

    def test_random_policy_needs_rng_zone_only(self, design):
        n = design.netlist.n_flops
        blocks = [f.block for f in design.netlist.flops]
        rng = np.random.default_rng(3)
        v1 = apply_per_block_fill(
            {}, n, blocks, {"B5": "random"}, default_policy="0",
            scan=design.scan, rng=rng,
        )
        b5 = [v1[fi] for fi in range(n) if blocks[fi] == "B5"]
        others = [v1[fi] for fi in range(n)
                  if blocks[fi] not in (None, "B5")]
        assert any(b5)          # random zone switches
        assert not any(others)  # quiet zone stays 0

    def test_validation(self, design):
        n = design.netlist.n_flops
        blocks = [f.block for f in design.netlist.flops]
        with pytest.raises(AtpgError):
            apply_per_block_fill({}, n, blocks, {"B1": "chaotic"})
        with pytest.raises(AtpgError):
            apply_per_block_fill({}, n, ["B1"], {})


class TestPerBlockFlow:
    @pytest.fixture(scope="class")
    def study(self):
        return CaseStudy(scale="tiny", seed=2007, backtrack_limit=60)

    @pytest.fixture(scope="class")
    def flows(self, study):
        out = {}
        for label, fill in (("fill0", "0"), ("per-block", "per-block")):
            out[label] = NoiseAwarePatternGenerator(
                study.design, seed=1, backtrack_limit=60, fill=fill,
            ).run()
        return out

    def test_prefix_still_quiet(self, study, flows):
        report = validate_pattern_set(
            study.calculator, flows["per-block"].pattern_set,
            study.thresholds_mw,
        )
        series = report.scap_series("B5")
        b5_start = flows["per-block"].step_boundaries[-1]
        assert (series[:b5_start] == 0.0).all()

    def test_coverage_recovers(self, flows):
        """Random fill inside targeted blocks restores the fortuitous
        detection that pure fill-0 loses."""
        assert (
            flows["per-block"].test_coverage
            >= flows["fill0"].test_coverage - 0.01
        )

    def test_engine_rejects_missing_blocks(self, design):
        engine = AtpgEngine(design.netlist, "clka", scan=design.scan,
                            seed=1)
        # per-block with an empty map = fill-0 everywhere; must run.
        result = engine.run(fill="per-block", max_patterns=5)
        assert result.n_patterns <= 5
        for pattern in result.pattern_set:
            assert pattern.fill == "per-block"
