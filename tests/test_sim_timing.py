"""Tests for the delay model, event-driven and fast timing engines."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.config import ElectricalEnv
from repro.errors import SimulationError
from repro.netlist import Netlist, extract_net_caps
from repro.sim import (
    DelayModel,
    EventTimingSim,
    FastTimingSim,
    LogicSim,
    endpoint_delays,
    loc_launch_capture,
)
from repro.sim.event import build_launch_events
from repro.soc import build_turbo_eagle


@pytest.fixture
def chain3():
    """q0 -> inv -> buf -> inv -> d0, one scan flop."""
    nl = Netlist("chain3")
    q0 = nl.add_net("q0")
    n1 = nl.add_net("n1")
    n2 = nl.add_net("n2")
    d0 = nl.add_net("d0")
    nl.add_gate("g1", "INVX1", [q0], n1)
    nl.add_gate("g2", "BUFX2", [n1], n2)
    nl.add_gate("g3", "INVX1", [n2], d0)
    nl.add_flop("f0", "SDFFX1", d=d0, q=q0, clock_domain="clka",
                is_scan=True)
    return nl


class TestDelayModel:
    def test_delays_positive(self, chain3):
        dm = DelayModel(chain3)
        assert (dm.gate_delay_ns > 0).all()
        assert (dm.flop_ck2q_ns > 0).all()

    def test_scaling_formula(self, chain3):
        dm = DelayModel(chain3)
        env = ElectricalEnv()  # k_volt = 0.9
        drop = np.full(3, 0.1)  # 100 mV droop -> +9 % delay
        scaled = dm.scaled(drop, np.zeros(1), env)
        assert scaled.gate_delay_ns == pytest.approx(
            dm.gate_delay_ns * 1.09
        )
        assert scaled.flop_ck2q_ns == pytest.approx(dm.flop_ck2q_ns)

    def test_negative_drop_clamped(self, chain3):
        dm = DelayModel(chain3)
        scaled = dm.scaled(np.full(3, -0.5), np.zeros(1))
        assert scaled.gate_delay_ns == pytest.approx(dm.gate_delay_ns)

    def test_wrong_shape_rejected(self, chain3):
        dm = DelayModel(chain3)
        with pytest.raises(SimulationError):
            dm.scaled(np.zeros(99), np.zeros(1))

    def test_critical_path_positive(self, chain3):
        assert DelayModel(chain3).critical_path_estimate_ns() > 0


class TestEventSim:
    def test_single_transition_propagates(self, chain3):
        dm = DelayModel(chain3)
        sim = LogicSim(chain3)
        ets = EventTimingSim(chain3, dm)
        init = sim.run({0: 0})  # q0=0 -> n1=1 n2=1 d0=0
        res = ets.simulate(init, [(0.5, chain3.net_id("q0"), 1)], 20.0)
        # q0, n1, n2, d0 all toggle exactly once.
        assert res.n_transitions == 4
        assert (res.toggles == 1).all()
        d0_arrival = res.last_arrival_ns[chain3.net_id("d0")]
        expected = 0.5 + dm.gate_delay_ns.sum()
        assert d0_arrival == pytest.approx(expected)
        assert res.stw_ns == pytest.approx(expected)
        assert not res.truncated

    def test_no_launch_no_events(self, chain3):
        dm = DelayModel(chain3)
        sim = LogicSim(chain3)
        ets = EventTimingSim(chain3, dm)
        init = sim.run({0: 0})
        res = ets.simulate(init, [], 20.0)
        assert res.n_transitions == 0
        assert res.stw_ns == 0.0
        assert math.isnan(res.last_arrival_ns[chain3.net_id("d0")])

    def test_energy_accounting(self, chain3):
        dm = DelayModel(chain3)
        sim = LogicSim(chain3)
        caps = extract_net_caps(chain3)
        ets = EventTimingSim(chain3, dm, caps, vdd=1.8)
        init = sim.run({0: 0})
        res = ets.simulate(init, [(0.0, chain3.net_id("q0"), 1)], 20.0)
        expected = caps.net_cap_ff.sum() * 1.8 * 1.8  # all 4 nets toggle
        assert res.energy_fj_total == pytest.approx(expected)

    def test_trace_recording(self, chain3):
        dm = DelayModel(chain3)
        sim = LogicSim(chain3)
        ets = EventTimingSim(chain3, dm)
        init = sim.run({0: 0})
        res = ets.simulate(init, [(0.0, chain3.net_id("q0"), 1)], 20.0,
                           record_trace=True)
        assert len(res.trace) == 4
        times = [t for t, _n, _v in res.trace]
        assert times == sorted(times)

    def test_redundant_launch_filtered(self, chain3):
        dm = DelayModel(chain3)
        sim = LogicSim(chain3)
        ets = EventTimingSim(chain3, dm)
        init = sim.run({0: 0})
        # Setting q0 to its existing value produces no activity.
        res = ets.simulate(init, [(0.0, chain3.net_id("q0"), 0)], 20.0)
        assert res.n_transitions == 0

    def test_glitch_captured(self):
        """Reconvergent XOR with unequal path delays glitches."""
        nl = Netlist("glitch")
        q = nl.add_net("q")
        slow1 = nl.add_net("slow1")
        slow2 = nl.add_net("slow2")
        y = nl.add_net("y")
        d = nl.add_net("d")
        nl.add_gate("b1", "BUFX2", [q], slow1)
        nl.add_gate("b2", "BUFX2", [slow1], slow2)
        nl.add_gate("x", "XOR2X1", [q, slow2], y)
        nl.add_gate("b3", "BUFX2", [y], d)
        nl.add_flop("f", "SDFFX1", d=d, q=q, clock_domain="clka",
                    is_scan=True)
        sim = LogicSim(nl)
        dm = DelayModel(nl)
        ets = EventTimingSim(nl, dm)
        init = sim.run({0: 0})
        res = ets.simulate(init, [(0.0, q, 1)], 20.0)
        # y settles back to 0 but pulses high: 2 transitions on y.
        assert res.toggles[y] == 2
        assert res.toggles[d] == 2

    def test_bad_initial_values_rejected(self, chain3):
        ets = EventTimingSim(chain3, DelayModel(chain3))
        with pytest.raises(SimulationError):
            ets.simulate([0, 1], [], 20.0)


class TestFastVsEvent:
    def test_agree_on_hazard_free_chain(self, chain3):
        dm = DelayModel(chain3)
        sim = LogicSim(chain3)
        init = sim.run({0: 0})
        final = sim.run({0: 1})
        ets = EventTimingSim(chain3, dm)
        fts = FastTimingSim(chain3, dm)
        ev = ets.simulate(init, [(0.3, chain3.net_id("q0"), 1)], 20.0)
        fa = fts.simulate(init, final, {0: 1}, {0: 0.3 - dm.flop_ck2q_ns[0]},
                          20.0)
        assert fa.n_transitions == ev.n_transitions
        assert fa.stw_ns == pytest.approx(ev.stw_ns)
        assert fa.energy_fj_total == pytest.approx(ev.energy_fj_total)

    def test_fast_underestimates_glitch_power(self):
        design = build_turbo_eagle("tiny", seed=23)
        nl = design.netlist
        sim = LogicSim(nl)
        dm = DelayModel(nl, design.parasitics)
        ets = EventTimingSim(nl, dm, design.parasitics)
        fts = FastTimingSim(nl, dm, design.parasitics)
        tree = design.clock_trees["clka"]
        rng = np.random.default_rng(3)
        v1 = {fi: int(rng.integers(2)) for fi in range(nl.n_flops)}
        cyc = loc_launch_capture(sim, v1, "clka")
        lt = {fi: tree.insertion_delay_ns(fi) for fi in cyc.pulsed_flops}
        launch = {fi: cyc.launch_state[fi] for fi in lt}
        events = build_launch_events(nl, cyc.frame1, launch, lt,
                                     dm.flop_ck2q_ns)
        ev = ets.simulate(cyc.frame1, events, 20.0)
        fa = fts.simulate(cyc.frame1, cyc.frame2, launch, lt, 20.0)
        assert fa.energy_fj_total <= ev.energy_fj_total * 1.0001
        assert fa.n_transitions <= ev.n_transitions


class TestEndpoints:
    def test_endpoint_delay_reference(self):
        design = build_turbo_eagle("tiny", seed=29)
        nl = design.netlist
        sim = LogicSim(nl)
        dm = DelayModel(nl, design.parasitics)
        ets = EventTimingSim(nl, dm, design.parasitics)
        tree = design.clock_trees["clka"]
        rng = np.random.default_rng(4)
        v1 = {fi: int(rng.integers(2)) for fi in range(nl.n_flops)}
        cyc = loc_launch_capture(sim, v1, "clka")
        lt = {fi: tree.insertion_delay_ns(fi) for fi in cyc.pulsed_flops}
        launch = {fi: cyc.launch_state[fi] for fi in lt}
        events = build_launch_events(nl, cyc.frame1, launch, lt,
                                     dm.flop_ck2q_ns)
        res = ets.simulate(cyc.frame1, events, 20.0)
        delays = endpoint_delays(nl, tree, res)
        active = [d for d in delays.values() if d != 0.0]
        assert active, "expected at least one active endpoint"
        assert max(active) < 20.0  # paths fit in the cycle

    def test_slower_capture_clock_reduces_measured_delay(self):
        design = build_turbo_eagle("tiny", seed=29)
        nl = design.netlist
        sim = LogicSim(nl)
        dm = DelayModel(nl, design.parasitics)
        ets = EventTimingSim(nl, dm, design.parasitics)
        tree = design.clock_trees["clka"]
        rng = np.random.default_rng(4)
        v1 = {fi: int(rng.integers(2)) for fi in range(nl.n_flops)}
        cyc = loc_launch_capture(sim, v1, "clka")
        lt = {fi: tree.insertion_delay_ns(fi) for fi in cyc.pulsed_flops}
        launch = {fi: cyc.launch_state[fi] for fi in lt}
        events = build_launch_events(nl, cyc.frame1, launch, lt,
                                     dm.flop_ck2q_ns)
        res = ets.simulate(cyc.frame1, events, 20.0)
        nominal = endpoint_delays(nl, tree, res)
        slowed = endpoint_delays(
            nl, tree, res, clock_delay_scale=lambda buf, d: d * 1.3
        )
        for fi, d in nominal.items():
            if d != 0.0 and slowed[fi] != 0.0:
                assert slowed[fi] < d
