"""Tests of the HTTP front-end: routing, tenancy, gating, streaming.

A real server runs on a loopback socket for every test (no mocks — the
hand-rolled HTTP/1.1 parsing *is* the subject under test), talked to
through :class:`HttpServiceClient` and, where the raw status line and
headers matter (back-pressure, malformed requests), plain
``http.client`` connections.

The flow-running tests keep to ``n_workers=0`` fleets (the in-process
serial path) so this file stays in the tier-1 lane; the subprocess +
SIGKILL variant lives with the other chaos tests.
"""

from __future__ import annotations

import http.client
import io
import json
import threading

import numpy as np
import pytest

from repro.core import run_noise_tolerant_flow
from repro.errors import (
    JobNotFoundError,
    ServiceBusyError,
    ServiceError,
)
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.service import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_QUEUED,
    HttpServerThread,
    HttpServiceClient,
    JobSpec,
    ServiceClient,
    ServiceConfig,
    TenantFleet,
    TenantManager,
    validate_tenant_name,
)
from repro.soc import build_turbo_eagle, derive_stage_plan, design_from_netlist

QUEUE_DEPTH = 3


@pytest.fixture
def server(tmp_path):
    """A live server with *no* fleet — submitted jobs stay queued."""
    tenants = TenantManager(
        str(tmp_path / "data"),
        default_config=ServiceConfig(max_queue_depth=QUEUE_DEPTH),
    )
    with HttpServerThread(tenants) as srv:
        yield srv, tenants


def raw_request(base_url, method, path, body=None, headers=None):
    """One raw request; returns (status, headers-dict, body-bytes)."""
    host_port = base_url[len("http://"):]
    conn = http.client.HTTPConnection(host_port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        return (
            resp.status,
            {k.lower(): v for k, v in resp.getheaders()},
            resp.read(),
        )
    finally:
        conn.close()


# ----------------------------------------------------------------------
# plumbing: health, routing, request validation
# ----------------------------------------------------------------------
class TestPlumbing:
    def test_healthz(self, server):
        srv, _ = server
        health = HttpServiceClient(srv.base_url).healthz()
        assert health["status"] == "ok"
        assert "uptime_s" in health

    def test_unknown_route_is_404(self, server):
        srv, _ = server
        status, _, body = raw_request(srv.base_url, "GET", "/nope")
        assert status == 404
        assert json.loads(body)["error"]["kind"] == "no_route"

    def test_method_not_allowed_is_405(self, server):
        srv, _ = server
        status, _, _ = raw_request(
            srv.base_url, "PUT", "/v1/t0/jobs",
            body=b"{}", headers={"Content-Type": "application/json"},
        )
        assert status == 405

    def test_bad_json_body_is_400(self, server):
        srv, _ = server
        status, _, body = raw_request(
            srv.base_url, "POST", "/v1/t0/jobs",
            body=b"{not json", headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert json.loads(body)["error"]["kind"] == "bad_json"

    def test_unknown_spec_field_is_400_and_named(self, server):
        srv, _ = server
        status, _, body = raw_request(
            srv.base_url, "POST", "/v1/t0/jobs",
            body=json.dumps({"scael": "tiny"}).encode(),
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        err = json.loads(body)["error"]
        assert err["kind"] == "bad_spec"
        assert "scael" in err["message"]

    def test_invalid_tenant_name_is_400(self, server):
        srv, _ = server
        client = HttpServiceClient(srv.base_url, tenant="NOT-Valid!")
        with pytest.raises(ServiceError) as err:
            client.submit(scale="tiny")
        assert "invalid tenant name" in str(err.value)

    def test_tenant_name_validation(self):
        assert validate_tenant_name("lab-a_1") == "lab-a_1"
        for bad in ("", "UPPER", "-lead", "a" * 33, "dot.dot", "a/b"):
            with pytest.raises(ServiceError):
                validate_tenant_name(bad)

    def test_unknown_job_is_404(self, server):
        srv, _ = server
        client = HttpServiceClient(srv.base_url, tenant="t0")
        with pytest.raises(JobNotFoundError):
            client.status("j-nope")


# ----------------------------------------------------------------------
# submit / status / cancel over the wire
# ----------------------------------------------------------------------
class TestJobsApi:
    def test_submit_status_list_roundtrip(self, server):
        srv, tenants = server
        client = HttpServiceClient(srv.base_url, tenant="t0")
        job_id = client.submit(scale="tiny", seed=9, max_patterns=10)
        job = client.status(job_id)
        assert job.state == JOB_QUEUED
        assert job.spec.seed == 9
        assert [j.id for j in client.jobs()] == [job_id]
        # the wire API wrote a perfectly ordinary store on disk
        assert tenants.store("t0").get(job_id).spec.max_patterns == 10

    def test_cancel_queued_job_then_conflict(self, server):
        srv, tenants = server
        client = HttpServiceClient(srv.base_url, tenant="t0")
        job_id = client.submit(scale="tiny")
        job = client.cancel(job_id)
        assert job.state == JOB_CANCELLED
        # cancellation freed the back-pressure slot
        assert tenants.store("t0").queue_depth() == 0
        # a second cancel is a structured conflict, not a surprise
        with pytest.raises(ServiceError) as err:
            client.cancel(job_id)
        assert "409" in str(err.value)

    def test_cancel_unknown_job_is_404(self, server):
        srv, _ = server
        client = HttpServiceClient(srv.base_url, tenant="t0")
        with pytest.raises(JobNotFoundError):
            client.cancel("j-nope")

    def test_result_of_unfinished_job_is_404(self, server):
        srv, _ = server
        client = HttpServiceClient(srv.base_url, tenant="t0")
        job_id = client.submit(scale="tiny")
        with pytest.raises(ServiceError) as err:
            client.result(job_id)
        assert "no result artefact" in str(err.value)


# ----------------------------------------------------------------------
# netlist uploads: DRC-gated server-side
# ----------------------------------------------------------------------
class TestNetlistGate:
    def test_unparseable_netlist_is_422(self, server):
        srv, _ = server
        client = HttpServiceClient(srv.base_url, tenant="t0")
        with pytest.raises(ServiceError) as err:
            client.submit(netlist_verilog="module busted (; endmodule")
        msg = str(err.value)
        assert "422" in msg and "netlist rejected" in msg

    def test_placement_free_netlist_is_422(self, server):
        srv, _ = server
        client = HttpServiceClient(srv.base_url, tenant="t0")
        verilog = (
            "module bare (clk_a, d, q);\n"
            "  input clk_a, d;\n  output q;\n"
            "  DFFX1 f0 (.D(d), .CK(clk_a), .Q(q));\n"
            "endmodule\n"
        )
        with pytest.raises(ServiceError) as err:
            client.submit(netlist_verilog=verilog)
        assert "placement metadata" in str(err.value)

    def test_valid_netlist_is_accepted_with_derived_shards(self, server):
        srv, _ = server
        design = build_turbo_eagle(scale="tiny", seed=2007)
        buf = io.StringIO()
        write_verilog(design.netlist, buf)
        client = HttpServiceClient(srv.base_url, tenant="t0")
        job_id = client.submit(netlist_verilog=buf.getvalue())
        job = client.status(job_id)
        plan = derive_stage_plan(
            design_from_netlist(parse_verilog(io.StringIO(buf.getvalue())))
        )
        assert len(job.shards) == len(plan)
        assert job.shards[0].name.startswith("stage0_")


# ----------------------------------------------------------------------
# per-tenant back-pressure (satellite: concurrent 429s)
# ----------------------------------------------------------------------
class TestBackPressure:
    def test_429_carries_retry_after_and_depth(self, server):
        srv, _ = server
        client = HttpServiceClient(srv.base_url, tenant="full")
        for _ in range(QUEUE_DEPTH):
            client.submit(scale="tiny")
        status, headers, body = raw_request(
            srv.base_url, "POST", "/v1/full/jobs",
            body=json.dumps({"scale": "tiny"}).encode(),
            headers={"Content-Type": "application/json"},
        )
        assert status == 429
        assert int(headers["retry-after"]) >= 1
        err = json.loads(body)["error"]
        assert err["kind"] == "busy"
        assert (err["depth"], err["limit"]) == (QUEUE_DEPTH, QUEUE_DEPTH)
        # and the typed client surfaces the same thing
        with pytest.raises(ServiceBusyError):
            client.submit(scale="tiny")

    def test_concurrent_submits_exactly_depth_accepted(self, server):
        """N parallel submits against an empty tenant: exactly
        ``max_queue_depth`` get 201, the rest get 429 + Retry-After,
        and the store never exceeds the limit."""
        srv, tenants = server
        n_clients = QUEUE_DEPTH + 5
        results = [None] * n_clients
        barrier = threading.Barrier(n_clients)

        def submit(i):
            barrier.wait()
            results[i] = raw_request(
                srv.base_url, "POST", "/v1/burst/jobs",
                body=json.dumps({"scale": "tiny", "seed": i}).encode(),
                headers={"Content-Type": "application/json"},
            )

        threads = [
            threading.Thread(target=submit, args=(i,))
            for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        statuses = sorted(status for status, _, _ in results)
        assert statuses == [201] * QUEUE_DEPTH + [429] * 5
        for status, headers, _ in results:
            if status == 429:
                assert "retry-after" in headers
        assert tenants.store("burst").queue_depth() == QUEUE_DEPTH

    def test_backpressure_is_per_tenant(self, server):
        srv, _ = server
        noisy = HttpServiceClient(srv.base_url, tenant="noisy")
        for _ in range(QUEUE_DEPTH):
            noisy.submit(scale="tiny")
        with pytest.raises(ServiceBusyError):
            noisy.submit(scale="tiny")
        # the neighbour is unaffected
        quiet = HttpServiceClient(srv.base_url, tenant="quiet")
        assert quiet.submit(scale="tiny").startswith("j")


# ----------------------------------------------------------------------
# metrics exposition
# ----------------------------------------------------------------------
class TestMetrics:
    def test_prometheus_exposition(self, server):
        srv, _ = server
        client = HttpServiceClient(srv.base_url, tenant="t0")
        client.healthz()
        client.submit(scale="tiny")
        text = client.metrics()
        assert "# TYPE repro_http_requests_total counter" in text
        assert 'route="/v1/{tenant}/jobs"' in text
        assert 'repro_service_tenant_queue_depth{tenant="t0"} 1.0' in text
        assert 'repro_service_tenant_queue_limit{tenant="t0"}' in text
        assert "repro_http_request_latency_s_bucket" in text
        # service-layer metrics land in the same registry
        assert "repro_service_jobs_submitted_total" in text


# ----------------------------------------------------------------------
# end to end: execution, events, bit-identity (inline fleet)
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_http_job_events_and_bit_identity(self, tmp_path):
        tenants = TenantManager(str(tmp_path / "data"))
        fleet = TenantFleet(tenants, n_workers=0)
        with HttpServerThread(tenants, fleet=fleet) as srv:
            client = HttpServiceClient(srv.base_url, tenant="e2e")
            job_id = client.submit(scale="tiny", seed=2007, max_patterns=24)
            events = list(client.events(job_id, timeout_s=300))
            job = client.wait(job_id, timeout_s=300)
            assert job.state == JOB_DONE
            result = client.result(job_id)
            report = client.report(job_id)
        # the event stream is a well-formed, in-order NDJSON tail
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert events[-1]["terminal"] is True
        assert events[-1]["state"] == JOB_DONE
        rank = {"queued": 0, "running": 1, "done": 2}
        ranks = [rank[e["state"]] for e in events]
        assert ranks == sorted(ranks)
        # bit-identical to the single-process flow
        design = build_turbo_eagle(scale="tiny", seed=2007)
        ref, _ = run_noise_tolerant_flow(design, seed=1, max_patterns=24)
        assert np.array_equal(result["matrix"], ref.pattern_set.as_matrix())
        assert report.status == "completed"

    def test_jobs_cli_tenant_json_and_cancel(self, server, capsys):
        """``repro jobs --tenant --json`` and ``--cancel`` read and
        mutate the same stores the wire API manages."""
        from repro.cli import main

        srv, tenants = server
        client = HttpServiceClient(srv.base_url, tenant="ops")
        job_id = client.submit(scale="tiny")
        data_root = tenants.data_root
        assert main(["jobs", data_root, "--tenant", "ops", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [j["id"] for j in payload["jobs"]] == [job_id]
        assert main(
            ["jobs", data_root, "--tenant", "ops", "--cancel", job_id]
        ) == 0
        assert "cancelled" in capsys.readouterr().out
        assert client.status(job_id).state == JOB_CANCELLED
        # unknown tenants and bad names are clean CLI errors
        assert main(["jobs", data_root, "--tenant", "ghost"]) == 2
        assert main(["jobs", data_root, "--tenant", "NO!"]) == 2
