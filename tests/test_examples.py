"""Smoke tests: every shipped example runs end to end at tiny scale.

These are the library's integration surface — if an API change breaks a
walkthrough, this is where it shows up.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "case_study_ir_drop",
    "power_aware_atpg",
    "pattern_debug_ir_scaling",
    "fill_and_protocol_survey",
    "advanced_toolkit",
    "production_debug_workflow",
]


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main("tiny")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"
    assert "Traceback" not in out
