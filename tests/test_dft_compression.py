"""Tests for EDT-style test compression."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import AtpgEngine
from repro.dft import EdtCompressor
from repro.dft.compression import _solve_gf2
from repro.errors import ScanError
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=83)


@pytest.fixture(scope="module")
def compressor(design):
    return EdtCompressor(design.scan, n_seed_bits=64)


class TestGf2Solver:
    def test_simple_system(self):
        # x0 ^ x1 = 1 ; x1 = 1  ->  x0 = 0, x1 = 1
        seed = _solve_gf2([0b11, 0b10], [1, 1], 2)
        assert seed is not None
        assert (seed >> 1) & 1 == 1
        assert ((seed & 1) ^ ((seed >> 1) & 1)) == 1

    def test_inconsistent_system(self):
        # x0 = 0 and x0 = 1.
        assert _solve_gf2([0b1, 0b1], [0, 1], 2) is None

    def test_underdetermined_ok(self):
        seed = _solve_gf2([0b1], [1], 8)
        assert seed is not None and seed & 1 == 1

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.lists(
            st.integers(min_value=1, max_value=(1 << 16) - 1),
            min_size=1, max_size=12,
        ),
        seed_truth=st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    def test_solver_roundtrip(self, rows, seed_truth):
        """Any consistent system (built from a ground-truth seed) is
        solved by *some* seed satisfying every equation."""
        rhs = [bin(r & seed_truth).count("1") & 1 for r in rows]
        seed = _solve_gf2(rows, rhs, 16)
        assert seed is not None
        for r, b in zip(rows, rhs):
            assert bin(r & seed).count("1") & 1 == b


class TestCompressor:
    def test_unsupported_width(self, design):
        with pytest.raises(ScanError):
            EdtCompressor(design.scan, n_seed_bits=10)

    def test_every_cell_fed(self, design, compressor):
        assert set(compressor.row_of_flop) == set(
            design.netlist.scan_flops
        )

    def test_expand_compress_roundtrip(self, compressor):
        rng = np.random.default_rng(0)
        for _trial in range(10):
            cells = rng.choice(
                compressor.n_flops, size=12, replace=False
            )
            cube = {int(fi): int(rng.integers(2)) for fi in cells}
            seed = compressor.compress_cube(cube)
            assert seed is not None, "12 care bits must fit in 64 seeds"
            v1 = compressor.expand(seed)
            for fi, bit in cube.items():
                assert v1[fi] == bit

    def test_expansion_is_pseudo_random(self, compressor):
        """The expanded filler looks random (≈half ones), which is the
        supply-noise connection: compression implies random-like fill."""
        v1 = compressor.expand(seed=0xDEADBEEFCAFE1234 & ((1 << 64) - 1))
        density = v1.mean()
        assert 0.25 < density < 0.75

    def test_overconstrained_cube_rejected(self, design):
        # A narrow 24-bit decompressor with ~60 care bits: consistent
        # when derived from a real seed, inconsistent after one flip.
        rng = np.random.default_rng(1)
        narrow = EdtCompressor(design.scan, n_seed_bits=24)
        n = min(60, narrow.n_flops)
        cells = rng.choice(narrow.n_flops, size=n, replace=False)
        base_seed = 0xABCDEF
        v1 = narrow.expand(base_seed)
        cube = {int(fi): int(v1[fi]) for fi in cells}
        assert narrow.compress_cube(cube) is not None  # consistent
        victim = int(cells[0])
        cube[victim] ^= 1
        assert narrow.compress_cube(cube) is None

    def test_pattern_set_compression(self, design):
        # Compression only pays when the seed is narrower than the
        # chains: use the 24-bit decompressor at this design size.
        narrow = EdtCompressor(design.scan, n_seed_bits=24)
        engine = AtpgEngine(design.netlist, "clka", scan=design.scan,
                            seed=6)
        result = engine.run(fill="0", max_patterns=20)
        out = narrow.compress_pattern_set(result.pattern_set)
        assert len(out.seeds) == result.n_patterns
        # Sparse later cubes compress; ratio must beat 1x overall.
        assert out.n_compressed > 0
        assert out.compression_ratio > 1.0
        assert 0.0 <= out.fallback_fraction < 1.0

    def test_compressed_patterns_detect_their_targets(self, design,
                                                      compressor):
        """End-to-end: expanding a solved seed yields a pattern that
        still detects the primary targets (care bits preserved)."""
        from repro.atpg import FaultSimulator, build_fault_universe
        from repro.atpg.faults import TransitionFault

        engine = AtpgEngine(design.netlist, "clka", scan=design.scan,
                            seed=6)
        result = engine.run(fill="0", max_patterns=10)
        fsim = FaultSimulator(design.netlist, "clka")
        checked = 0
        for pattern in result.pattern_set:
            cube = {
                fi: int(pattern.v1[fi])
                for fi in range(pattern.n_flops)
                if pattern.care[fi]
            }
            seed = compressor.compress_cube(cube)
            if seed is None:
                continue
            expanded = compressor.expand(seed)[None, :]
            for fault, idx in result.detected.items():
                if idx == pattern.index and fault.net in \
                        pattern.targeted_faults:
                    words = fsim.run(expanded, [fault])
                    assert words.get(fault, 0) & 1, fault
                    checked += 1
        assert checked > 0
