"""Equivalence tests for the batched/parallel performance paths.

Everything in :mod:`repro.perf`, the multi-word fault simulation and the
batched SCAP grading is a pure speed lever: these tests pin the
bit-for-bit contract against naive references — the quadratic pack loop,
a full-cone interpreted fault simulation, and per-pattern profiling.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.faults import build_fault_universe, collapse_faults
from repro.atpg.fsim import FaultSimulator, first_detection_index
from repro.errors import ExecutionError, TransientError, WorkerCrashError
from repro.netlist.cells import CELL_FUNCTIONS
from repro.perf import chaos
from repro.perf.cache import PatternProfileCache, digest_key
from repro.perf.pool import (
    available_workers,
    chunk_slices,
    chunked,
    pool_map,
    resolve_workers,
)
from repro.perf.resilient import (
    RetryPolicy,
    default_policy,
    execution_policy,
    resilient_map,
)
from repro.power.calculator import ScapCalculator
from repro.sim.logic import loc_launch_capture, pack_matrix
from repro.soc import build_turbo_eagle

from .strategies import pattern_matrix, random_netlist


@pytest.fixture(scope="module")
def study():
    design = build_turbo_eagle("tiny", seed=2007)
    return design, design.dominant_domain()


@pytest.fixture(scope="module")
def graded(study):
    """Design + collapsed faults + a 150-pattern batch (3 partial lanes)."""
    design, domain = study
    nl = design.netlist
    reps, _ = collapse_faults(nl, build_fault_universe(nl))
    rng = np.random.default_rng(3)
    matrix = rng.integers(0, 2, size=(150, nl.n_flops), dtype=np.int8)
    return design, domain, list(reps), matrix


def reference_fault_sim(nl, domain, fsim, matrix, faults):
    """The seed algorithm: full-width words, whole-cone interpreted
    evaluation, no activation restriction."""
    packed, mask = pack_matrix(matrix)
    cyc = loc_launch_capture(fsim.sim, packed, domain, mask=mask)
    f1, g2 = cyc.frame1, cyc.frame2
    detections = {}
    for fault in faults:
        site = fault.net
        if fault.initial_value == 1:
            act = f1[site] & mask
            forced = mask
        else:
            act = ~f1[site] & mask
            forced = 0
        if act == 0:
            continue
        gates, captures = fsim.cone_of(site)
        if not captures:
            continue
        faulty = {site: forced}
        for gi in gates:
            g = nl.gates[gi]
            vals = [faulty.get(p, g2[p]) for p in g.inputs]
            faulty[g.output] = CELL_FUNCTIONS[g.kind](vals, mask)
        diff = 0
        for c in captures:
            diff |= faulty.get(c, g2[c]) ^ g2[c]
        det = diff & act
        if det:
            detections[fault] = det
    return detections


class TestPackMatrix:
    def test_matches_bit_loop_reference(self):
        rng = np.random.default_rng(0)
        m = rng.integers(0, 2, size=(67, 9), dtype=np.int8)
        packed, mask = pack_matrix(m)
        assert mask == (1 << 67) - 1
        for col in range(9):
            ref = 0
            for row in range(67):
                if m[row, col]:
                    ref |= 1 << row
            assert packed[col] == ref

    def test_empty_shapes(self):
        packed, mask = pack_matrix(np.zeros((0, 4), dtype=np.int8))
        assert packed == {0: 0, 1: 0, 2: 0, 3: 0} and mask == 0
        packed, mask = pack_matrix(np.zeros((5, 0), dtype=np.int8))
        assert packed == {} and mask == (1 << 5) - 1

    @given(m=pattern_matrix(n_flops=5, max_patterns=80))
    @settings(max_examples=30, deadline=None)
    def test_pack_roundtrip_hypothesis(self, m):
        packed, mask = pack_matrix(m)
        n_pat = m.shape[0]
        assert mask == (1 << n_pat) - 1
        for col in range(m.shape[1]):
            for row in range(n_pat):
                assert (packed[col] >> row) & 1 == int(m[row, col])


class TestFaultSimEquivalence:
    def test_run_matches_seed_reference(self, graded):
        design, domain, faults, matrix = graded
        nl = design.netlist
        fsim = FaultSimulator(nl, domain)
        ref = reference_fault_sim(nl, domain, fsim, matrix, faults)
        assert fsim.run(matrix, faults) == ref
        assert ref  # the batch actually detects something

    def test_multiword_lanes_bit_identical(self, graded):
        design, domain, faults, matrix = graded
        fsim = FaultSimulator(design.netlist, domain)
        full = fsim.run(matrix, faults)
        for lane_width in (7, 32, 64, 256):
            assert fsim.run_batch(
                matrix, faults, lane_width=lane_width
            ) == full

    def test_parallel_matches_serial(self, graded):
        design, domain, faults, matrix = graded
        fsim = FaultSimulator(design.netlist, domain)
        serial = fsim.run_batch(matrix, faults, lane_width=64)
        parallel = fsim.run_batch(
            matrix, faults, lane_width=64, n_workers=2
        )
        assert parallel == serial

    def test_drop_preserves_detection_set_and_first_index(self, graded):
        design, domain, faults, matrix = graded
        fsim = FaultSimulator(design.netlist, domain)
        full = fsim.run_batch(matrix, faults, lane_width=32)
        dropped = fsim.run_batch(matrix, faults, lane_width=32, drop=True)
        assert set(dropped) == set(full)
        for fault, word in dropped.items():
            assert word & full[fault] == word  # subset of true detections
            assert first_detection_index(word) == first_detection_index(
                full[fault]
            )

    def test_los_and_es_protocols_batch(self, graded):
        design, domain, faults, matrix = graded
        fsim = FaultSimulator(design.netlist, domain)
        los_run = fsim.run(matrix, faults, protocol="los", scan=design.scan)
        assert fsim.run_batch(
            matrix, faults, protocol="los", scan=design.scan, lane_width=64
        ) == los_run
        v2 = np.roll(matrix, 1, axis=0)
        es_run = fsim.run(matrix, faults, protocol="es", v2_matrix=v2)
        assert fsim.run_batch(
            matrix, faults, protocol="es", v2_matrix=v2, lane_width=64
        ) == es_run

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_random_netlists_lanes_match_reference(self, data):
        nl = data.draw(random_netlist())
        from repro.atpg.fsim import FaultSimulator as FS

        fsim = FS(nl, "clka")
        faults = list(build_fault_universe(nl))
        matrix = data.draw(pattern_matrix(n_flops=nl.n_flops))
        ref = reference_fault_sim(nl, "clka", fsim, matrix, faults)
        assert fsim.run(matrix, faults) == ref
        assert fsim.run_batch(matrix, faults, lane_width=16) == ref


class TestScapBatchEquivalence:
    @pytest.mark.parametrize("engine", ["event", "fast"])
    def test_batch_matches_per_pattern(self, graded, engine):
        design, domain, _faults, matrix = graded
        calc = ScapCalculator(design, domain, engine=engine)
        m = matrix[:70]  # two lanes, second partial
        per = [
            calc.profile_pattern(
                {fi: int(b) for fi, b in enumerate(row)}, i
            )
            for i, row in enumerate(m)
        ]
        assert calc.profile_patterns(m) == per
        assert calc.profile_patterns(m, lane_width=5) == per

    def test_parallel_matches_serial(self, graded):
        design, domain, _faults, matrix = graded
        calc = ScapCalculator(design, domain)
        serial = calc.profile_patterns(matrix[:40])
        assert calc.profile_patterns(matrix[:40], n_workers=2) == serial

    def test_pattern_set_and_matrix_agree(self, graded):
        design, domain, _faults, matrix = graded
        from repro.atpg.patterns import Pattern, PatternSet

        ps = PatternSet(domain)
        for i, row in enumerate(matrix[:10]):
            ps.append(
                Pattern(
                    index=i,
                    v1=np.asarray(row, dtype=np.uint8),
                    care=np.ones(len(row), dtype=bool),
                    domain=domain,
                    fill="random",
                )
            )
        calc = ScapCalculator(design, domain)
        assert calc.profile_patterns(ps) == calc.profile_patterns(matrix[:10])

    def test_cache_hits_preserve_results_and_restamp_index(self, graded):
        design, domain, _faults, matrix = graded
        cache = PatternProfileCache()
        calc = ScapCalculator(design, domain, cache=cache)
        plain = ScapCalculator(design, domain)
        first = calc.profile_patterns(matrix[:20])
        assert first == plain.profile_patterns(matrix[:20])
        assert cache.hits == 0
        again = calc.profile_patterns(matrix[:20])
        assert again == first
        assert cache.hits >= 20
        # same launch state under a different index: profile re-stamped
        import dataclasses

        single = calc.profile_pattern(
            {fi: int(b) for fi, b in enumerate(matrix[0])}, 99
        )
        assert single.pattern_index == 99
        assert single == dataclasses.replace(first[0], pattern_index=99)

    def test_in_batch_duplicates_alias_one_simulation(self, graded):
        design, domain, _faults, matrix = graded
        dup = np.vstack([matrix[:4]] * 3)
        cache = PatternProfileCache()
        calc = ScapCalculator(design, domain, cache=cache)
        got = calc.profile_patterns(dup)
        assert len(cache) == 4  # 12 rows, 4 distinct launch states
        plain = ScapCalculator(design, domain)
        assert got == plain.profile_patterns(dup)


class TestPerfUtilities:
    def test_chunk_slices_cover_everything(self):
        for n_items in (0, 1, 7, 64, 65):
            for n_chunks in (1, 3, 8):
                slices = chunk_slices(n_items, n_chunks)
                covered = [
                    i for start, stop in slices for i in range(start, stop)
                ]
                assert covered == list(range(n_items))

    def test_chunked_preserves_order(self):
        items = list(range(23))
        chunks = chunked(items, 5)
        assert [x for c in chunks for x in c] == items
        assert all(c for c in chunks)

    def test_resolve_workers(self):
        assert resolve_workers(1, 100) == 1
        assert resolve_workers(4, 100) == 4
        assert resolve_workers(4, 2) == 2
        assert resolve_workers(0, 100) == 1
        assert resolve_workers(None, 10_000) == min(
            available_workers(), 10_000
        )

    def test_pool_map_serial_equals_parallel(self):
        items = list(range(40))
        serial = pool_map(_square, items, n_workers=1)
        assert serial == [x * x for x in items]
        parallel = pool_map(_square, items, n_workers=2)
        assert parallel == serial

    def test_pool_map_falls_back_on_unpicklable_task(self):
        items = [1, 2, 3]
        bad = lambda x: x + 1  # noqa: E731 — lambdas don't pickle
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out = pool_map(bad, items, n_workers=2)
        assert out == [2, 3, 4]
        assert any(
            issubclass(w.category, RuntimeWarning) for w in caught
        )

    def test_digest_key_sensitivity(self):
        a = digest_key(b"abc", ("ctx", 1))
        assert a == digest_key(b"abc", ("ctx", 1))
        assert a != digest_key(b"abd", ("ctx", 1))
        assert a != digest_key(b"abc", ("ctx", 2))

    def test_cache_lru_eviction(self):
        cache = PatternProfileCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3


def _square(x):
    return x * x


def _buggy(x):
    if x == 3:
        raise ValueError("boom")
    return x * x


def _traced_square(arg):
    """Square x, leaving one marker file per *execution* of this item."""
    x, trace_dir = arg
    marker = os.path.join(trace_dir, f"{x}_{os.getpid()}_{os.urandom(4).hex()}")
    with open(marker, "w") as fh:
        fh.write(str(x))
    return x * x


#: Fast backoff so chaos tests retry in milliseconds, not seconds.
FAST = RetryPolicy(backoff_base_s=0.001, backoff_max_s=0.01, jitter=0.0)


class TestResilientMap:
    """The recovery ladder, rung by rung, under deterministic chaos."""

    def test_task_bug_propagates_never_degrades(self):
        # The historical pool_map bug: a task exception silently
        # re-ran everything serially.  Now it must propagate with the
        # original exception chained — and no fallback warning.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with pytest.raises(ExecutionError) as info:
                pool_map(_buggy, [1, 2, 3, 4], n_workers=2)
        assert isinstance(info.value.__cause__, ValueError)
        assert info.value.chunk_index == 2
        assert not any(
            issubclass(w.category, RuntimeWarning) for w in caught
        )

    def test_task_bug_propagates_serially_too(self):
        with pytest.raises(ExecutionError) as info:
            resilient_map(_buggy, [3], n_workers=1, policy=FAST)
        assert isinstance(info.value.__cause__, ValueError)

    def test_transient_failure_retries_to_success(self):
        spec = chaos.ChaosSpec(fail={1: (0,)})
        from repro.perf.resilient import ExecutionReport

        report = ExecutionReport()
        with chaos.inject(spec):
            out = resilient_map(
                _square, [0, 1, 2, 3], n_workers=2,
                policy=FAST, report=report,
            )
        assert out == [0, 1, 4, 9]
        assert report.chunk_attempts[1] == 2
        assert report.total_retries == 1
        assert report.retried_chunks == [1]
        assert not report.serial_fallback

    def test_worker_kill_requeues_only_inflight_chunks(self, tmp_path):
        # SIGKILL the worker holding chunk 0 on its first attempt.
        # Completed chunks must not re-run (exactly one marker each)
        # and the pool must recover without the serial fallback.
        items = [(x, str(tmp_path)) for x in range(8)]
        spec = chaos.ChaosSpec(kill={0: (0,)})
        from repro.perf.resilient import ExecutionReport

        report = ExecutionReport()
        with chaos.inject(spec):
            out = resilient_map(
                _traced_square, items, n_workers=2,
                policy=FAST, report=report,
            )
        assert out == [x * x for x in range(8)]
        assert report.pool_rebuilds >= 1
        assert not report.serial_fallback
        assert any(f.kind == "crash" for f in report.failures)
        runs_per_item = {}
        for marker in os.listdir(tmp_path):
            x = int(marker.split("_")[0])
            runs_per_item[x] = runs_per_item.get(x, 0) + 1
        # Every item executed, and only the chunks in flight at the
        # crash (at most n_workers) may have executed a second time —
        # a wholesale serial re-run would double all eight.
        assert set(runs_per_item) == set(range(8))
        extra = sum(n - 1 for n in runs_per_item.values())
        assert extra <= 2, runs_per_item

    def test_hang_past_timeout_is_cancelled_and_retried(self):
        spec = chaos.ChaosSpec(hang={0: (0,)}, hang_s=30.0)
        policy = RetryPolicy(
            timeout_s=1.0, backoff_base_s=0.001, jitter=0.0
        )
        from repro.perf.resilient import ExecutionReport

        report = ExecutionReport()
        with chaos.inject(spec):
            out = resilient_map(
                _square, [0, 1, 2, 3], n_workers=2,
                policy=policy, report=report,
            )
        assert out == [0, 1, 4, 9]
        assert report.n_timeouts >= 1
        assert report.pool_rebuilds >= 1
        assert not report.serial_fallback
        assert any(f.kind == "timeout" for f in report.failures)

    def test_retry_exhaustion_raises_with_context(self):
        spec = chaos.ChaosSpec(fail={0: (0, 1, 2)})
        with chaos.inject(spec):
            with pytest.raises(ExecutionError) as info:
                resilient_map(
                    _square, [0, 1], n_workers=2,
                    policy=dataclass_replace(FAST, max_attempts=3),
                )
        assert info.value.chunk_index == 0
        assert info.value.attempts == 3

    def test_rebuild_cap_falls_back_to_serial_for_remaining(self):
        # Two kills on the same chunk exhaust a rebuild cap of 1: the
        # remaining chunks (chaos-free by design of the fallback) run
        # serially and the run still completes correctly.
        spec = chaos.ChaosSpec(kill={0: (0, 1)})
        policy = dataclass_replace(
            FAST, max_attempts=4, max_pool_rebuilds=1
        )
        from repro.perf.resilient import ExecutionReport

        report = ExecutionReport()
        with chaos.inject(spec):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                out = resilient_map(
                    _square, [0, 1, 2, 3], n_workers=2,
                    policy=policy, report=report,
                )
        assert out == [0, 1, 4, 9]
        assert report.serial_fallback
        assert any(
            issubclass(w.category, RuntimeWarning) for w in caught
        )

    def test_rebuild_cap_without_fallback_raises(self):
        spec = chaos.ChaosSpec(kill={0: (0, 1)})
        policy = dataclass_replace(
            FAST, max_attempts=4, max_pool_rebuilds=1,
            serial_fallback=False,
        )
        with chaos.inject(spec):
            with pytest.raises(WorkerCrashError):
                resilient_map(
                    _square, [0, 1, 2, 3], n_workers=2, policy=policy
                )

    def test_serial_path_retries_transients(self):
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientError("first try fails")
            return x * x

        from repro.perf.resilient import ExecutionReport

        report = ExecutionReport()
        out = resilient_map(
            flaky, [5], n_workers=1, policy=FAST, report=report
        )
        assert out == [25]
        assert report.chunk_attempts[0] == 2

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(seed=7)
        a = policy.backoff_s(3, 1)
        assert a == policy.backoff_s(3, 1)
        assert a != policy.backoff_s(3, 2) or policy.jitter == 0
        for attempt in range(10):
            delay = policy.backoff_s(0, attempt)
            assert 0 < delay <= policy.backoff_max_s * (1 + policy.jitter)

    def test_execution_policy_scopes_and_restores(self):
        before = default_policy()
        with execution_policy(timeout_s=9.0, max_attempts=5) as scoped:
            assert default_policy() is scoped
            assert scoped.timeout_s == 9.0
            assert scoped.max_attempts == 5
            with execution_policy(max_attempts=2) as inner:
                assert inner.timeout_s == 9.0  # nested scopes compose
                assert inner.max_attempts == 2
            assert default_policy() is scoped
        assert default_policy() is before

    def test_results_in_input_order_under_chaos(self):
        spec = chaos.ChaosSpec(fail={2: (0,), 5: (0,)})
        with chaos.inject(spec):
            out = resilient_map(
                _square, list(range(12)), n_workers=3, policy=FAST
            )
        assert out == [x * x for x in range(12)]


def dataclass_replace(policy, **kw):
    import dataclasses

    return dataclasses.replace(policy, **kw)
