"""Unit tests for the Netlist container, library, levelisation and lint."""

from __future__ import annotations

import pytest

from repro.errors import LibraryError, NetlistError
from repro.netlist import Netlist, check_netlist, default_library, levelize
from repro.netlist.levelize import max_logic_depth
from repro.netlist.library import DEFAULT_CELL_FOR_KIND


class TestLibrary:
    def test_every_default_cell_exists(self):
        lib = default_library()
        for kind, cell in DEFAULT_CELL_FOR_KIND.items():
            spec = lib.cell(cell)
            assert spec.kind == kind

    def test_unknown_cell_raises(self):
        with pytest.raises(LibraryError):
            default_library().cell("NAND17X9")

    def test_loaded_delay_monotone_in_load(self):
        spec = default_library().cell("NAND2X1")
        assert spec.loaded_delay_ns(10.0) < spec.loaded_delay_ns(50.0)
        assert spec.loaded_delay_ns(0.0) == pytest.approx(
            spec.intrinsic_delay_ns
        )

    def test_sequential_flags(self):
        lib = default_library()
        assert lib.cell("SDFFX1").is_sequential
        assert not lib.cell("NAND2X1").is_sequential

    def test_cells_of_kind(self):
        invs = default_library().cells_of_kind("INV")
        assert {c.name for c in invs} == {"INVX1", "INVX4"}


class TestNetlistConstruction:
    def test_stats(self, tiny_seq):
        s = tiny_seq.stats()
        assert s["gates"] == 2
        assert s["flops"] == 2
        assert s["scan_flops"] == 2

    def test_duplicate_net_rejected(self):
        nl = Netlist("x")
        nl.add_net("a")
        with pytest.raises(NetlistError):
            nl.add_net("a")

    def test_unknown_net_id_rejected(self):
        nl = Netlist("x")
        a = nl.add_net("a")
        with pytest.raises(NetlistError):
            nl.add_gate("g", "INVX1", [a], 42)

    def test_wrong_pin_count_rejected(self):
        nl = Netlist("x")
        a = nl.add_net("a")
        y = nl.add_net("y")
        with pytest.raises(NetlistError):
            nl.add_gate("g", "NAND2X1", [a], y)

    def test_sequential_cell_via_add_gate_rejected(self):
        nl = Netlist("x")
        a = nl.add_net("a")
        y = nl.add_net("y")
        with pytest.raises(NetlistError):
            nl.add_gate("g", "SDFFX1", [a], y)

    def test_comb_cell_via_add_flop_rejected(self):
        nl = Netlist("x")
        a = nl.add_net("a")
        y = nl.add_net("y")
        with pytest.raises(NetlistError):
            nl.add_flop("f", "NAND2X1", d=a, q=y, clock_domain="clka")

    def test_bad_edge_rejected(self):
        nl = Netlist("x")
        a = nl.add_net("a")
        y = nl.add_net("y")
        with pytest.raises(NetlistError):
            nl.add_flop("f", "SDFFX1", d=a, q=y, clock_domain="c", edge="both")

    def test_multiple_drivers_detected_on_freeze(self):
        nl = Netlist("x")
        a = nl.add_net("a")
        y = nl.add_net("y")
        nl.add_primary_input(a)
        nl.add_gate("g1", "INVX1", [a], y)
        nl.add_gate("g2", "INVX1", [a], y)
        with pytest.raises(NetlistError, match="multiple drivers"):
            nl.freeze()


class TestDerivedMaps:
    def test_driver_and_fanout(self, tiny_comb):
        n1 = tiny_comb.net_id("n1")
        assert tiny_comb.driver_of(n1) == ("gate", 0)
        assert tiny_comb.gate_fanouts_of(n1) == [(1, 0)]
        a = tiny_comb.net_id("a")
        assert tiny_comb.driver_of(a) == ("pi", 0)

    def test_flop_d_loads(self, tiny_seq):
        d0 = tiny_seq.net_id("d0")
        assert tiny_seq.flop_d_loads_of(d0) == [0]

    def test_mutation_invalidates_freeze(self, tiny_comb):
        tiny_comb.freeze()
        z = tiny_comb.add_net("z")
        tiny_comb.add_gate("u_buf", "BUFX2", [tiny_comb.net_id("y")], z)
        # Re-freeze happens implicitly and sees the new gate.
        assert tiny_comb.driver_of(z) == ("gate", 2)

    def test_transitive_fanout_stops_at_flops(self, tiny_seq):
        q0 = tiny_seq.net_id("q0")
        gates = set(tiny_seq.transitive_fanout_gates(q0))
        assert gates == {0, 1}

    def test_transitive_fanin(self, tiny_comb):
        y = tiny_comb.net_id("y")
        cone = set(tiny_comb.transitive_fanin_nets(y))
        names = {tiny_comb.net_names[n] for n in cone}
        assert names == {"a", "b", "c", "n1", "y"}

    def test_fanout_count_includes_po(self, tiny_comb):
        y = tiny_comb.net_id("y")
        assert tiny_comb.fanout_count(y) == 1  # PO only


class TestLevelize:
    def test_levels_ordered(self, tiny_comb):
        order, level = levelize(tiny_comb)
        assert order.index(0) < order.index(1)
        assert level[0] == 0 and level[1] == 1

    def test_depth(self, tiny_comb):
        assert max_logic_depth(tiny_comb) == 2

    def test_flop_breaks_cycle(self, tiny_seq):
        # q0 -> and -> d0 -> f0 -> q0 is sequential, not combinational.
        order, _ = levelize(tiny_seq)
        assert len(order) == 2

    def test_combinational_loop_detected(self):
        nl = Netlist("loop")
        a = nl.add_net("a")
        b = nl.add_net("b")
        nl.add_gate("g1", "INVX1", [a], b)
        nl.add_gate("g2", "INVX1", [b], a)
        with pytest.raises(NetlistError, match="loop"):
            levelize(nl)


class TestValidate:
    def test_clean_design_has_no_issues(self, tiny_comb, tiny_seq):
        assert check_netlist(tiny_comb) == []
        assert check_netlist(tiny_seq) == []

    def test_floating_input_flagged(self):
        nl = Netlist("x")
        a = nl.add_net("a")  # never driven
        y = nl.add_net("y")
        nl.add_gate("g", "INVX1", [a], y)
        issues = check_netlist(nl)
        assert any("floating" in i for i in issues)

    def test_undriven_po_flagged(self):
        nl = Netlist("x")
        z = nl.add_net("z")
        nl.add_primary_output(z)
        issues = check_netlist(nl)
        assert any("undriven" in i for i in issues)

    def test_chain_consistency_flagged(self, tiny_seq):
        tiny_seq.flops[0].chain = 3  # chain_pos left None
        issues = check_netlist(tiny_seq)
        assert any("chain" in i for i in issues)

    def test_raise_on_error(self):
        nl = Netlist("x")
        z = nl.add_net("z")
        nl.add_primary_output(z)
        with pytest.raises(NetlistError):
            check_netlist(nl, raise_on_error=True)
