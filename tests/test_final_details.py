"""Final grab-bag: remaining uncovered behaviours."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CaseStudy
from repro.core import ConventionalFlow
from repro.dft import capture_responses
from repro.errors import PowerGridError
from repro.pgrid import GridModel
from repro.power import ScapCalculator
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=173)


class TestGridModelDetails:
    def test_worst_in_unknown_block(self, design):
        model = GridModel.build(design, nx=8, ny=8)
        drop = np.ones(model.vdd_grid.n_nodes)
        assert model.worst_in_block(drop, "B99") == 0.0

    def test_drop_grid_shape(self, design):
        model = GridModel.build(design, nx=8, ny=10)
        drop = np.arange(80, dtype=float)
        grid = model.vdd_grid.drop_grid(drop)
        assert grid.shape == (10, 8)
        assert grid[0, 3] == 3.0

    def test_injection_units(self, design):
        model = GridModel.build(design, nx=8, ny=8)
        power = np.zeros(64)
        power[10] = 1.8  # mW at 1.8 V -> 1 mA -> 1e-3 A
        inj = model.injection_from_node_power(power, vdd=1.8)
        assert inj[10] == pytest.approx(1e-3)


class TestCalculatorDetails:
    def test_profile_set_order(self, design):
        calc = ScapCalculator(design, "clka")
        flow = ConventionalFlow(design, seed=1, backtrack_limit=40).run(
            max_patterns=6
        )
        profiles = calc.profile_set(flow.pattern_set)
        assert [p.pattern_index for p in profiles] == list(
            range(len(profiles))
        )

    def test_capture_responses_cover_pulsed_flops(self, design):
        calc = ScapCalculator(design, "clka")
        flow = ConventionalFlow(design, seed=1, backtrack_limit=40).run(
            max_patterns=3
        )
        responses = capture_responses(
            design.netlist, flow.pattern_set, "clka"
        )
        assert len(responses) == 3
        pulsed = {
            fi
            for fi, f in enumerate(design.netlist.flops)
            if f.clock_domain == "clka" and f.edge == "pos"
        }
        for response in responses:
            assert set(response) == pulsed


class TestCaseStudyCaching:
    def test_flows_cached(self):
        study = CaseStudy(scale="tiny", seed=191, backtrack_limit=40)
        first = study.conventional()
        second = study.conventional()
        assert first is second
        v1 = study.validation("conventional")
        v2 = study.validation("conventional")
        assert v1 is v2

    def test_model_and_thresholds_cached(self):
        study = CaseStudy(scale="tiny", seed=191, backtrack_limit=40)
        assert study.model is study.model
        assert study.thresholds_mw is study.thresholds_mw


class TestPowerGridValidation:
    def test_bad_injection_shape(self, design):
        model = GridModel.build(design, nx=8, ny=8)
        with pytest.raises(PowerGridError):
            model.vdd_grid.drop_v(np.zeros(7))
