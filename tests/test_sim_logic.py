"""Tests for bit-parallel logic simulation and the LOC cycle helper."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.netlist import Netlist
from repro.sim import LogicSim, loc_launch_capture
from repro.soc import build_turbo_eagle


class TestLogicSim:
    def test_comb_truth(self, tiny_comb):
        sim = LogicSim(tiny_comb)
        a, b, c = (tiny_comb.net_id(n) for n in "abc")
        y = tiny_comb.net_id("y")
        # y = ~(a&b) ^ c ; try all 8 combinations packed into one word.
        mask = (1 << 8) - 1
        words = {"a": 0, "b": 0, "c": 0}
        for k in range(8):
            words["a"] |= ((k >> 0) & 1) << k
            words["b"] |= ((k >> 1) & 1) << k
            words["c"] |= ((k >> 2) & 1) << k
        values = sim.run({}, pi={a: words["a"], b: words["b"], c: words["c"]},
                         mask=mask)
        for k in range(8):
            av, bv, cv = (k >> 0) & 1, (k >> 1) & 1, (k >> 2) & 1
            expected = (1 - (av & bv)) ^ cv
            assert (values[y] >> k) & 1 == expected

    def test_flop_state_feeds_logic(self, tiny_seq):
        sim = LogicSim(tiny_seq)
        values = sim.run({0: 1, 1: 1}, mask=1)
        # d1 = ~q0 = 0 ; d0 = q1 & q0 = 1
        assert values[tiny_seq.net_id("d1")] == 0
        assert values[tiny_seq.net_id("d0")] == 1

    def test_next_state(self, tiny_seq):
        sim = LogicSim(tiny_seq)
        values = sim.run({0: 1, 1: 0}, mask=1)
        ns = sim.next_state(values)
        assert ns == {0: 0, 1: 0}

    def test_unset_sources_default_zero(self, tiny_seq):
        sim = LogicSim(tiny_seq)
        values = sim.run({}, mask=1)
        assert values[tiny_seq.net_id("d1")] == 1  # ~0


class TestLocCycle:
    def test_unknown_domain_rejected(self, tiny_seq):
        sim = LogicSim(tiny_seq)
        with pytest.raises(SimulationError):
            loc_launch_capture(sim, {0: 0, 1: 0}, "clkz")

    def test_launch_state_is_functional_response(self, tiny_seq):
        sim = LogicSim(tiny_seq)
        v1 = {0: 1, 1: 0}
        cyc = loc_launch_capture(sim, v1, "clka")
        # frame1: d1 = ~q0 = 0, d0 = q1&q0 = 0 -> S2 = {0:0, 1:0}
        assert cyc.launch_state == {0: 0, 1: 0}
        # frame2 from S2: d1 = ~0 = 1, d0 = 0 -> captured {0:0, 1:1}
        assert cyc.captured == {0: 0, 1: 1}

    def test_other_domains_hold(self):
        nl = Netlist("two_dom")
        qa = nl.add_net("qa")
        qb = nl.add_net("qb")
        da = nl.add_net("da")
        db = nl.add_net("db")
        nl.add_gate("g1", "INVX1", [qb], da)
        nl.add_gate("g2", "INVX1", [qa], db)
        nl.add_flop("fa", "SDFFX1", d=da, q=qa, clock_domain="clka",
                    is_scan=True)
        nl.add_flop("fb", "SDFFX1", d=db, q=qb, clock_domain="clkb",
                    is_scan=True)
        sim = LogicSim(nl)
        cyc = loc_launch_capture(sim, {0: 0, 1: 0}, "clka")
        # fb is not pulsed: holds V1 value 0 even though db=1.
        assert cyc.launch_state[1] == 0
        assert cyc.launch_state[0] == 1  # ~qb = 1
        assert 1 not in cyc.captured

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_batched_equals_scalar(self, seed):
        """Property: packed 16-pattern simulation == 16 scalar runs."""
        design = build_turbo_eagle("tiny", seed=17)
        sim = LogicSim(design.netlist)
        rng = np.random.default_rng(seed)
        n_flops = design.netlist.n_flops
        n_pat = 16
        mask = (1 << n_pat) - 1
        bits = rng.integers(0, 2, size=(n_pat, n_flops))
        packed = {
            fi: int(sum(int(bits[p, fi]) << p for p in range(n_pat)))
            for fi in range(n_flops)
        }
        cyc_batch = loc_launch_capture(sim, packed, "clka", mask=mask)
        for p in (0, n_pat // 2, n_pat - 1):
            v1 = {fi: int(bits[p, fi]) for fi in range(n_flops)}
            cyc = loc_launch_capture(sim, v1, "clka")
            for fi, word in cyc_batch.captured.items():
                assert (word >> p) & 1 == cyc.captured[fi]
