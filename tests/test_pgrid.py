"""Tests for the power-grid model and IR-drop analyses."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PowerGridError
from repro.pgrid import (
    GridModel,
    PowerGrid,
    dynamic_ir_for_pattern,
    red_fraction,
    render_ir_map,
    statistical_ir_analysis,
)
from repro.pgrid.maps import ir_map_csv
from repro.pgrid.statistical_ir import block_power_thresholds_mw
from repro.power import ScapCalculator
from repro.soc import build_turbo_eagle
from repro.soc.floorplan import make_turbo_eagle_floorplan


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=31)


@pytest.fixture(scope="module")
def model(design):
    return GridModel.build(design, nx=12, ny=12, seg_res_ohm=100.0)


class TestPowerGrid:
    def test_zero_injection_zero_drop(self):
        fp = make_turbo_eagle_floorplan(300.0)
        grid = PowerGrid(fp, nx=8, ny=8)
        drop = grid.drop_v(np.zeros(64))
        assert np.allclose(drop, 0.0)

    def test_drop_positive_and_linear(self):
        fp = make_turbo_eagle_floorplan(300.0)
        grid = PowerGrid(fp, nx=8, ny=8, seg_res_ohm=10.0)
        inj = np.zeros(64)
        center = grid.nearest_node(150.0, 150.0)
        inj[center] = 1e-3  # 1 mA at die centre
        drop = grid.drop_v(inj)
        assert drop[center] > 0
        assert drop[center] == drop.max()
        # Superposition/linearity of the resistive network.
        drop2 = grid.drop_v(2 * inj)
        assert np.allclose(drop2, 2 * drop)

    def test_center_drops_more_than_edge(self):
        fp = make_turbo_eagle_floorplan(300.0)
        grid = PowerGrid(fp, nx=8, ny=8, seg_res_ohm=10.0)
        inj = np.zeros(64)
        center = grid.nearest_node(150.0, 150.0)
        edge = grid.nearest_node(5.0, 150.0)
        inj[center] = 1e-3
        inj[edge] = 1e-3
        drop = grid.drop_v(inj)
        assert drop[center] > drop[edge]

    def test_invalid_parameters(self):
        fp = make_turbo_eagle_floorplan(300.0)
        with pytest.raises(PowerGridError):
            PowerGrid(fp, nx=1, ny=8)
        with pytest.raises(PowerGridError):
            PowerGrid(fp, seg_res_ohm=-1.0)
        grid = PowerGrid(fp, nx=4, ny=4)
        with pytest.raises(PowerGridError):
            grid.drop_v(np.zeros(3))

    @settings(max_examples=20, deadline=None)
    @given(
        ix=st.integers(min_value=0, max_value=7),
        iy=st.integers(min_value=0, max_value=7),
    )
    def test_node_position_roundtrip(self, ix, iy):
        fp = make_turbo_eagle_floorplan(300.0)
        grid = PowerGrid(fp, nx=8, ny=8)
        node = grid.node_index(ix, iy)
        x, y = grid.node_position(node)
        assert grid.nearest_node(x, y) == node


class TestGridModel:
    def test_every_instance_tapped(self, design, model):
        assert (model.gate_node >= 0).all()
        assert (model.flop_node >= 0).all()

    def test_vss_more_resistive_than_vdd(self, model):
        assert model.vss_grid.seg_res_ohm > model.vdd_grid.seg_res_ohm

    def test_block_nodes_inside_region(self, design, model):
        fp = design.floorplan
        for block, nodes in model.block_nodes.items():
            region = fp.region(block)
            for node in nodes:
                assert region.contains(*model.vdd_grid.node_position(node))

    def test_calibration_hits_target(self, design):
        calibrated = GridModel.calibrated(design, target_worst_drop_v=0.12,
                                          nx=12, ny=12)
        rows = statistical_ir_analysis(calibrated, window_fraction=0.5)
        worst = max(r.worst_drop_vdd_v for r in rows)
        assert worst == pytest.approx(0.12, rel=0.05)


class TestStatisticalIr:
    def test_b5_worst_block(self, model):
        rows = statistical_ir_analysis(model, window_fraction=0.5)
        worst = max(rows, key=lambda r: r.worst_drop_vdd_v)
        assert worst.block == "B5"

    def test_vss_tracks_vdd_slightly_higher(self, model):
        rows = statistical_ir_analysis(model, window_fraction=0.5)
        for row in rows:
            assert row.worst_drop_vss_v > row.worst_drop_vdd_v

    def test_halving_window_increases_drop(self, model):
        c1 = statistical_ir_analysis(model, window_fraction=1.0)
        c2 = statistical_ir_analysis(model, window_fraction=0.5)
        for r1, r2 in zip(c1, c2):
            assert r2.worst_drop_vdd_v > r1.worst_drop_vdd_v
            assert r2.avg_power_mw > 1.5 * r1.avg_power_mw

    def test_chip_row(self, model):
        rows = statistical_ir_analysis(model, include_chip_row=True)
        assert rows[-1].block == "Chip"
        assert rows[-1].worst_drop_vdd_v == pytest.approx(
            max(r.worst_drop_vdd_v for r in rows[:-1])
        )

    def test_thresholds_exclude_chip(self, model):
        rows = statistical_ir_analysis(model, include_chip_row=True)
        thresholds = block_power_thresholds_mw(rows)
        assert "Chip" not in thresholds
        assert set(thresholds) == {"B1", "B2", "B3", "B4", "B5", "B6"}


class TestDynamicIr:
    def test_active_pattern_drops(self, design, model):
        calc = ScapCalculator(design, "clka")
        rng = np.random.default_rng(2)
        v1 = {fi: int(rng.integers(2)) for fi in range(design.netlist.n_flops)}
        timing = calc.simulate_pattern(v1)
        ir = dynamic_ir_for_pattern(model, timing)
        assert ir.worst_vdd_v > 0
        assert ir.worst_vss_v > ir.worst_vdd_v
        assert len(ir.gate_droop_v) == design.netlist.n_gates

    def test_scap_window_worse_than_cap_window(self, design, model):
        calc = ScapCalculator(design, "clka")
        rng = np.random.default_rng(2)
        v1 = {fi: int(rng.integers(2)) for fi in range(design.netlist.n_flops)}
        timing = calc.simulate_pattern(v1)
        ir_scap = dynamic_ir_for_pattern(model, timing)
        ir_cap = dynamic_ir_for_pattern(model, timing, window_ns=20.0)
        assert ir_scap.worst_vdd_v > ir_cap.worst_vdd_v

    def test_quiet_pattern_nearly_zero(self, design, model):
        """All-zeros scan state: only the few ungated bus-register nets
        may toggle, so the drop is a tiny fraction of an active one."""
        calc = ScapCalculator(design, "clka")
        quiet = {fi: 0 for fi in range(design.netlist.n_flops)}
        rng = np.random.default_rng(2)
        noisy = {fi: int(rng.integers(2)) for fi in range(design.netlist.n_flops)}
        tq = calc.simulate_pattern(quiet)
        tn = calc.simulate_pattern(noisy)
        # Switched energy (injected charge) is the physical quantity:
        # the quiet pattern moves a tiny fraction of the noisy one's.
        assert tq.energy_fj_total < 0.1 * tn.energy_fj_total
        ir_q = dynamic_ir_for_pattern(model, tq)
        assert ir_q.red_fraction() == 0.0


class TestMaps:
    def test_render_and_red_fraction(self, design, model):
        drop = np.zeros(model.vdd_grid.n_nodes)
        drop[model.vdd_grid.nearest_node(150.0, 150.0)] = 0.5
        art = render_ir_map(model.vdd_grid, drop)
        assert "#" in art
        assert red_fraction(drop) == pytest.approx(1 / model.vdd_grid.n_nodes)

    def test_csv_export(self, model):
        drop = np.zeros(model.vdd_grid.n_nodes)
        csv = ir_map_csv(model.vdd_grid, drop)
        assert csv.splitlines()[0] == "x_um,y_um,drop_v"
        assert len(csv.splitlines()) == model.vdd_grid.n_nodes + 1
