"""Tests for the unified :class:`repro.RunContext` session API."""

from __future__ import annotations

import warnings

import pytest

from repro import RunContext, current_run_context, use_run_context
from repro.context import INHERIT_CACHE
from repro.core.flow import run_noise_tolerant_flow
from repro.obs import (
    NULL_TELEMETRY,
    Telemetry,
    current_telemetry,
    use_telemetry,
)
from repro.perf.dispatch import DispatchPolicy, current_dispatch, dispatch_policy
from repro.perf.kernel_cache import KernelCache, current_kernel_cache, use_kernel_cache
from repro.perf.resilient import RetryPolicy, default_policy, execution_policy
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=2007)


class TestRunContextScoping:
    def test_default_context_inherits_everything(self):
        ctx = RunContext()
        assert ctx.is_default()
        before = (
            current_telemetry(),
            default_policy(),
            current_dispatch(),
            current_kernel_cache(),
        )
        with use_run_context(ctx):
            assert (
                current_telemetry(),
                default_policy(),
                current_dispatch(),
                current_kernel_cache(),
            ) == before

    def test_none_context_is_noop(self):
        before = current_telemetry()
        with use_run_context(None) as ctx:
            assert ctx.is_default()
            assert current_telemetry() is before

    def test_scopes_compose_like_individual_managers(self, tmp_path):
        tel = Telemetry(metrics=True)
        retry = RetryPolicy(max_attempts=4)
        dispatch = DispatchPolicy(mode="batch")
        cache = KernelCache(str(tmp_path))
        ctx = RunContext(
            telemetry=tel,
            execution=retry,
            dispatch=dispatch,
            kernel_cache=cache,
        )
        assert not ctx.is_default()
        with use_run_context(ctx):
            assert current_telemetry() is tel
            assert default_policy() is retry
            assert current_dispatch() is dispatch
            assert current_kernel_cache() is cache
        # Everything unwinds on exit.
        assert current_telemetry() is not tel
        assert default_policy() is not retry
        assert current_dispatch() is not dispatch
        assert current_kernel_cache() is not cache

    def test_partial_context_keeps_outer_scopes(self):
        outer_tel = Telemetry(metrics=True)
        with use_telemetry(outer_tel):
            with use_run_context(RunContext(dispatch=DispatchPolicy())):
                assert current_telemetry() is outer_tel

    def test_kernel_cache_tristate(self, tmp_path):
        cache = KernelCache(str(tmp_path))
        with use_kernel_cache(cache):
            # INHERIT_CACHE (default) leaves the ambient cache alone...
            with use_run_context(RunContext()):
                assert current_kernel_cache() is cache
            # ...while an explicit None disables caching in the scope.
            with use_run_context(RunContext(kernel_cache=None)):
                assert current_kernel_cache() is None
        assert repr(INHERIT_CACHE) == "INHERIT_CACHE"

    def test_current_run_context_snapshot_round_trips(self):
        tel = Telemetry(metrics=True)
        with use_telemetry(tel), execution_policy(RetryPolicy(max_attempts=2)):
            snap = current_run_context()
        assert snap.telemetry is tel
        assert snap.execution.max_attempts == 2
        with use_run_context(snap):
            assert current_telemetry() is tel
            assert default_policy().max_attempts == 2


class TestFlowContextApi:
    def test_context_matches_legacy_knobs_bit_identically(self, design):
        """context=RunContext(...) reproduces the four-ambient-knob
        configuration bit for bit."""
        with use_telemetry(None), execution_policy(RetryPolicy()), \
                dispatch_policy(DispatchPolicy()):
            legacy, _ = run_noise_tolerant_flow(
                design, max_patterns=15, seed=1
            )
        via_ctx, _ = run_noise_tolerant_flow(
            design,
            max_patterns=15,
            seed=1,
            context=RunContext(
                telemetry=None,
                execution=RetryPolicy(),
                dispatch=DispatchPolicy(),
            ),
        )
        assert (
            legacy.pattern_set.as_matrix().tobytes()
            == via_ctx.pattern_set.as_matrix().tobytes()
        )

    def test_telemetry_kwarg_warns_and_still_works(self, design):
        tel = Telemetry(metrics=True)
        with pytest.warns(DeprecationWarning, match="telemetry="):
            result, report = run_noise_tolerant_flow(
                design, max_patterns=10, telemetry=tel
            )
        assert result is not None
        assert report.telemetry is not None
        assert report.telemetry["run_id"] == tel.run_id

    def test_casestudy_telemetry_kwarg_warns(self):
        from repro import CaseStudy

        tel = Telemetry(metrics=True)
        with pytest.warns(DeprecationWarning, match="telemetry="):
            study = CaseStudy(scale="tiny", telemetry=tel)
        assert study.context.telemetry is tel
        assert study.telemetry is tel

    def test_no_warning_on_context_api(self, design):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_noise_tolerant_flow(
                design,
                max_patterns=5,
                context=RunContext(telemetry=NULL_TELEMETRY),
            )

    def test_flow_schedule_stage_records_report(self, design):
        result, report = run_noise_tolerant_flow(
            design, max_patterns=15, schedule_budget_mw=200.0
        )
        assert result is not None
        assert report.schedule is not None
        assert report.schedule["strategy"] == "binpack"
        assert report.schedule["peak_power_mw"] <= 200.0
        assert any(
            s.name == "schedule" and s.status == "completed"
            for s in report.stages
        )
        # The digest survives the JSON round trip.
        from repro.reporting import RunReport

        loaded = RunReport.from_dict(report.to_dict())
        assert loaded.schedule == report.schedule

    def test_flow_infeasible_budget_partial_not_crash(self, design):
        result, report = run_noise_tolerant_flow(
            design, max_patterns=5, schedule_budget_mw=0.001
        )
        assert result is not None
        assert report.status == "partial"
        assert "error" in report.schedule
        # strict mode propagates the ConfigError instead.
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            run_noise_tolerant_flow(
                design,
                max_patterns=5,
                schedule_budget_mw=0.001,
                strict=True,
            )


class TestCaseStudySchedule:
    def test_default_budget_is_feasible(self):
        from repro import CaseStudy

        study = CaseStudy(scale="tiny", seed=2007, backtrack_limit=60)
        schedule = study.schedule()
        schedule.validate()
        assert sorted(schedule.blocks()) == sorted(study.design.blocks())
        assert schedule.strategy == "binpack"
        greedy = study.schedule(strategy="greedy")
        assert schedule.makespan_us <= greedy.makespan_us + 1e-9
