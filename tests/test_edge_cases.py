"""Edge-case and error-path tests across the library."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.config import ElectricalEnv
from repro.errors import (
    AtpgError,
    ConfigError,
    NetlistError,
    ScanError,
    SimulationError,
)
from repro.netlist import Netlist, parse_verilog
from repro.netlist.library import CellSpec, Library
from repro.soc import build_turbo_eagle
from repro.soc.blocks import BlockPlan


class TestConfig:
    def test_env_validation(self):
        with pytest.raises(ConfigError):
            ElectricalEnv(vdd=0.0)
        with pytest.raises(ConfigError):
            ElectricalEnv(k_volt=-1.0)

    def test_scaled_delay_formula(self):
        env = ElectricalEnv(k_volt=0.9)
        assert env.scaled_delay(1.0, 0.1) == pytest.approx(1.09)
        # negative drop (overshoot) clamps
        assert env.scaled_delay(1.0, -0.5) == pytest.approx(1.0)

    def test_red_threshold(self):
        env = ElectricalEnv(vdd=1.8)
        assert env.red_drop_v == pytest.approx(0.18)


class TestLibraryEdges:
    def test_duplicate_cell_rejected(self):
        spec = CellSpec("X1", "INV", 0.1, 1.0, 1.0, 1.0)
        with pytest.raises(Exception):
            Library("dup", [spec, spec])

    def test_unknown_kind_rejected(self):
        bad = CellSpec("X1", "QUANTUM", 0.1, 1.0, 1.0, 1.0)
        with pytest.raises(Exception):
            Library("bad", [bad])


class TestVerilogEdges:
    def test_no_module_rejected(self):
        with pytest.raises(NetlistError):
            parse_verilog(io.StringIO("wire a;\n"))

    def test_unknown_construct_rejected(self):
        text = "module m (a);\n  input a;\n  assign b = a;\nendmodule\n"
        with pytest.raises(NetlistError):
            parse_verilog(io.StringIO(text))

    def test_minimal_module(self):
        text = (
            "module m (\n    a,\n    y\n);\n"
            "  input a;\n  output y;\n"
            "  INVX1 u0 (.A(a), .Y(y));\n"
            "endmodule\n"
        )
        nl = parse_verilog(io.StringIO(text))
        assert nl.n_gates == 1
        assert nl.net_names[nl.gates[0].output] == "y"


class TestBlockPlanValidation:
    def test_too_few_flops(self):
        with pytest.raises(ConfigError):
            BlockPlan("B9", 1, 4.0, 4, {"clka": 1.0})

    def test_bad_domain_shares(self):
        with pytest.raises(ConfigError):
            BlockPlan("B9", 8, 4.0, 4, {"clka": 0.5, "clkb": 0.2})

    def test_too_shallow(self):
        with pytest.raises(ConfigError):
            BlockPlan("B9", 8, 4.0, 1, {"clka": 1.0})


class TestEngineEdges:
    @pytest.fixture(scope="class")
    def design(self):
        return build_turbo_eagle("tiny", seed=61)

    def test_empty_fault_list(self, design):
        from repro.atpg import AtpgEngine

        engine = AtpgEngine(design.netlist, "clka", scan=design.scan)
        result = engine.run(faults=[])
        assert result.n_patterns == 0
        assert result.total_faults == 0
        assert result.coverage_curve() == []

    def test_forced_bits_present_in_every_pattern(self, design):
        from repro.atpg import AtpgEngine

        engine = AtpgEngine(design.netlist, "clka", scan=design.scan,
                            seed=1)
        forced = {design.netlist.scan_flops[0]: 1}
        result = engine.run(fill="0", max_patterns=10, forced_bits=forced)
        for pattern in result.pattern_set:
            for fi, bit in forced.items():
                assert pattern.v1[fi] == bit
                assert pattern.care[fi]

    def test_single_fault_run(self, design):
        from repro.atpg import AtpgEngine, build_fault_universe

        engine = AtpgEngine(design.netlist, "clka", scan=design.scan,
                            seed=1)
        fault = build_fault_universe(design.netlist)[4]
        result = engine.run(faults=[fault])
        assert result.total_faults == 1
        assert result.n_patterns <= 1

    def test_unknown_domain(self, design):
        from repro.atpg import AtpgEngine

        with pytest.raises(AtpgError):
            AtpgEngine(design.netlist, "clk_nonexistent")


class TestFlowEdges:
    def test_max_patterns_budget_across_steps(self):
        from repro.core import NoiseAwarePatternGenerator

        design = build_turbo_eagle("tiny", seed=61)
        flow = NoiseAwarePatternGenerator(
            design, seed=1, backtrack_limit=40
        ).run(max_patterns=10)
        assert flow.n_patterns <= 10

    def test_cross_detected_counted_once(self):
        from repro.core import NoiseAwarePatternGenerator

        design = build_turbo_eagle("tiny", seed=61)
        flow = NoiseAwarePatternGenerator(
            design, seed=1, backtrack_limit=40
        ).run()
        engine_detected = sum(len(r.detected) for r in flow.step_results)
        assert flow.detected_faults == engine_detected + len(
            flow.cross_detected
        )
        # Cross-detected faults point at valid earlier patterns.
        for fault, idx in flow.cross_detected.items():
            assert 0 <= idx < flow.n_patterns


class TestEndpointEdges:
    def test_active_endpoints_filter(self):
        from repro.sim.endpoints import active_endpoints

        delays = {0: 0.0, 1: 2.5, 2: 0.0, 3: 1.0}
        assert active_endpoints(delays) == {1: 2.5, 3: 1.0}
