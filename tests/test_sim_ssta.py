"""Tests for the SSTA-lite statistical timing analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import (
    DelayModel,
    StaticTimingAnalyzer,
    analyze_statistical,
)
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def sta():
    design = build_turbo_eagle("tiny", seed=163)
    dm = DelayModel(design.netlist, design.parasitics)
    analyzer = StaticTimingAnalyzer(
        design.netlist, dm, design.clock_trees["clka"],
        period_ns=20.0, domain="clka",
    )
    analyzer.analyze()
    return analyzer


class TestSsta:
    def test_zero_sigma_matches_deterministic(self, sta):
        det = sta.analyze()
        ssta = analyze_statistical(sta, sigma_fraction=0.0)
        det_by_flop = {e.flop: e for e in det.endpoints}
        for e in ssta.endpoints:
            assert e.std_arrival_ns == 0.0
            assert e.mean_arrival_ns == pytest.approx(
                det_by_flop[e.flop].arrival_ns
            )
            assert e.timing_yield() == 1.0  # timing-closed design

    def test_std_scales_with_sigma(self, sta):
        lo = analyze_statistical(sta, sigma_fraction=0.02)
        hi = analyze_statistical(sta, sigma_fraction=0.08)
        lo_by = {e.flop: e for e in lo.endpoints}
        for e in hi.endpoints:
            assert e.std_arrival_ns == pytest.approx(
                4.0 * lo_by[e.flop].std_arrival_ns, rel=1e-6
            )

    def test_yield_decreases_with_sigma(self, sta):
        yields = [
            analyze_statistical(sta, s).chip_timing_yield()
            for s in (0.0, 0.1, 0.4)
        ]
        assert yields[0] >= yields[1] >= yields[2]
        assert all(0.0 <= y <= 1.0 for y in yields)

    def test_worst_endpoint_has_min_yield(self, sta):
        report = analyze_statistical(sta, sigma_fraction=0.2)
        worst = report.worst_yield_endpoint()
        assert worst is not None
        assert all(
            worst.timing_yield() <= e.timing_yield() + 1e-12
            for e in report.endpoints
        )

    def test_negative_sigma_rejected(self, sta):
        with pytest.raises(SimulationError):
            analyze_statistical(sta, sigma_fraction=-0.1)

    def test_mean_slack_sign_convention(self, sta):
        report = analyze_statistical(sta, sigma_fraction=0.05)
        for e in report.endpoints:
            assert e.mean_slack_ns == pytest.approx(
                e.required_ns - e.mean_arrival_ns
            )
