"""Persistent kernel cache: correctness, invalidation, resilience.

The cache trades a ~seconds compile for a ~milliseconds marshal load,
but only if it can never serve a *wrong* kernel: a mutated netlist must
land on a different fingerprint, a corrupted entry must degrade to a
recompile, and workers racing on a cold cache must all end up with
bit-identical results.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.atpg.faults import build_fault_universe, collapse_faults
from repro.atpg.fsim import FaultSimulator
from repro.obs import Telemetry, use_telemetry
from repro.perf.kernel_cache import (
    KERNEL_SCHEMA_VERSION,
    KernelCache,
    cache_enabled,
    current_kernel_cache,
    default_cache_root,
    netlist_fingerprint,
    use_kernel_cache,
)
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def graded():
    design = build_turbo_eagle("tiny", seed=2007)
    domain = design.dominant_domain()
    nl = design.netlist
    reps, _ = collapse_faults(nl, build_fault_universe(nl))
    rng = np.random.default_rng(11)
    matrix = rng.integers(0, 2, size=(96, nl.n_flops), dtype=np.int8)
    return design, domain, list(reps), matrix


def _reference(graded):
    design, domain, reps, matrix = graded
    return FaultSimulator(
        design.netlist, domain, kernel_cache=None
    ).run_batch(matrix, reps)


# ----------------------------------------------------------------------
# warm-load correctness
# ----------------------------------------------------------------------
class TestWarmLoad:
    def test_cold_then_warm_bit_identical(self, graded, tmp_path):
        design, domain, reps, matrix = graded
        ref = _reference(graded)
        cache = KernelCache(tmp_path)
        with use_kernel_cache(cache):
            cold = FaultSimulator(design.netlist, domain)
            assert cold.run_batch(matrix, reps) == ref
            assert cache.stores >= 1
            warm = FaultSimulator(design.netlist, domain)
            assert warm.run_batch(matrix, reps) == ref
        assert cache.hits >= 1

    def test_warm_simulator_compiles_nothing(self, graded, tmp_path):
        design, domain, reps, matrix = graded
        cache = KernelCache(tmp_path)
        with use_kernel_cache(cache):
            FaultSimulator(design.netlist, domain).warm_kernels(reps)
            warm = FaultSimulator(design.netlist, domain)
            fresh = warm.warm_kernels(reps)
        assert fresh == 0

    def test_warm_kernels_counts_fresh_compiles(self, graded, tmp_path):
        design, domain, reps, matrix = graded
        cache = KernelCache(tmp_path)
        with use_kernel_cache(cache):
            fresh = FaultSimulator(design.netlist, domain).warm_kernels(reps)
        sites = {f.net for f in reps}
        assert fresh == len(sites)

    def test_cone_topology_round_trips(self, graded, tmp_path):
        design, domain, reps, _ = graded
        cache = KernelCache(tmp_path)
        with use_kernel_cache(cache):
            a = FaultSimulator(design.netlist, domain)
            a.warm_kernels(reps)
            b = FaultSimulator(design.netlist, domain)
            for fault in reps[:50]:
                assert b.cone_of(fault.net) == a.cone_of(fault.net)

    def test_same_process_loads_are_memoized(self, graded, tmp_path):
        design, domain, reps, _ = graded
        cache = KernelCache(tmp_path)
        with use_kernel_cache(cache):
            FaultSimulator(design.netlist, domain).warm_kernels(reps)
            FaultSimulator(design.netlist, domain).warm_kernels(reps)
            FaultSimulator(design.netlist, domain).warm_kernels(reps)
        # Stored once, then served from the per-instance memo: the entry
        # file is read at most once no matter how many simulators the
        # process builds.
        key = cache.entry_key(netlist_fingerprint(design.netlist), domain)
        assert key in cache._mem
        assert cache.hits >= 2

    def test_disabled_cache_writes_nothing(self, graded, tmp_path):
        design, domain, reps, matrix = graded
        ref = _reference(graded)
        cache = KernelCache(tmp_path)
        sim = FaultSimulator(design.netlist, domain, kernel_cache=None)
        assert sim.run_batch(matrix, reps) == ref
        assert cache.entries() == []


# ----------------------------------------------------------------------
# invalidation: mutated netlist -> new fingerprint -> recompile
# ----------------------------------------------------------------------
class TestInvalidation:
    def test_fingerprint_changes_on_mutation(self):
        a = build_turbo_eagle("tiny", seed=2007).netlist
        b = build_turbo_eagle("tiny", seed=2007).netlist
        assert netlist_fingerprint(a) == netlist_fingerprint(b)
        c = build_turbo_eagle("tiny", seed=2008).netlist
        assert netlist_fingerprint(a) != netlist_fingerprint(c)

    def test_mutated_netlist_misses_and_recompiles(self, graded, tmp_path):
        design, domain, reps, matrix = graded
        cache = KernelCache(tmp_path)
        with use_kernel_cache(cache):
            FaultSimulator(design.netlist, domain).warm_kernels(reps)
            # A structurally different design must not hit the entry the
            # first one stored.
            other = build_turbo_eagle("tiny", seed=2008)
            onl = other.netlist
            oreps, _ = collapse_faults(onl, build_fault_universe(onl))
            sim = FaultSimulator(onl, other.dominant_domain())
            assert sim.warm_kernels(oreps) > 0  # compiled, not served stale
        assert len(cache.entries()) == 2

    def test_entry_key_covers_domain_and_schema(self, tmp_path):
        cache = KernelCache(tmp_path)
        fp = "a" * 40
        assert cache.entry_key(fp, "clka") != cache.entry_key(fp, "clkb")

    def test_extra_context_feeds_fingerprint(self, graded):
        nl = graded[0].netlist
        assert netlist_fingerprint(nl) != netlist_fingerprint(nl, ("x",))


# ----------------------------------------------------------------------
# corruption: degrade to recompile, never fail
# ----------------------------------------------------------------------
class TestCorruption:
    @pytest.mark.parametrize(
        "damage",
        [
            lambda raw: raw[:-7],  # truncated
            lambda raw: b"\x00" * len(raw),  # zeroed
            lambda raw: raw[:20] + raw[20:][::-1],  # checksum mismatch
            lambda raw: b"short",  # not even a digest
        ],
    )
    def test_corrupted_entry_falls_back(self, graded, tmp_path, damage):
        design, domain, reps, matrix = graded
        ref = _reference(graded)
        cache = KernelCache(tmp_path)
        with use_kernel_cache(cache):
            FaultSimulator(design.netlist, domain).warm_kernels(reps)
        [entry] = cache.entries()
        entry.write_bytes(damage(entry.read_bytes()))
        tel = Telemetry(tracing=False)
        # A fresh cache instance (= fresh process): the in-memory memo
        # must not mask the on-disk damage.
        with use_kernel_cache(KernelCache(tmp_path)), use_telemetry(tel):
            sim = FaultSimulator(design.netlist, domain)
            assert sim.run_batch(matrix, reps) == ref
        assert tel.metrics.counter("kcache.corrupt_entries").value() >= 1

    def test_corrupt_file_is_deleted_on_load(self, tmp_path):
        cache = KernelCache(tmp_path)
        path = cache.entry_path("deadbeef")
        tmp_path.mkdir(exist_ok=True)
        path.write_bytes(b"garbage that is longer than twenty bytes....")
        assert cache.load("deadbeef") is None
        assert not path.exists()

    def test_schema_mismatch_is_a_miss(self, graded, tmp_path, monkeypatch):
        design, domain, reps, _ = graded
        cache = KernelCache(tmp_path)
        with use_kernel_cache(cache):
            FaultSimulator(design.netlist, domain).warm_kernels(reps)
        monkeypatch.setattr(
            "repro.perf.kernel_cache.KERNEL_SCHEMA_VERSION",
            KERNEL_SCHEMA_VERSION + 1,
        )
        key = cache.entry_key(netlist_fingerprint(design.netlist), domain)
        # The key itself embeds the schema, so the entry simply does not
        # resolve; even a forced read of the old payload must reject it.
        assert cache.load(key) is None

    def test_unwritable_root_disables_persistence_only(
        self, graded, tmp_path
    ):
        design, domain, reps, matrix = graded
        ref = _reference(graded)
        root = tmp_path / "ro"
        root.mkdir()
        cache = KernelCache(root)
        os.chmod(root, 0o500)
        try:
            with use_kernel_cache(cache):
                sim = FaultSimulator(design.netlist, domain)
                assert sim.run_batch(matrix, reps) == ref
        finally:
            os.chmod(root, 0o700)


# ----------------------------------------------------------------------
# concurrency: cold-cache races are safe
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_pool_on_cold_cache_bit_identical(self, graded, tmp_path):
        design, domain, reps, matrix = graded
        ref = _reference(graded)
        cache = KernelCache(tmp_path)
        with use_kernel_cache(cache):
            sim = FaultSimulator(design.netlist, domain)
            got = sim.run_batch(matrix, reps, n_workers=2)
        assert got == ref

    def test_racing_stores_converge(self, graded, tmp_path):
        design, domain, reps, matrix = graded
        ref = _reference(graded)
        cache = KernelCache(tmp_path)
        with use_kernel_cache(cache):
            # Two simulators compile independently and both store; last
            # writer wins with identical content.
            a = FaultSimulator(design.netlist, domain)
            b = FaultSimulator(design.netlist, domain, kernel_cache=cache)
            b._ktable = {}  # pretend b loaded before a stored
            a.warm_kernels(reps)
            b.warm_kernels(reps)
            assert len(cache.entries()) == 1
            warm = FaultSimulator(design.netlist, domain)
            assert warm.run_batch(matrix, reps) == ref

    def test_eviction_bounds_directory(self, tmp_path):
        cache = KernelCache(tmp_path, max_entries=3)
        for i in range(6):
            cache.store(f"{i:040x}", {})
        assert len(cache.entries()) <= 3
        assert cache.evictions >= 3


# ----------------------------------------------------------------------
# ambient plumbing
# ----------------------------------------------------------------------
class TestAmbient:
    def test_env_dir_moves_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path / "kc"))
        assert default_cache_root() == tmp_path / "kc"

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE", "off")
        assert not cache_enabled()
        monkeypatch.setenv("REPRO_KERNEL_CACHE", "1")
        assert cache_enabled()

    def test_use_kernel_cache_scopes(self, tmp_path):
        cache = KernelCache(tmp_path)
        with use_kernel_cache(cache):
            assert current_kernel_cache() is cache
            with use_kernel_cache(None):
                assert current_kernel_cache() is None
            assert current_kernel_cache() is cache

    def test_stats_shape(self, tmp_path):
        stats = KernelCache(tmp_path).stats()
        assert set(stats) == {
            "root", "entries", "hits", "misses", "stores", "evictions",
        }
