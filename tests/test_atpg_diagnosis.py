"""Tests for cause-effect transition-fault diagnosis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg import (
    AtpgEngine,
    TransitionFaultDiagnoser,
    build_fault_universe,
    collapse_faults,
)
from repro.errors import AtpgError
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def setup():
    design = build_turbo_eagle("tiny", seed=101)
    engine = AtpgEngine(design.netlist, "clka", scan=design.scan, seed=3)
    result = engine.run(fill="random")
    diagnoser = TransitionFaultDiagnoser(design.netlist, "clka")
    reps, _ = collapse_faults(
        design.netlist, build_fault_universe(design.netlist)
    )
    detected = [f for f in reps if f in result.detected]
    return design, result.pattern_set, diagnoser, detected, reps


class TestDiagnosis:
    def test_injected_fault_is_top_candidate(self, setup):
        """Simulate defective chips and check the true fault ranks #1
        (or ties at score 1.0) for most injections."""
        _design, patterns, diagnoser, detected, reps = setup
        rng = np.random.default_rng(0)
        picks = rng.choice(len(detected), size=12, replace=False)
        top1 = 0
        exact_contains_truth = 0
        for i in picks:
            truth = detected[int(i)]
            syndrome = diagnoser.observe(patterns, truth)
            assert syndrome, "detected fault produced no syndrome"
            result = diagnoser.diagnose(patterns, syndrome, reps)
            assert result.candidates, truth
            if result.best().fault == truth:
                top1 += 1
            if any(c.fault == truth for c in result.exact_matches()):
                exact_contains_truth += 1
        # The truth must be among the exact matches every time (its own
        # syndrome matches itself perfectly)...
        assert exact_contains_truth == len(picks)
        # ...and usually the single best (equivalences can tie).
        assert top1 >= len(picks) // 2

    def test_equivalent_faults_tie(self, setup):
        """Candidates with identical syndromes get identical scores."""
        _design, patterns, diagnoser, detected, reps = setup
        truth = detected[0]
        syndrome = diagnoser.observe(patterns, truth)
        result = diagnoser.diagnose(patterns, syndrome, reps)
        exact = result.exact_matches()
        assert exact
        for cand in exact:
            assert (
                diagnoser.observe(patterns, cand.fault) == syndrome
            )

    def test_empty_syndrome_rejected(self, setup):
        _design, patterns, diagnoser, _detected, reps = setup
        with pytest.raises(AtpgError):
            diagnoser.diagnose(patterns, frozenset(), reps)

    def test_cone_filter_prunes(self, setup):
        """Faults that cannot reach any failing endpoint are skipped
        (scores exist only for structurally-possible causes)."""
        design, patterns, diagnoser, detected, reps = setup
        truth = detected[1]
        syndrome = diagnoser.observe(patterns, truth)
        result = diagnoser.diagnose(patterns, syndrome, reps,
                                    top_k=len(reps))
        failing_dnets = {
            design.netlist.flops[fi].d for _p, fi in syndrome
        }
        for cand in result.candidates:
            _g, captures = diagnoser.fsim.cone_of(cand.fault.net)
            assert failing_dnets & set(captures)

    def test_scores_sorted_descending(self, setup):
        _design, patterns, diagnoser, detected, reps = setup
        syndrome = diagnoser.observe(patterns, detected[2])
        result = diagnoser.diagnose(patterns, syndrome, reps)
        scores = [c.score for c in result.candidates]
        assert scores == sorted(scores, reverse=True)
        assert all(0 < s <= 1.0 for s in scores)
