"""Tests for the 3-valued calculus and the transition fault model."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.atpg.faults import (
    STF,
    STR,
    TransitionFault,
    build_fault_universe,
    collapse_faults,
    fault_block,
)
from repro.atpg.values import EVAL3, X, eval3
from repro.errors import AtpgError
from repro.netlist import Netlist
from repro.netlist.cells import CELL_ARITY, evaluate_kind


class TestValues3:
    @pytest.mark.parametrize("kind", sorted(EVAL3))
    def test_defined_inputs_match_boolean(self, kind):
        """With no X inputs, 3-valued eval equals the boolean function."""
        arity = CELL_ARITY[kind]
        for bits in itertools.product((0, 1), repeat=arity):
            expected = evaluate_kind(kind, list(bits), mask=1)
            assert eval3(kind, list(bits)) == expected

    @pytest.mark.parametrize("kind", sorted(EVAL3))
    def test_monotone_refinement(self, kind):
        """Property: defining an X input never flips a defined output.

        (Pessimistic-exactness: out != X implies out is stable under any
        completion of the X inputs.)
        """
        arity = CELL_ARITY[kind]
        for vals in itertools.product((0, 1, X), repeat=arity):
            out = eval3(kind, list(vals))
            if out == X:
                continue
            x_positions = [i for i, v in enumerate(vals) if v == X]
            for completion in itertools.product(
                (0, 1), repeat=len(x_positions)
            ):
                filled = list(vals)
                for pos, bit in zip(x_positions, completion):
                    filled[pos] = bit
                assert eval3(kind, filled) == out, (kind, vals, filled)

    def test_controlling_values_dominate_x(self):
        assert eval3("AND2", [0, X]) == 0
        assert eval3("NAND3", [X, 0, X]) == 1
        assert eval3("OR2", [1, X]) == 1
        assert eval3("NOR2", [X, 1]) == 0
        assert eval3("XOR2", [1, X]) == X

    def test_mux_agreeing_data_beats_x_select(self):
        assert eval3("MUX2", [1, 1, X]) == 1
        assert eval3("MUX2", [0, 1, X]) == X

    def test_unknown_kind(self):
        with pytest.raises(AtpgError):
            eval3("FOO", [0])


class TestFaults:
    def test_fault_values(self):
        str_f = TransitionFault(3, STR)
        assert str_f.initial_value == 0
        assert str_f.final_value == 1
        stf_f = TransitionFault(3, STF)
        assert stf_f.initial_value == 1
        assert stf_f.final_value == 0

    def test_bad_kind(self):
        with pytest.raises(AtpgError):
            TransitionFault(0, "slow")

    def test_universe_counts(self, tiny_seq):
        faults = build_fault_universe(tiny_seq)
        # 2 faults per stem, stems = 2 gates + 2 flops.
        assert len(faults) == 2 * (tiny_seq.n_gates + tiny_seq.n_flops)

    def test_universe_block_filter(self):
        nl = Netlist("two_blocks")
        q = nl.add_net("q")
        y = nl.add_net("y")
        z = nl.add_net("z")
        nl.add_gate("g1", "INVX1", [q], y, block="A")
        nl.add_gate("g2", "INVX1", [y], z, block="B")
        nl.add_flop("f", "SDFFX1", d=z, q=q, clock_domain="c", is_scan=True,
                    block="A")
        only_a = build_fault_universe(nl, blocks=["A"])
        assert {f.net for f in only_a} == {y, q}

    def test_collapse_through_inverter_flips_kind(self):
        nl = Netlist("chain")
        q = nl.add_net("q")
        a = nl.add_net("a")
        b = nl.add_net("b")
        nl.add_gate("g_inv", "INVX1", [q], a)
        nl.add_gate("g_buf", "BUFX2", [a], b)
        nl.add_flop("f", "SDFFX1", d=b, q=q, clock_domain="c", is_scan=True)
        faults = build_fault_universe(nl)
        reps, mapping = collapse_faults(nl, faults)
        # STR at b == STR at a (buf) == STF at q (inv).
        assert mapping[TransitionFault(b, STR)] == TransitionFault(q, STF)
        assert mapping[TransitionFault(a, STR)] == TransitionFault(q, STF)
        # Representatives: only the two faults on q remain.
        assert set(reps) == {TransitionFault(q, STR), TransitionFault(q, STF)}

    def test_collapse_reduces_universe(self, tiny_comb):
        # No single-input gates in tiny_comb: collapsing is identity.
        faults = build_fault_universe(tiny_comb)
        reps, mapping = collapse_faults(tiny_comb, faults)
        assert len(reps) == len(faults)
        assert all(mapping[f] == f for f in faults)

    def test_fault_block_attribution(self):
        nl = Netlist("fb")
        q = nl.add_net("q")
        y = nl.add_net("y")
        nl.add_gate("g", "INVX1", [q], y, block="B5")
        nl.add_flop("f", "SDFFX1", d=y, q=q, clock_domain="c", is_scan=True,
                    block="B2")
        assert fault_block(nl, TransitionFault(y, STR)) == "B5"
        assert fault_block(nl, TransitionFault(q, STF)) == "B2"
