"""Tests for switching traces and VCD export."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.power import ScapCalculator
from repro.sim import SwitchingTrace, write_vcd
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def traced():
    design = build_turbo_eagle("tiny", seed=3)
    calc = ScapCalculator(design, "clka")
    rng = np.random.default_rng(1)
    v1 = {fi: int(rng.integers(2)) for fi in range(design.netlist.n_flops)}
    result = calc.simulate_pattern(v1, record_trace=True)
    return design, result


class TestSwitchingTrace:
    def test_requires_trace(self, traced):
        design, result = traced
        untraced = ScapCalculator(design, "clka").simulate_pattern(
            {fi: 0 for fi in range(design.netlist.n_flops)}
        )
        with pytest.raises(SimulationError):
            SwitchingTrace(design.netlist, untraced)

    def test_event_count_matches(self, traced):
        design, result = traced
        trace = SwitchingTrace(design.netlist, result)
        assert len(trace) == result.n_transitions

    def test_window_query_partitions(self, traced):
        design, result = traced
        trace = SwitchingTrace(design.netlist, result)
        mid = result.stw_ns / 2.0
        early = trace.transitions_in_window(0.0, mid)
        late = trace.transitions_in_window(mid, result.stw_ns + 1e-9)
        assert early + late == len(trace)
        assert early > 0

    def test_toggles_by_block_matches_energy_blocks(self, traced):
        design, result = traced
        trace = SwitchingTrace(design.netlist, result)
        by_block = trace.toggles_by_block()
        for block, count in by_block.items():
            assert count > 0
            assert result.energy_fj_by_block.get(block, 0.0) > 0.0

    def test_busiest_nets(self, traced):
        design, result = traced
        trace = SwitchingTrace(design.netlist, result)
        busiest = trace.busiest_nets(5)
        assert len(busiest) <= 5
        counts = [c for _n, c in busiest]
        assert counts == sorted(counts, reverse=True)


class TestVcd:
    def test_vcd_structure(self, traced):
        design, result = traced
        trace = SwitchingTrace(design.netlist, result)
        buf = io.StringIO()
        write_vcd(trace, buf, initial_values=None)
        text = buf.getvalue()
        assert "$timescale" in text
        assert "$enddefinitions" in text
        assert "$dumpvars" in text
        # Time markers are monotone.
        ticks = [
            int(line[1:])
            for line in text.splitlines()
            if line.startswith("#")
        ]
        assert ticks == sorted(ticks)

    def test_vcd_declares_only_traced_nets(self, traced):
        design, result = traced
        trace = SwitchingTrace(design.netlist, result)
        buf = io.StringIO()
        write_vcd(trace, buf)
        n_vars = buf.getvalue().count("$var wire")
        toggled = int((result.toggles > 0).sum())
        assert n_vars == toggled
