"""Noise-aware static timing safety bound (``repro.timing``).

Covers the droop-derated delay upper bound, the endpoint
classification lattice, the three-tier re-simulation pre-screen, the
flow integration, and — most importantly — the soundness contract:
the static bound must dominate the IR-scaled event-simulated delay
for every endpoint of every pattern ever tested.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.engine import AtpgEngine
from repro.config import ElectricalEnv
from repro.core.flow import run_noise_tolerant_flow
from repro.core.irscale import ir_scaled_endpoint_comparison
from repro.errors import ConfigError
from repro.pgrid import GridModel
from repro.power import ScapCalculator
from repro.reporting import RunReport
from repro.soc import build_turbo_eagle
from repro.timing import (
    AT_RISK,
    CLASSIFICATIONS,
    INACTIVE,
    SAFE_DERATED,
    SAFE_STATIC,
    DroopBoundAnalyzer,
    prescreen_pattern_set,
    prescreened_endpoint_comparison,
)

SETUP_NS = 0.12


@pytest.fixture(scope="module")
def env():
    design = build_turbo_eagle("tiny", seed=55)
    model = GridModel.calibrated(design, nx=12, ny=12)
    calc = ScapCalculator(design, "clka")
    patterns = (
        AtpgEngine(design.netlist, "clka", scan=design.scan, seed=3)
        .run(max_patterns=12)
        .pattern_set
    )
    return design, model, calc, patterns


@pytest.fixture(scope="module")
def analyzer(env):
    design, model, calc, _patterns = env
    return DroopBoundAnalyzer(
        design, "clka", model=model, delays=calc.delays
    )


class TestDroopBoundsDominance:
    def test_static_droop_dominates_every_pattern(self, env):
        from repro.pgrid import dynamic_ir_for_pattern

        design, model, calc, patterns = env
        bound = DroopBoundAnalyzer(
            design, "clka", model=model, delays=calc.delays
        )
        gate_b, flop_b, _total = bound.droop_bounds_v()
        for pat in patterns:
            v1 = pat.v1_dict()
            timing = calc.simulate_pattern(v1)
            ir = dynamic_ir_for_pattern(model, timing)
            assert (gate_b + 1e-12 >= ir.gate_droop_v).all()
            assert (flop_b + 1e-12 >= ir.flop_droop_v).all()

    def test_block_bounds_cover_floorplan(self, env, analyzer):
        design, _model, _calc, _patterns = env
        blocks = analyzer.block_droop_bounds_v()
        assert set(blocks) == set(design.blocks())
        assert all(v >= 0.0 for v in blocks.values())


class TestPatternBounds:
    def test_classification_partition(self, env, analyzer):
        _design, _model, calc, patterns = env
        v1 = patterns[0].v1_dict()
        report = analyzer.pattern_bounds(v1)
        counts = report.counts()
        assert set(counts) == set(CLASSIFICATIONS)
        assert sum(counts.values()) == len(report.endpoints)
        assert len(report.endpoints) == len(calc.launch_time)

    def test_inactive_endpoints_measure_zero(self, env, analyzer):
        _design, _model, _calc, patterns = env
        report = analyzer.pattern_bounds(patterns[0].v1_dict())
        for ep in report.endpoints.values():
            if ep.classification == INACTIVE:
                assert ep.measured_bound_ns == 0.0
                assert ep.provably_safe
            else:
                assert ep.measured_bound_ns > 0.0

    def test_inactive_matches_simulated_inactivity(self, env, analyzer):
        """Endpoints the static pass proves unreachable simulate to 0."""
        _design, model, calc, patterns = env
        v1 = patterns[0].v1_dict()
        report = analyzer.pattern_bounds(v1)
        cmp_ = ir_scaled_endpoint_comparison(
            calc, model, v1, env=ElectricalEnv()
        )
        for fi, ep in report.endpoints.items():
            if ep.classification == INACTIVE:
                assert cmp_.scaled_ns[fi] == 0.0
                assert cmp_.nominal_ns[fi] == 0.0

    def test_empty_seed_set_is_fully_inactive(self, analyzer):
        report = analyzer.derated_bounds(set(), 1.0, 1.0)
        assert report.counts()[INACTIVE] == len(report.endpoints)
        assert report.fully_safe
        assert report.worst_bound_slack_ns() == float("inf")

    def test_endpoint_selection_by_name(self, env, analyzer):
        design, _model, _calc, patterns = env
        v1 = patterns[0].v1_dict()
        full = analyzer.pattern_bounds(v1)
        some = sorted(full.endpoints)[:2]
        names = [design.netlist.flops[fi].name for fi in some]
        sub = analyzer.pattern_bounds(v1, endpoints=names)
        assert sorted(sub.endpoints) == some
        for fi in some:
            assert sub.endpoints[fi].measured_bound_ns == (
                full.endpoints[fi].measured_bound_ns
            )

    def test_report_to_dict_is_json_serialisable(self, env, analyzer):
        _design, _model, _calc, patterns = env
        report = analyzer.pattern_bounds(patterns[0].v1_dict())
        data = json.loads(json.dumps(report.to_dict()))
        assert data["domain"] == "clka"
        assert data["counts"] == report.counts()


class TestErrorContracts:
    def test_droop_bound_needs_grid_model(self, env):
        design, _model, calc, _patterns = env
        bare = DroopBoundAnalyzer(design, "clka", delays=calc.delays)
        with pytest.raises(ConfigError, match="power-grid model"):
            bare.pattern_bounds({0: 1})

    def test_unknown_domain_rejected(self, env):
        design, model, _calc, _patterns = env
        with pytest.raises(Exception, match="clkz"):
            DroopBoundAnalyzer(design, "clkz", model=model)

    def test_empty_endpoint_selection_rejected(self, env, analyzer):
        _design, _model, _calc, patterns = env
        with pytest.raises(ConfigError, match="empty endpoint"):
            analyzer.pattern_bounds(patterns[0].v1_dict(), endpoints=[])

    def test_unknown_endpoint_rejected(self, env, analyzer):
        _design, _model, _calc, patterns = env
        with pytest.raises(ConfigError, match="unknown endpoint"):
            analyzer.pattern_bounds(
                patterns[0].v1_dict(), endpoints=["no_such_flop"]
            )

    def test_bad_seed_in_derated_bounds_rejected(self, env, analyzer):
        design, _model, _calc, _patterns = env
        bad = design.netlist.n_flops + 3
        with pytest.raises(ConfigError, match="not launch-capable"):
            analyzer.derated_bounds([bad], 1.0, 1.0)

    def test_nonpositive_max_patterns_rejected(self, env):
        _design, model, calc, patterns = env
        with pytest.raises(ConfigError, match="max_patterns"):
            prescreen_pattern_set(calc, model, patterns, max_patterns=0)


class TestPrescreen:
    def test_prescreen_misses_equal_full_path(self, env):
        design, model, calc, patterns = env
        analyzer = DroopBoundAnalyzer(
            design, "clka", model=model, delays=calc.delays
        )
        limit = calc.period_ns - SETUP_NS
        for i, pat in enumerate(patterns):
            v1 = pat.v1_dict()
            pres = prescreened_endpoint_comparison(
                calc, model, v1, index=i, analyzer=analyzer
            )
            full = ir_scaled_endpoint_comparison(
                calc, model, v1, env=ElectricalEnv()
            )
            full_misses = sorted(
                fi
                for fi, d in full.scaled_ns.items()
                if d > limit
            )
            assert sorted(pres.misses()) == full_misses
            assert pres.soundness_violations() == []

    def test_safe_pattern_skips_scaled_sim(self, env):
        _design, model, calc, patterns = env
        v1 = patterns[0].v1_dict()
        pres = prescreened_endpoint_comparison(calc, model, v1)
        if pres.report.fully_safe:
            # no at-risk endpoints -> the scaled Case-2 sim was pruned
            assert pres.skipped_scaled_sim
        if pres.skipped_all_simulation:
            assert pres.nominal_ns is None
            assert pres.report.fully_safe
        assert pres.skipped_scaled_sim == (pres.scaled_ns is None)

    def test_all_zero_pattern_prescreens_clean(self, env):
        design, model, calc, _patterns = env
        v1 = {fi: 0 for fi in range(design.netlist.n_flops)}
        pres = prescreened_endpoint_comparison(calc, model, v1)
        assert pres.misses() == []
        assert pres.soundness_violations() == []
        if pres.report.fully_safe:
            assert pres.skipped_all_simulation

    def test_summary_accounting(self, env):
        _design, model, calc, patterns = env
        summary = prescreen_pattern_set(
            calc, model, patterns, audit_patterns=2
        )
        assert summary.domain == "clka"
        assert summary.n_patterns == len(patterns)
        n_eps = len(calc.launch_time)
        assert summary.endpoints_total == summary.n_patterns * n_eps
        assert sum(summary.endpoint_counts.values()) == (
            summary.endpoints_total
        )
        assert 0.0 <= summary.pruned_endpoint_fraction <= 1.0
        assert summary.soundness_checked >= 1
        assert summary.soundness_violations == 0
        assert (
            summary.patterns_static_safe
            + summary.patterns_derated_safe
            + summary.patterns_resimulated
        ) == summary.n_patterns
        data = json.loads(json.dumps(summary.to_dict()))
        assert data["n_patterns"] == summary.n_patterns

    def test_max_patterns_caps_work(self, env):
        _design, model, calc, patterns = env
        summary = prescreen_pattern_set(
            calc, model, patterns, max_patterns=3, audit_patterns=0
        )
        assert summary.n_patterns == 3


class TestFlowIntegration:
    def test_flow_timing_stage_and_report_roundtrip(self, tmp_path):
        design = build_turbo_eagle("tiny", seed=55)
        _result, report = run_noise_tolerant_flow(
            design,
            "clka",
            max_patterns=6,
            timing_prescreen=True,
            timing_max_patterns=4,
        )
        assert report.timing is not None
        assert "error" not in report.timing
        assert report.timing["n_patterns"] == 4
        stage = {s.name: s for s in report.stages}["timing"]
        assert stage.status == "completed"
        assert stage.detail["patterns"] == 4
        path = report.save(str(tmp_path / "report.json"))
        loaded = RunReport.load(path)
        assert loaded.timing == report.timing

    def test_flow_without_prescreen_leaves_timing_none(self):
        design = build_turbo_eagle("tiny", seed=55)
        _result, report = run_noise_tolerant_flow(
            design, "clka", max_patterns=4
        )
        assert report.timing is None


_PROP_DESIGN = build_turbo_eagle("tiny", seed=21)
_PROP_MODEL = GridModel.calibrated(_PROP_DESIGN, nx=12, ny=12)
_PROP_CALC = ScapCalculator(_PROP_DESIGN, "clka")
_PROP_ANALYZER = DroopBoundAnalyzer(
    _PROP_DESIGN, "clka", model=_PROP_MODEL, delays=_PROP_CALC.delays
)
_PROP_N = _PROP_DESIGN.netlist.n_flops


class TestSoundnessProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        bits=st.lists(
            st.integers(min_value=0, max_value=1),
            min_size=_PROP_N,
            max_size=_PROP_N,
        )
    )
    def test_bound_dominates_ir_scaled_delay(self, bits):
        """The headline inequality: static droop-derated bound >=
        IR-scaled event-simulated endpoint delay, endpoint by
        endpoint, for arbitrary launch patterns."""
        v1 = dict(enumerate(bits))
        pres = prescreened_endpoint_comparison(
            _PROP_CALC, _PROP_MODEL, v1, analyzer=_PROP_ANALYZER
        )
        cmp_ = ir_scaled_endpoint_comparison(
            _PROP_CALC, _PROP_MODEL, v1, env=ElectricalEnv()
        )
        for fi, ep in pres.report.endpoints.items():
            assert ep.classification in CLASSIFICATIONS
            assert (
                ep.measured_bound_ns + 1e-9 >= cmp_.scaled_ns[fi]
            ), (
                f"unsound bound at endpoint {fi}: "
                f"bound {ep.measured_bound_ns} < "
                f"simulated {cmp_.scaled_ns[fi]}"
            )
            if ep.classification == AT_RISK:
                continue
            assert ep.classification in (
                INACTIVE,
                SAFE_STATIC,
                SAFE_DERATED,
            )
            assert cmp_.scaled_ns[fi] <= ep.limit_ns + 1e-9
