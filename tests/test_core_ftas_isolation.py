"""Tests for FTAS analysis and the isolation-DFT flow option."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CaseStudy
from repro.core import NoiseAwarePatternGenerator, ftas_analysis
from repro.core.validation import validate_pattern_set
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def study():
    return CaseStudy(scale="tiny", seed=2007, backtrack_limit=60)


class TestFtas:
    @pytest.fixture(scope="class")
    def report(self, study):
        return ftas_analysis(
            study.calculator,
            study.model,
            study.conventional().pattern_set,
            sample=10,
        )

    def test_per_pattern_periods(self, report):
        assert report.patterns
        for p in report.patterns:
            # IR-drop never shortens the safe period.
            assert p.min_period_ir_ns >= p.min_period_nominal_ns
            # All patterns fit the nominal cycle (design timing-closed).
            assert p.min_period_nominal_ns < report.nominal_period_ns

    def test_headroom_loss_positive(self, report):
        assert report.mean_headroom_loss_pct() >= 0.0

    def test_ftas_binning(self, report):
        freqs = [50.0, 75.0, 100.0, 150.0]
        nominal_bins = report.bin_patterns(freqs, ir_aware=False)
        ir_bins = report.bin_patterns(freqs, ir_aware=True)
        assert sum(nominal_bins.values()) == len(report.patterns)
        assert sum(ir_bins.values()) == len(report.patterns)
        # IR-aware binning never runs a pattern *faster*: the count in
        # the fastest bins cannot grow.
        ordered = sorted(freqs, reverse=True)
        for k in range(1, len(ordered) + 1):
            fast_nominal = sum(nominal_bins[f] for f in ordered[:k])
            fast_ir = sum(ir_bins[f] for f in ordered[:k])
            assert fast_ir <= fast_nominal

    def test_every_pattern_overclockable(self, report):
        """FTAS premise: typical patterns exercise paths shorter than
        the functional cycle, so they can run faster than at-speed."""
        faster = [
            p for p in report.patterns
            if p.max_freq_mhz(ir_aware=True) > 1000.0 / report.nominal_period_ns
        ]
        assert len(faster) >= len(report.patterns) // 2

    def test_bad_margins_rejected(self, study):
        with pytest.raises(ConfigError):
            ftas_analysis(
                study.calculator, study.model,
                study.conventional().pattern_set, sample=2,
                margin_ns=-1.0,
            )


class TestIsolation:
    def test_isolated_flow_keeps_prefix_silent(self, study):
        flow = NoiseAwarePatternGenerator(
            study.design, seed=1, isolate_untargeted=True,
            backtrack_limit=60,
        ).run()
        report = validate_pattern_set(
            study.calculator, flow.pattern_set, study.thresholds_mw
        )
        series = report.scap_series("B5")
        b5_start = flow.step_boundaries[-1]
        prefix = series[:b5_start]
        # With hard isolation the prefix is exactly quiet in B5.
        assert prefix.size == 0 or prefix.max() == 0.0

    def test_isolation_forces_enables_low(self, study):
        flow = NoiseAwarePatternGenerator(
            study.design, seed=1, isolate_untargeted=True,
            backtrack_limit=60,
        ).run()
        b5_start = flow.step_boundaries[-1]
        enables = study.design.enable_flops_in_block("B5")
        for pattern in list(flow.pattern_set)[:b5_start]:
            for fi in enables:
                assert pattern.v1[fi] == 0
                assert pattern.care[fi]  # constrained, not just filled

    def test_isolation_coverage_comparable(self, study):
        base = NoiseAwarePatternGenerator(
            study.design, seed=1, backtrack_limit=60,
        ).run()
        isolated = NoiseAwarePatternGenerator(
            study.design, seed=1, isolate_untargeted=True,
            backtrack_limit=60,
        ).run()
        assert abs(base.test_coverage - isolated.test_coverage) < 0.12
