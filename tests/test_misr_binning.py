"""Tests for MISR response compaction and Monte-Carlo chip binning."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CaseStudy
from repro.core import binning_simulation, overkill_analysis
from repro.dft import Misr, capture_responses, signature_of_responses
from repro.errors import ConfigError, ScanError
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def study():
    return CaseStudy(scale="tiny", seed=2007, backtrack_limit=60)


class TestMisr:
    def test_deterministic(self):
        a = Misr(32, seed=1)
        b = Misr(32, seed=1)
        for word in (0x1234, 0xDEAD, 0x42):
            a.clock(word)
            b.clock(word)
        assert a.signature == b.signature

    def test_order_sensitivity(self):
        a = Misr(32)
        b = Misr(32)
        a.clock(1)
        a.clock(2)
        b.clock(2)
        b.clock(1)
        assert a.signature != b.signature

    def test_unsupported_width(self):
        with pytest.raises(ScanError):
            Misr(13)

    def test_absorb_partial_word(self):
        m = Misr(16)
        m.absorb_response([1, 0, 1])  # shorter than the register
        assert m.signature != 0

    def test_aliasing_probability(self):
        assert Misr(32).aliasing_probability == pytest.approx(2.0 ** -32)

    def test_fault_effect_survives_compaction(self, study):
        """A single flipped capture bit changes the signature."""
        design = study.design
        patterns = study.conventional().pattern_set
        responses = capture_responses(design.netlist, patterns, "clka")
        order = sorted(responses[0])
        good = signature_of_responses(responses, order)
        # Flip one bit of one response (a detected fault effect).
        bad = [dict(r) for r in responses]
        victim = order[3]
        bad[len(bad) // 2][victim] ^= 1
        assert signature_of_responses(bad, order) != good

    def test_reset(self):
        m = Misr(24, seed=7)
        m.clock(0xBEEF)
        m.reset(7)
        assert m.signature == 7


class TestBinning:
    @pytest.fixture(scope="class")
    def fast_report(self, study):
        probe = overkill_analysis(
            study.calculator, study.model,
            study.conventional().pattern_set, sample=10,
        )
        period = max(p.worst_nominal_ns for p in probe.patterns) + \
            probe.setup_ns + 0.05
        return overkill_analysis(
            study.calculator, study.model,
            study.conventional().pattern_set, sample=10,
            period_ns=period,
        )

    def test_population_accounting(self, fast_report):
        result = binning_simulation(fast_report, n_chips=1000, sigma=0.05)
        assert result.n_chips == 1000
        assert 0 <= result.overkill <= result.functionally_good
        assert result.passed_test <= result.n_chips
        assert 0.0 <= result.yield_loss_fraction <= 1.0

    def test_noisy_patterns_cost_yield(self, study, fast_report):
        """At the tight period, conventional patterns' noise rejects a
        measurable share of good chips."""
        result = binning_simulation(fast_report, n_chips=4000, sigma=0.05)
        assert result.yield_loss_fraction > 0.0

    def test_quiet_patterns_cost_less(self, study, fast_report):
        stag_report = overkill_analysis(
            study.calculator, study.model,
            study.staged().pattern_set, sample=10,
            period_ns=fast_report.period_ns,
        )
        conv = binning_simulation(fast_report, n_chips=4000, sigma=0.05)
        stag = binning_simulation(stag_report, n_chips=4000, sigma=0.05)
        # Note: staged patterns sensitize different paths, so compare
        # the noise penalty (scaled/nominal gap), which binning reflects
        # as yield loss at matched populations.
        assert stag.yield_loss_fraction <= conv.yield_loss_fraction + 0.05

    def test_zero_sigma_is_deterministic(self, fast_report):
        a = binning_simulation(fast_report, n_chips=100, sigma=0.0)
        assert a.functionally_good in (0, 100)

    def test_validation(self, fast_report):
        with pytest.raises(ConfigError):
            binning_simulation(fast_report, sigma=-0.1)
