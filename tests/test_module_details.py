"""Detail tests for helper functions across subpackages."""

from __future__ import annotations

import io
import math

import numpy as np
import pytest

from repro.dft import Misr
from repro.dft.compression import EdtCompressor
from repro.errors import ConfigError, ScanError
from repro.netlist import Netlist, parse_verilog, write_verilog
from repro.soc import build_turbo_eagle
from repro.soc.blocks import BlockPlan, _assign_domains, _sample_kind
from repro.soc.clocks import ClockDomainSpec, build_clock_tree
from repro.soc.floorplan import make_turbo_eagle_floorplan


class TestBlockHelpers:
    def test_assign_domains_counts(self):
        plan = BlockPlan("B9", 20, 4.0, 4,
                         {"clka": 0.7, "clkb": 0.3})
        rng = np.random.default_rng(0)
        assignment = _assign_domains(plan, rng)
        assert len(assignment) == 20
        assert assignment.count("clka") == 14
        assert assignment.count("clkb") == 6

    def test_assign_domains_rounding_drift(self):
        plan = BlockPlan("B9", 7, 4.0, 4,
                         {"clka": 0.5, "clkb": 0.5})
        rng = np.random.default_rng(1)
        assignment = _assign_domains(plan, rng)
        assert len(assignment) == 7  # drift absorbed by larger share

    def test_sample_kind_distribution(self):
        rng = np.random.default_rng(2)
        kinds = {_sample_kind(rng) for _ in range(300)}
        # All major kinds appear across 300 draws.
        assert {"AND2", "XOR2", "NAND2", "MUX2"} <= kinds


class TestClockHelpers:
    def test_domain_spec_period(self):
        spec = ClockDomainSpec("clkx", 40.0, ("B1",))
        assert spec.period_ns == pytest.approx(25.0)
        bad = ClockDomainSpec("clky", 0.0, ())
        with pytest.raises(ConfigError):
            _ = bad.period_ns

    def test_tree_leaf_size_respected(self):
        rng = np.random.default_rng(3)
        positions = {
            i: (float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            for i in range(40)
        }
        tree = build_clock_tree("clkx", positions, (50.0, 100.0),
                                leaf_size=5)
        per_leaf = {}
        for fi, leaf in tree.leaf_of_flop.items():
            per_leaf.setdefault(leaf, []).append(fi)
        assert all(len(g) <= 5 for g in per_leaf.values())

    def test_tree_invalid_leaf_size(self):
        with pytest.raises(ConfigError):
            build_clock_tree("clkx", {0: (0.0, 0.0)}, (0.0, 0.0),
                             leaf_size=0)

    def test_buffer_loads_positive(self):
        positions = {i: (float(i), 0.0) for i in range(9)}
        tree = build_clock_tree("clkx", positions, (0.0, 0.0),
                                leaf_size=3)
        assert all(b.load_ff > 0 for b in tree.buffers)


class TestVerilogDetails:
    def test_escaped_net_names(self):
        nl = Netlist("esc")
        a = nl.add_net("a[0]")  # needs escaping
        y = nl.add_net("y.out")
        nl.add_primary_input(a)
        nl.add_gate("g", "INVX1", [a], y)
        nl.add_primary_output(y)
        buf = io.StringIO()
        write_verilog(nl, buf)
        text = buf.getvalue()
        assert "\\a[0] " in text
        buf.seek(0)
        back = parse_verilog(buf)
        assert back.has_net("a[0]")
        assert back.has_net("y.out")

    def test_multi_domain_ports(self):
        nl = Netlist("md")
        q1 = nl.add_net("q1")
        q2 = nl.add_net("q2")
        d = nl.add_net("d")
        nl.add_gate("g", "AND2X1", [q1, q2], d)
        nl.add_flop("f1", "SDFFX1", d=d, q=q1, clock_domain="alpha")
        nl.add_flop("f2", "SDFFX1", d=d, q=q2, clock_domain="beta")
        buf = io.StringIO()
        write_verilog(nl, buf)
        text = buf.getvalue()
        assert "clk_alpha" in text and "clk_beta" in text
        buf.seek(0)
        back = parse_verilog(buf)
        domains = {f.clock_domain for f in back.flops}
        assert domains == {"alpha", "beta"}


class TestMisrWidths:
    @pytest.mark.parametrize("width", [16, 24, 32])
    def test_all_widths_work(self, width):
        m = Misr(width, seed=3)
        m.absorb_response([1, 0, 1, 1, 0] * 10)
        assert 0 < m.signature < (1 << width)

    def test_different_widths_differ(self):
        # A long stream packs into different word boundaries per width,
        # so the signatures diverge.
        stream = [(i * 5 + 1) % 2 for i in range(96)]
        sigs = set()
        for width in (16, 24, 32):
            m = Misr(width, seed=3)
            m.absorb_response(stream)
            sigs.add(m.signature)
        assert len(sigs) == 3


class TestCompressionWidths:
    @pytest.mark.parametrize("width", [24, 32, 48, 64])
    def test_all_lfsr_widths(self, width):
        design = build_turbo_eagle("tiny", seed=131)
        comp = EdtCompressor(design.scan, n_seed_bits=width)
        cube = {0: 1, 5: 0, 9: 1}
        seed = comp.compress_cube(cube)
        assert seed is not None
        v1 = comp.expand(seed)
        for fi, bit in cube.items():
            assert v1[fi] == bit


class TestFloorplanGeometry:
    def test_pads_evenly_spread(self):
        fp = make_turbo_eagle_floorplan(800.0)
        from repro.soc.floorplan import periphery_pad_positions

        pads = periphery_pad_positions(fp, 37)
        # Consecutive pads are roughly one perimeter/37 apart.
        per = 2 * (fp.width + fp.height) / 37

        def arc(p):
            x, y = p
            if y == 0.0:
                return x
            if x == fp.width:
                return fp.width + y
            if y == fp.height:
                return fp.width + fp.height + (fp.width - x)
            return 2 * fp.width + fp.height + (fp.height - y)

        arcs = sorted(arc(p) for p in pads)
        gaps = [b - a for a, b in zip(arcs, arcs[1:])]
        assert max(gaps) < 1.5 * per

    def test_block_at_boundary_points(self):
        fp = make_turbo_eagle_floorplan(1000.0)
        # Left edge of B5 region belongs to B5 (half-open rectangles).
        region = fp.region("B5")
        assert fp.block_at(region.x0, region.y0) == "B5"
        assert fp.block_at(region.x1, region.y1) != "B5"
