"""Tests for scan insertion, chain ordering and test protocols."""

from __future__ import annotations

import pytest

from repro.dft import (
    ENHANCED_SCAN,
    LAUNCH_OFF_CAPTURE,
    LAUNCH_OFF_SHIFT,
    chain_wirelength,
    insert_scan_chains,
    order_flops_serpentine,
)
from repro.dft.protocol import AtSpeedProtocol
from repro.errors import ScanError
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=5)


class TestScanInsertion:
    def test_every_scan_flop_on_exactly_one_chain(self, design):
        seen = {}
        for chain in design.scan.chains:
            for fi in chain.flops:
                assert fi not in seen, "flop on two chains"
                seen[fi] = chain.index
        assert set(seen) == set(design.netlist.scan_flops)

    def test_chain_fields_written_back(self, design):
        for chain in design.scan.chains:
            for pos, fi in enumerate(chain.flops):
                flop = design.netlist.flops[fi]
                assert flop.chain == chain.index
                assert flop.chain_pos == pos

    def test_negative_edge_flops_on_dedicated_last_chain(self, design):
        last = design.scan.chains[-1]
        assert last.edge == "neg"
        nl = design.netlist
        assert all(nl.flops[fi].edge == "neg" for fi in last.flops)
        for chain in design.scan.chains[:-1]:
            assert all(nl.flops[fi].edge == "pos" for fi in chain.flops)

    def test_positive_chains_balanced(self, design):
        lengths = [c.length for c in design.scan.chains[:-1]]
        assert max(lengths) - min(lengths) <= 2

    def test_too_many_chains_rejected(self, design):
        with pytest.raises(ScanError):
            insert_scan_chains(design, n_chains=10_000)

    def test_neighbors_map(self, design):
        up = design.scan.neighbors_along_chains(design.netlist)
        chain = design.scan.chains[0]
        assert chain.flops[0] not in up
        for pos in range(1, chain.length):
            assert up[chain.flops[pos]] == chain.flops[pos - 1]


class TestChainOrdering:
    def test_serpentine_beats_random_order(self, design):
        nl = design.netlist
        flops = design.scan.chains[0].flops
        ordered = order_flops_serpentine(nl, flops)
        assert sorted(ordered) == sorted(flops)
        # Compare against a deliberately shuffled order.
        shuffled = list(flops)
        shuffled.reverse()
        shuffled = shuffled[::2] + shuffled[1::2]
        assert chain_wirelength(nl, ordered) <= chain_wirelength(
            nl, shuffled
        ) * 1.05

    def test_wirelength_empty_and_single(self, design):
        nl = design.netlist
        assert chain_wirelength(nl, []) == 0.0
        assert chain_wirelength(nl, [0]) == 0.0


class TestProtocols:
    def test_styles(self):
        assert LAUNCH_OFF_CAPTURE.v2_is_functional
        assert not LAUNCH_OFF_SHIFT.v2_is_functional
        assert not ENHANCED_SCAN.v2_is_functional

    def test_unknown_style_rejected(self):
        with pytest.raises(ScanError):
            AtSpeedProtocol("warp", "not a protocol")

    def test_los_shift_state(self, design):
        scan = design.scan
        v1 = {fi: (i % 2) for i, fi in enumerate(design.netlist.scan_flops)}
        v2 = LAUNCH_OFF_SHIFT.shift_state(v1, scan, scan_in_bits={0: 1})
        chain = scan.chains[0]
        assert v2[chain.flops[0]] == 1  # scan-in bit
        for pos in range(1, chain.length):
            assert v2[chain.flops[pos]] == v1[chain.flops[pos - 1]]

    def test_shift_state_loc_rejected(self, design):
        with pytest.raises(ScanError):
            LAUNCH_OFF_CAPTURE.shift_state({}, design.scan)
