"""Soundness tests for the static SCAP upper bound (power pre-screen).

The bound's whole value is the inequality

    simulated SCAP  <=  per-pattern bound  <=  per-block bound

for every block and every pattern.  These tests check it empirically
against the real event timing simulator on the tiny generated SOC, and
check that the screen is *useful*: at least one block exceeds its
statistical threshold before any timing simulation has run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.thresholds import derive_scap_thresholds
from repro.pgrid.grid import GridModel
from repro.power.calculator import ScapCalculator
from repro.power.static_bound import StaticScapBound
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=3)


@pytest.fixture(scope="module")
def bound(design):
    return StaticScapBound(design)


@pytest.fixture(scope="module")
def calculator(design):
    return ScapCalculator(design)


def _random_patterns(design, n, seed=11):
    rng = np.random.default_rng(seed)
    n_flops = design.netlist.n_flops
    return [
        {fi: int(b) for fi, b in enumerate(rng.integers(0, 2, n_flops))}
        for _ in range(n)
    ]


class TestBoundSoundness:
    def test_stw_floor_positive(self, bound):
        assert bound.stw_floor_ns > 0.0

    def test_block_bounds_cover_all_blocks(self, design, bound):
        bounds = bound.block_upper_bounds_mw()
        assert set(bounds) == set(design.blocks())
        assert all(v >= 0.0 for v in bounds.values())

    def test_simulated_scap_never_exceeds_bound(
        self, design, bound, calculator
    ):
        block_bounds = bound.block_upper_bounds_mw()
        for idx, v1 in enumerate(_random_patterns(design, 12)):
            profile = calculator.profile_pattern(v1, index=idx)
            pattern_bounds = bound.pattern_upper_bounds_mw(v1)
            for block in design.blocks():
                simulated = profile.scap_mw(block)
                assert simulated <= pattern_bounds[block] + 1e-9, (
                    f"pattern {idx} block {block}: simulated "
                    f"{simulated} > pattern bound {pattern_bounds[block]}"
                )
                assert (
                    pattern_bounds[block] <= block_bounds[block] + 1e-9
                ), f"pattern bound above block bound for {block}"

    def test_quiet_pattern_has_zero_bound(self, design, bound):
        # all-zero fill cannot launch any transition on this design's
        # monotone launch condition unless a flop toggles; the pattern
        # bound must then agree that nothing switches
        v1 = {fi: 0 for fi in range(design.netlist.n_flops)}
        seeds = bound.toggling_launch_flops(v1)
        bounds = bound.pattern_upper_bounds_mw(v1)
        if not seeds:
            assert all(v == 0.0 for v in bounds.values())
        else:  # design does toggle on zeros: bound still covers all blocks
            assert set(bounds) == set(design.blocks())


class TestScreen:
    def test_screen_flags_hot_block_before_simulation(self, design, bound):
        model = GridModel.calibrated(design, nx=8, ny=8)
        thresholds = derive_scap_thresholds(model, design.dominant_domain())
        screen = bound.screen_blocks(thresholds)
        assert set(screen) == set(design.blocks())
        flagged = [b for b, row in screen.items() if not row["provably_safe"]]
        # on the tiny SOC the bound is far above the few-mW statistical
        # thresholds: the screen must route at least one block (B5, the
        # paper's hot block, among them) to the noise-aware flow
        assert flagged
        assert "B5" in flagged

    def test_screen_rows_are_self_consistent(self, design, bound):
        thresholds = {b: 1e9 for b in design.blocks()}
        screen = bound.screen_blocks(thresholds)
        for row in screen.values():
            assert row["provably_safe"]
            assert row["bound_mw"] <= row["threshold_mw"]

    def test_pwr_scap_rule_fires_with_thresholds(self, design):
        from repro.drc import DrcContext, run_drc

        model = GridModel.calibrated(design, nx=8, ny=8)
        thresholds = derive_scap_thresholds(model, design.dominant_domain())
        report = run_drc(
            DrcContext.for_design(design, thresholds_mw=thresholds),
            families=["power"],
        )
        assert "PWR-SCAP" in report.rules_run
        assert report.by_rule("PWR-SCAP")  # at least one finding

    def test_pwr_scap_skipped_without_thresholds(self, design):
        from repro.drc import DrcContext, run_drc

        report = run_drc(
            DrcContext.for_design(design), families=["power"]
        )
        assert "PWR-SCAP" in report.rules_skipped
