"""Cross-layer integration tests on a generated SOC."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.netlist import check_netlist, parse_verilog, write_verilog
from repro.netlist.levelize import levelize
from repro.sim import DelayModel, LogicSim, loc_launch_capture
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=2024)


class TestSocVerilogRoundTrip:
    def test_generated_soc_roundtrips(self, design):
        buf = io.StringIO()
        write_verilog(design.netlist, buf)
        buf.seek(0)
        back = parse_verilog(buf)
        assert back.n_gates == design.netlist.n_gates
        assert back.n_flops == design.netlist.n_flops
        assert check_netlist(back) == []

    def test_roundtrip_preserves_logic(self, design):
        buf = io.StringIO()
        write_verilog(design.netlist, buf)
        buf.seek(0)
        back = parse_verilog(buf)
        # Same V1 must produce the same captured response, matched by
        # flop name (net ids may be renumbered).
        rng = np.random.default_rng(5)
        bits = {f.name: int(rng.integers(2)) for f in design.netlist.flops}

        def capture(netlist):
            sim = LogicSim(netlist)
            v1 = {
                fi: bits[f.name] for fi, f in enumerate(netlist.flops)
            }
            cyc = loc_launch_capture(sim, v1, "clka")
            return {
                netlist.flops[fi].name: val
                for fi, val in cyc.captured.items()
            }

        assert capture(design.netlist) == capture(back)

    def test_roundtrip_preserves_chains(self, design):
        buf = io.StringIO()
        write_verilog(design.netlist, buf)
        buf.seek(0)
        back = parse_verilog(buf)
        orig_scan = {
            f.name for f in design.netlist.flops if f.is_scan
        }
        back_scan = {f.name for f in back.flops if f.is_scan}
        assert orig_scan == back_scan


class TestStructuralConsistency:
    def test_levelizable(self, design):
        order, _ = levelize(design.netlist)
        assert len(order) == design.netlist.n_gates

    def test_delay_model_covers_everything(self, design):
        dm = DelayModel(design.netlist, design.parasitics)
        assert (dm.gate_delay_ns > 0).all()
        assert (dm.flop_ck2q_ns > 0).all()
        # Critical path fits within the at-speed cycle (timing closure).
        assert dm.critical_path_estimate_ns() < 20.0

    def test_clock_domain_flops_capture_only_their_domain(self, design):
        sim = LogicSim(design.netlist)
        v1 = {fi: 1 for fi in range(design.netlist.n_flops)}
        cyc = loc_launch_capture(sim, v1, "clkb")
        for fi in cyc.pulsed_flops:
            assert design.netlist.flops[fi].clock_domain == "clkb"
        # Non-pulsed flops hold their V1 value in the launch state.
        for fi, f in enumerate(design.netlist.flops):
            if f.clock_domain != "clkb" or f.edge != "pos":
                assert cyc.launch_state[fi] == 1

    def test_every_domain_runs_a_cycle(self, design):
        sim = LogicSim(design.netlist)
        for domain in design.domains:
            v1 = {fi: 0 for fi in range(design.netlist.n_flops)}
            cyc = loc_launch_capture(sim, v1, domain)
            assert cyc.pulsed_flops

    def test_scan_state_controls_all_blocks(self, design):
        """Flipping one enable + data flop of a block changes that
        block's launch activity: scan controllability sanity."""
        sim = LogicSim(design.netlist)
        zeros = {fi: 0 for fi in range(design.netlist.n_flops)}
        base = loc_launch_capture(sim, zeros, "clka")
        ones = {fi: 1 for fi in range(design.netlist.n_flops)}
        active = loc_launch_capture(sim, ones, "clka")
        changed = sum(
            1
            for fi in base.pulsed_flops
            if base.launch_state[fi] != active.launch_state[fi]
            or base.captured[fi] != active.captured[fi]
        )
        assert changed > len(base.pulsed_flops) // 4
