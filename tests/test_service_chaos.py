"""End-to-end chaos tests: the service survives killed and hung workers.

These run real worker *subprocesses* over a real tiny flow and break
them mid-job:

* SIGKILL a worker while it is executing a shard — the supervisor
  respawns, the lease expires, the replacement resumes from the job's
  checkpoints, and the finished job's patterns are **bit-identical**
  to a single-process ``run_noise_tolerant_flow``;
* SIGSTOP a worker (a hang, not a crash) — its heartbeat thread
  freezes with it, the lease genuinely expires, another worker takes
  over, and when the zombie is resumed its stale fencing token keeps
  it from corrupting the finished job;
* a shard that kills every worker that touches it ends ``dead`` with
  the failure log on disk — bounded retries, never an infinite loop.

Marked ``chaos``: CI runs them in their own lane with a hard timeout
(see ``service-chaos`` in ci.yml).
"""

from __future__ import annotations

import functools
import json
import os
import signal
import time

import numpy as np
import pytest

from repro.core import run_noise_tolerant_flow
from repro.service import (
    JOB_DEAD,
    JOB_DONE,
    JobSpec,
    JobStore,
    ServiceClient,
    ServiceConfig,
    ServiceSupervisor,
)
from repro.soc import build_turbo_eagle

pytestmark = pytest.mark.chaos

#: Short TTL so reclaim-after-death is seconds, not the prod 30 s.
TTL = 2.0


@functools.lru_cache(maxsize=1)
def reference_matrix():
    design = build_turbo_eagle(scale="tiny", seed=2007)
    result, _ = run_noise_tolerant_flow(design, seed=1)
    return result.pattern_set.as_matrix()


def make_store(tmp_path, **overrides) -> JobStore:
    config = ServiceConfig(lease_ttl_s=TTL, **overrides)
    return JobStore(str(tmp_path / "store"), config)


def wait_for_running_shard(store: JobStore, job_id: str,
                           timeout_s: float = 120.0):
    """Poll until some shard of the job is being executed; returns it."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = store.get(job_id)
        for shard in job.shards:
            if shard.state == "running" and shard.lease is not None:
                return shard
        if job.terminal:
            pytest.fail(f"job went terminal ({job.state}) before a "
                        f"shard was observed running")
        time.sleep(0.05)
    pytest.fail("no shard entered the running state in time")


def registry_pid(store: JobStore, worker_id: str) -> int:
    """The OS pid a worker recorded in the store's worker registry."""
    path = os.path.join(store.workers_dir, f"{worker_id}.json")
    with open(path) as fh:
        return int(json.load(fh)["pid"])


def test_sigkilled_worker_mid_shard_job_completes_bit_identical(tmp_path):
    """kill -9 mid-shard: lease expires, respawned worker resumes from
    the checkpoints, and the result matches single-process exactly."""
    store = make_store(tmp_path)
    client = ServiceClient(store)
    job_id = client.submit(JobSpec(scale="tiny"))
    with ServiceSupervisor(store, n_workers=1) as sup:
        shard = wait_for_running_shard(store, job_id)
        victim = registry_pid(store, shard.lease.worker)
        os.kill(victim, signal.SIGKILL)
        sup.run_until_drained(timeout_s=240)
    job = client.status(job_id)
    assert job.state == JOB_DONE
    # the kill left a lease-expiry scar on exactly the shard it hit
    scars = [f for s in job.shards for f in s.failures]
    assert any(f["kind"] == "lease_expired" for f in scars)
    result = client.result(job_id)
    assert np.array_equal(result["matrix"], reference_matrix())


def test_hung_worker_lease_expires_and_peer_completes(tmp_path):
    """SIGSTOP (hang): the frozen heartbeat lets the lease expire, a
    peer worker finishes the job, and the resumed zombie's stale token
    cannot disturb the finished state."""
    store = make_store(tmp_path)
    client = ServiceClient(store)
    job_id = client.submit(JobSpec(scale="tiny"))
    stopped = None
    try:
        with ServiceSupervisor(store, n_workers=2) as sup:
            shard = wait_for_running_shard(store, job_id)
            stopped = registry_pid(store, shard.lease.worker)
            os.kill(stopped, signal.SIGSTOP)
            sup.run_until_drained(timeout_s=240)
            job = client.status(job_id)
            assert job.state == JOB_DONE
            result = client.result(job_id)
            assert np.array_equal(result["matrix"], reference_matrix())
            # wake the zombie *while the store is live*: its pending
            # commit must be fenced off, not corrupt the done job
            os.kill(stopped, signal.SIGCONT)
            time.sleep(1.0)
            stopped = None
            final = client.status(job_id)
            assert final.state == JOB_DONE
            assert np.array_equal(
                client.result(job_id)["matrix"], result["matrix"]
            )
        hung_shard = [s for s in final.shards if s.failures]
        assert any(
            f["kind"] == "lease_expired"
            for s in hung_shard for f in s.failures
        )
    finally:
        if stopped is not None:  # don't leak a stopped process on fail
            os.kill(stopped, signal.SIGCONT)


def test_http_netlist_chaos_job_bit_identical(tmp_path):
    """The whole wire path under fire: a netlist-upload job submitted
    over HTTP to a subprocess-worker fleet whose worker is SIGKILLed
    mid-job still finishes with patterns bit-identical to the
    single-process flow on the same reconstructed design — and the
    ``/events`` NDJSON stream arrives strictly in order."""
    import io

    from repro.netlist.verilog import parse_verilog, write_verilog
    from repro.service import (
        HttpServerThread,
        HttpServiceClient,
        TenantFleet,
        TenantManager,
    )
    from repro.soc import derive_stage_plan, design_from_netlist

    design = build_turbo_eagle(scale="tiny", seed=2007)
    buf = io.StringIO()
    write_verilog(design.netlist, buf)
    verilog = buf.getvalue()

    tenants = TenantManager(
        str(tmp_path / "data"),
        default_config=ServiceConfig(lease_ttl_s=TTL),
    )
    fleet = TenantFleet(tenants, n_workers=1)
    with HttpServerThread(tenants, fleet=fleet) as srv:
        client = HttpServiceClient(srv.base_url, tenant="chaos")
        job_id = client.submit(
            netlist_verilog=verilog, chaos={"kill_shard": 1}
        )
        events = list(client.events(job_id, timeout_s=300))
        job = client.wait(job_id, timeout_s=300)
        assert job.state == JOB_DONE
        result = client.result(job_id)
        metrics = client.metrics()

    # the stream was strictly in order and ended terminal
    assert [e["seq"] for e in events] == list(range(len(events)))
    assert events[-1]["terminal"] is True
    assert events[-1]["state"] == JOB_DONE
    assert any(e["state"] == "running" for e in events)
    # the kill left its scar on exactly the shard it hit
    scars = [f for s in job.shards for f in s.failures]
    assert any(f["kind"] == "lease_expired" for f in scars)
    assert job.shards[1].attempts >= 1
    # bit-identical to the single-process flow on the same
    # netlist-reconstructed design and derived stage plan
    rebuilt = design_from_netlist(parse_verilog(io.StringIO(verilog)))
    ref, _ = run_noise_tolerant_flow(
        rebuilt, seed=1, stage_plan=derive_stage_plan(rebuilt)
    )
    assert np.array_equal(result["matrix"], ref.pattern_set.as_matrix())
    # the exposition saw the whole story
    assert "repro_http_requests_total" in metrics
    assert 'repro_service_tenant_queue_depth{tenant="chaos"}' in metrics


def test_worker_killing_shard_is_quarantined_dead(tmp_path):
    """A shard that SIGKILLs every worker that claims it burns its
    attempt budget and the job ends ``dead`` — with the failure log on
    disk — instead of respawn-retrying forever."""
    from repro.reporting import RunReport

    store = make_store(tmp_path, max_shard_attempts=2)
    client = ServiceClient(store)
    job_id = client.submit(
        JobSpec(scale="tiny",
                chaos={"kill_shard": 1, "kill_attempts": 10 ** 9})
    )
    with ServiceSupervisor(store, n_workers=1) as sup:
        sup.run_until_drained(timeout_s=240)
    job = client.status(job_id)
    assert job.state == JOB_DEAD
    assert job.shards[0].state == "done"      # the healthy shard kept
    assert job.shards[1].state == "dead"      # the poison one contained
    assert job.shards[1].attempts == 2
    assert "quarantined" in job.error
    # never claimable again
    assert store.claim("post-mortem") is None
    # and the RunReport failure log survived the carnage
    report = RunReport.load(store.report_path(job_id))
    assert report.status == "failed"
    assert len(report.failures) == 2
    assert all(f["kind"] == "lease_expired" for f in report.failures)
