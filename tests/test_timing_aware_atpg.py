"""Tests for timing-aware (long-path-preferring) test generation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.atpg import (
    AtpgEngine,
    TransitionFaultDiagnoser,
    build_fault_universe,
    collapse_faults,
)
from repro.atpg.fill import apply_fill
from repro.atpg.podem import generate_test
from repro.atpg.twoframe import TwoFrameState
from repro.power import ScapCalculator
from repro.sim import DelayModel
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def env():
    design = build_turbo_eagle("tiny", seed=7)
    dm = DelayModel(design.netlist, design.parasitics)
    return design, dm


class TestTimingAware:
    def test_engine_flag_wires_arrivals(self, env):
        design, dm = env
        engine = AtpgEngine(design.netlist, "clka", scan=design.scan,
                            timing_aware=True, delays=dm)
        assert engine.state.arrival is not None
        assert len(engine.state.arrival) == design.netlist.n_nets

    def test_coverage_maintained(self, env):
        design, dm = env
        plain = AtpgEngine(design.netlist, "clka", scan=design.scan,
                           seed=3).run(fill="0")
        aware = AtpgEngine(design.netlist, "clka", scan=design.scan,
                           seed=3, timing_aware=True, delays=dm
                           ).run(fill="0")
        assert abs(plain.test_coverage - aware.test_coverage) < 0.05

    def _detect_arrivals(self, design, dm, timing_aware, sample):
        calc = ScapCalculator(design, "clka")
        diag = TransitionFaultDiagnoser(design.netlist, "clka")
        state = TwoFrameState(design.netlist, "clka")
        if timing_aware:
            state.arrival = dm.static_arrivals_ns()
        arrivals = []
        for fault in sample:
            result = generate_test(state, fault, max_backtracks=80)
            if not result.success:
                continue
            v1 = apply_fill(result.cube, design.netlist.n_flops, "0")
            per_flop = diag._per_flop_detection(v1[None, :], fault)
            if not per_flop:
                continue
            timing = calc.simulate_pattern(
                {fi: int(v1[fi]) for fi in range(len(v1))}
            )
            best = 0.0
            for fi in per_flop:
                a = float(timing.last_arrival_ns[design.netlist.flops[fi].d])
                if not math.isnan(a):
                    best = max(best, a)
            if best > 0:
                arrivals.append(best)
        return arrivals

    def test_longer_detection_paths_on_average(self, env):
        """The long-path frontier steering must not shorten — and
        should slightly lengthen — the sensitized detection paths."""
        design, dm = env
        reps, _ = collapse_faults(
            design.netlist, build_fault_universe(design.netlist)
        )
        rng = np.random.default_rng(0)
        sample = [reps[int(i)] for i in rng.permutation(len(reps))[:50]]
        plain = self._detect_arrivals(design, dm, False, sample)
        aware = self._detect_arrivals(design, dm, True, sample)
        assert plain and aware
        assert np.mean(aware) >= np.mean(plain) - 0.05
