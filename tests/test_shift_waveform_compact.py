"""Tests for shift simulation, power waveforms and set compaction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg import (
    AtpgEngine,
    FaultSimulator,
    build_fault_universe,
    collapse_faults,
    coverage_of_set,
    reverse_order_compaction,
)
from repro.dft import shift_activity_summary, simulate_shift_in
from repro.errors import ScanError, SimulationError
from repro.power import ScapCalculator, power_waveform, render_waveform_ascii
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=21)


@pytest.fixture(scope="module")
def patterns(design):
    engine = AtpgEngine(design.netlist, "clka", scan=design.scan, seed=2)
    return engine.run(fill="random").pattern_set


class TestShift:
    def test_shift_lands_pattern(self, design):
        rng = np.random.default_rng(0)
        v1 = rng.integers(0, 2, size=design.netlist.n_flops,
                          dtype=np.uint8)
        activity = simulate_shift_in(v1, design.scan)
        # The model self-checks landing; here we check the statistics.
        assert activity.n_cycles == max(
            c.length for c in design.scan.chains
        )
        assert activity.total_transitions >= 0
        assert activity.transitions_per_cycle.shape == (activity.n_cycles,)

    def test_all_zero_shift_is_silent_from_reset(self, design):
        v1 = np.zeros(design.netlist.n_flops, dtype=np.uint8)
        activity = simulate_shift_in(v1, design.scan)
        assert activity.total_transitions == 0

    def test_alternating_pattern_is_noisiest(self, design):
        n = design.netlist.n_flops
        checker = np.zeros(n, dtype=np.uint8)
        for chain in design.scan.chains:
            for pos, fi in enumerate(chain.flops):
                checker[fi] = pos % 2
        solid = np.ones(n, dtype=np.uint8)
        act_checker = simulate_shift_in(checker, design.scan)
        act_solid = simulate_shift_in(solid, design.scan)
        assert act_checker.total_transitions > act_solid.total_transitions

    def test_bad_initial_state(self, design):
        v1 = np.zeros(design.netlist.n_flops, dtype=np.uint8)
        with pytest.raises(ScanError):
            simulate_shift_in(v1, design.scan, initial_state=np.zeros(3))

    def test_adjacent_fill_reduces_shift_activity(self, design):
        """The documented purpose of fill-adjacent."""
        summaries = {}
        for fill in ("random", "adjacent"):
            engine = AtpgEngine(design.netlist, "clka", scan=design.scan,
                                seed=2)
            res = engine.run(fill=fill, max_patterns=20)
            summaries[fill] = shift_activity_summary(
                res.pattern_set, design.scan
            )
        assert (
            summaries["adjacent"]["mean_total"]
            < summaries["random"]["mean_total"]
        )


class TestPowerWaveform:
    @pytest.fixture(scope="class")
    def traced(self, design):
        calc = ScapCalculator(design, "clka")
        rng = np.random.default_rng(5)
        v1 = {fi: int(rng.integers(2))
              for fi in range(design.netlist.n_flops)}
        return design, calc.simulate_pattern(v1, record_trace=True)

    def test_needs_trace(self, design):
        calc = ScapCalculator(design, "clka")
        result = calc.simulate_pattern(
            {fi: 0 for fi in range(design.netlist.n_flops)}
        )
        with pytest.raises(SimulationError):
            power_waveform(design.netlist, design.parasitics, result)

    def test_energy_conserved(self, traced):
        design, result = traced
        wf = power_waveform(design.netlist, design.parasitics, result,
                            n_bins=32)
        # Integrating the waveform returns the total switched energy.
        total_fj = (wf.power_mw * 1e3 * wf.bin_width_ns).sum()
        assert total_fj == pytest.approx(result.energy_fj_total, rel=1e-9)

    def test_peak_exceeds_average(self, traced):
        design, result = traced
        wf = power_waveform(design.netlist, design.parasitics, result)
        assert wf.peak_power_mw >= wf.average_power_mw
        assert 0 <= wf.peak_time_ns <= wf.bin_edges_ns[-1]

    def test_peak_in_early_window(self, traced):
        """Switching concentrates early in the cycle (the STW story)."""
        design, result = traced
        wf = power_waveform(design.netlist, design.parasitics, result,
                            n_bins=20)
        assert wf.peak_time_ns < result.capture_time_ns / 2.0

    def test_block_split_bounded_by_total(self, traced):
        design, result = traced
        wf = power_waveform(design.netlist, design.parasitics, result)
        stacked = sum(wf.power_mw_by_block.values())
        assert (stacked <= wf.power_mw + 1e-9).all()

    def test_csv_and_ascii(self, traced):
        design, result = traced
        wf = power_waveform(design.netlist, design.parasitics, result,
                            n_bins=10)
        assert wf.to_csv().startswith("t_ns,power_mw")
        art = render_waveform_ascii(wf, title="wave")
        assert "#" in art


class TestCompaction:
    def test_compaction_preserves_coverage(self, design, patterns):
        fsim = FaultSimulator(design.netlist, "clka")
        reps, _ = collapse_faults(
            design.netlist, build_fault_universe(design.netlist)
        )
        before = coverage_of_set(fsim, patterns, reps)
        compacted, stats = reverse_order_compaction(fsim, patterns, reps)
        after = coverage_of_set(fsim, compacted, reps)
        assert after == before
        assert stats["kept"] == len(compacted)
        assert stats["kept"] + stats["dropped"] == len(patterns)
        assert len(compacted) <= len(patterns)

    def test_compaction_reindexes(self, design, patterns):
        fsim = FaultSimulator(design.netlist, "clka")
        reps, _ = collapse_faults(
            design.netlist, build_fault_universe(design.netlist)
        )
        compacted, _stats = reverse_order_compaction(fsim, patterns, reps)
        assert [p.index for p in compacted] == list(range(len(compacted)))

    def test_empty_set(self, design):
        from repro.atpg.patterns import PatternSet

        fsim = FaultSimulator(design.netlist, "clka")
        compacted, stats = reverse_order_compaction(
            fsim, PatternSet("clka"), []
        )
        assert len(compacted) == 0
        assert stats["dropped"] == 0

    def test_redundant_duplicates_dropped(self, design, patterns):
        """Appending a copy of the whole set drops at least that many."""
        from repro.atpg.patterns import Pattern, PatternSet

        fsim = FaultSimulator(design.netlist, "clka")
        reps, _ = collapse_faults(
            design.netlist, build_fault_universe(design.netlist)
        )
        doubled = PatternSet(patterns.domain, fill=patterns.fill)
        for i, p in enumerate(list(patterns) + list(patterns)):
            doubled.append(Pattern(i, p.v1, p.care, p.domain, p.fill))
        compacted, stats = reverse_order_compaction(fsim, doubled, reps)
        assert stats["dropped"] >= len(patterns)
