"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_floorplan(self, capsys):
        assert main(["floorplan", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "5" in out and "+" in out

    def test_table1(self, capsys):
        assert main(["table", "1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "clock_domains" in out
        assert "transition_delay_faults" in out

    def test_table2(self, capsys):
        assert main(["table", "2", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "clka" in out

    def test_atpg_writes_stil(self, tmp_path, capsys):
        out_file = tmp_path / "pats.stil"
        assert main([
            "atpg", "--scale", "tiny", "--fill", "0",
            "--output", str(out_file),
        ]) == 0
        text = out_file.read_text()
        assert text.startswith("STIL 1.0;")
        assert "Pattern 0 {" in text
        printed = capsys.readouterr().out
        assert "patterns" in printed

    def test_atpg_los_protocol(self, capsys):
        assert main(["atpg", "--scale", "tiny", "--protocol", "los"]) == 0
        assert "coverage" in capsys.readouterr().out

    def test_scap_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "pats.stil"
        main(["atpg", "--scale", "tiny", "--fill", "0",
              "--output", str(out_file)])
        capsys.readouterr()
        code = main(["scap", str(out_file), "--scale", "tiny"])
        out = capsys.readouterr().out
        assert "patterns exceed" in out
        assert code in (0, 1)  # 1 when violations exist

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["transmogrify"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["floorplan", "--scale", "huge"])


class TestFlowCli:
    def test_flow_stop_resume_and_report(self, tmp_path, capsys):
        import json

        ck = str(tmp_path / "ck")
        report1 = tmp_path / "partial.json"
        assert main([
            "flow", "--scale", "tiny", "--stop-after", "1",
            "--checkpoint", ck, "--report", str(report1),
        ]) == 0
        out = capsys.readouterr().out
        assert "flow status: partial" in out
        data = json.loads(report1.read_text())
        assert data["status"] == "partial"
        assert data["completed_stages"] and data["pending_stages"]

        report2 = tmp_path / "full.json"
        assert main([
            "flow", "--scale", "tiny",
            "--checkpoint", ck, "--report", str(report2),
        ]) == 0
        out = capsys.readouterr().out
        assert "flow status: completed" in out
        assert "(from checkpoint)" in out
        data = json.loads(report2.read_text())
        assert data["status"] == "completed"
        assert data["resumed_stages"]  # stage 0 came from the checkpoint
        assert not data["pending_stages"]

    def test_flow_no_resume_recomputes(self, tmp_path, capsys):
        ck = str(tmp_path / "ck")
        assert main(["flow", "--scale", "tiny", "--checkpoint", ck]) == 0
        capsys.readouterr()
        assert main([
            "flow", "--scale", "tiny", "--checkpoint", ck, "--no-resume",
        ]) == 0
        out = capsys.readouterr().out
        assert "(from checkpoint)" not in out
