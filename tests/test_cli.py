"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_floorplan(self, capsys):
        assert main(["floorplan", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "5" in out and "+" in out

    def test_table1(self, capsys):
        assert main(["table", "1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "clock_domains" in out
        assert "transition_delay_faults" in out

    def test_table2(self, capsys):
        assert main(["table", "2", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "clka" in out

    def test_atpg_writes_stil(self, tmp_path, capsys):
        out_file = tmp_path / "pats.stil"
        assert main([
            "atpg", "--scale", "tiny", "--fill", "0",
            "--output", str(out_file),
        ]) == 0
        text = out_file.read_text()
        assert text.startswith("STIL 1.0;")
        assert "Pattern 0 {" in text
        printed = capsys.readouterr().out
        assert "patterns" in printed

    def test_atpg_los_protocol(self, capsys):
        assert main(["atpg", "--scale", "tiny", "--protocol", "los"]) == 0
        assert "coverage" in capsys.readouterr().out

    def test_scap_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "pats.stil"
        main(["atpg", "--scale", "tiny", "--fill", "0",
              "--output", str(out_file)])
        capsys.readouterr()
        code = main(["scap", str(out_file), "--scale", "tiny"])
        out = capsys.readouterr().out
        assert "patterns exceed" in out
        assert code in (0, 1)  # 1 when violations exist

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["transmogrify"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["floorplan", "--scale", "huge"])


class TestFlowCli:
    def test_flow_stop_resume_and_report(self, tmp_path, capsys):
        import json

        ck = str(tmp_path / "ck")
        report1 = tmp_path / "partial.json"
        assert main([
            "flow", "--scale", "tiny", "--stop-after", "1",
            "--checkpoint", ck, "--report", str(report1),
        ]) == 0
        out = capsys.readouterr().out
        assert "flow status: partial" in out
        data = json.loads(report1.read_text())
        assert data["status"] == "partial"
        assert data["completed_stages"] and data["pending_stages"]

        report2 = tmp_path / "full.json"
        assert main([
            "flow", "--scale", "tiny",
            "--checkpoint", ck, "--report", str(report2),
        ]) == 0
        out = capsys.readouterr().out
        assert "flow status: completed" in out
        assert "(from checkpoint)" in out
        data = json.loads(report2.read_text())
        assert data["status"] == "completed"
        assert data["resumed_stages"]  # stage 0 came from the checkpoint
        assert not data["pending_stages"]

    def test_flow_no_resume_recomputes(self, tmp_path, capsys):
        ck = str(tmp_path / "ck")
        assert main(["flow", "--scale", "tiny", "--checkpoint", ck]) == 0
        capsys.readouterr()
        assert main([
            "flow", "--scale", "tiny", "--checkpoint", ck, "--no-resume",
        ]) == 0
        out = capsys.readouterr().out
        assert "(from checkpoint)" not in out


CORRUPT_VERILOG = """\
module corrupt (
    a,
    clk_clka,
    clk_clkb,
    y
);
  input a;
  input clk_clka;
  input clk_clkb;
  output y;
  wire l1;
  wire l2;
  wire d0;
  wire q0;
  wire d1;
  wire q1;
  wire cont;
  INVX1 u_loop1 (.A(l2), .Y(l1));
  INVX1 u_loop2 (.A(l1), .Y(l2));
  AND2X1 u_cont1 (.A(a), .B(q0), .Y(cont));
  AND2X1 u_cont2 (.A(a), .B(q1), .Y(cont));
  INVX1 u_d0 (.A(q1), .Y(d0));
  INVX1 u_d1 (.A(q0), .Y(d1));
  INVX1 u_y (.A(cont), .Y(y));
  SDFFX1 f0 (.D(d0), .Q(q0), .CK(clk_clka));  // pragma edge=pos scan=1 chain=0:0
  SDFFX1 f1 (.D(d1), .Q(q1), .CK(clk_clkb));  // pragma edge=pos scan=1 chain=0:0
endmodule
"""


class TestDrcCli:
    def test_generated_design_is_clean(self, capsys):
        assert main(["drc", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_corrupted_netlist_reports_all_injected_defects(
        self, tmp_path, capsys
    ):
        """The acceptance scenario: a netlist with an injected loop,
        broken chain, clock-domain crossing and bus contention must
        report each with its rule id, and exit non-zero."""
        path = tmp_path / "corrupt.v"
        path.write_text(CORRUPT_VERILOG)
        json_path = tmp_path / "report.json"
        code = main([
            "drc", "--netlist", str(path), "--json", str(json_path),
        ])
        assert code == 2
        out = capsys.readouterr().out
        for rule_id in ("STR-LOOP", "SCN-CHAIN", "CLK-CDC", "STR-DRIVE"):
            assert rule_id in out, f"{rule_id} missing from report"
        data = json.loads(json_path.read_text())
        hit = {v["rule_id"] for v in data["violations"]}
        assert {"STR-LOOP", "SCN-CHAIN", "CLK-CDC", "STR-DRIVE"} <= hit

    def test_waivers_excuse_errors(self, tmp_path, capsys):
        path = tmp_path / "corrupt.v"
        path.write_text(CORRUPT_VERILOG)
        waivers = tmp_path / "waivers.json"
        waivers.write_text(json.dumps({"waivers": [
            {"rule": "STR-*", "reason": "bring-up"},
            {"rule": "SCN-*", "reason": "bring-up"},
        ]}))
        code = main([
            "drc", "--netlist", str(path), "--waivers", str(waivers),
        ])
        assert code == 0
        assert "(waived)" in capsys.readouterr().out

    def test_fail_on_warn_trips_on_clean_design(self, capsys):
        # the generated tiny SOC is ERROR-clean but carries WARN
        # findings (CDC, lockup advisories): --fail-on warn must trip
        assert main(["drc", "--scale", "tiny", "--fail-on", "warn"]) == 2
        assert "FAIL" in capsys.readouterr().err


class TestVersionAndLogging:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        from repro.cli import package_version

        assert out.strip() == f"repro {package_version()}"
        assert package_version()  # non-empty whichever source it came from

    def test_module_and_script_share_main(self):
        from repro import cli
        from repro import __main__ as module_entry

        assert module_entry.main is cli.main

    def test_every_subcommand_takes_log_level(self, capsys):
        assert main([
            "floorplan", "--scale", "tiny", "--log-level", "debug",
        ]) == 0
        capsys.readouterr()
        assert main([
            "table", "1", "--scale", "tiny", "--log-level", "error",
        ]) == 0
        capsys.readouterr()

    def test_bad_log_level_rejected(self):
        with pytest.raises(SystemExit):
            main(["floorplan", "--log-level", "loud"])

    def test_flow_log_level_emits_run_id_lines(self, tmp_path, capsys):
        import io
        import re

        from repro.obs import setup_logging

        stream = io.StringIO()
        setup_logging("info", stream=stream)  # redirect the shared handler
        assert main([
            "flow", "--scale", "tiny", "--max-patterns", "8",
            "--log-level", "info",
            "--trace", str(tmp_path / "t.jsonl"),  # enables real telemetry
        ]) == 0
        logged = stream.getvalue()
        assert "flow start" in logged and "flow completed" in logged
        # with telemetry enabled the lines carry the run's id, not "-"
        assert re.search(r"run=[0-9a-f]+-\d+ flow start", logged)


class TestObsCli:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        """One telemetry-instrumented flow run shared by every test."""
        tmp = tmp_path_factory.mktemp("obs_cli")
        paths = {
            "trace": str(tmp / "trace.jsonl"),
            "chrome": str(tmp / "trace.chrome.json"),
            "metrics": str(tmp / "metrics.prom"),
            "metrics_json": str(tmp / "metrics.json"),
            "report": str(tmp / "report.json"),
            "tmp": tmp,
        }
        code = main([
            "flow", "--scale", "tiny", "--max-patterns", "10",
            "--trace", paths["trace"],
            "--chrome", paths["chrome"],
            "--metrics", paths["metrics"],
            "--metrics-json", paths["metrics_json"],
            "--report", paths["report"],
            "--profile",
        ])
        assert code == 0
        return paths

    def test_flow_writes_all_artifacts(self, artifacts, capsys):
        import os

        for key in ("trace", "chrome", "metrics", "metrics_json", "report"):
            assert os.path.exists(artifacts[key]), key

    def test_trace_is_well_nested_jsonl(self, artifacts):
        from repro.obs import load_trace_jsonl, nesting_errors

        events = load_trace_jsonl(artifacts["trace"])
        assert events
        assert {"flow.run", "atpg.stage"} <= {e["name"] for e in events}
        assert not nesting_errors(events)

    def test_prometheus_exposition_format(self, artifacts):
        text = open(artifacts["metrics"]).read()
        assert "# TYPE repro_atpg_patterns_generated_total counter" in text
        metrics = json.loads(open(artifacts["metrics_json"]).read())
        assert "atpg.patterns_generated" in metrics

    def test_report_embeds_telemetry_digest(self, artifacts):
        data = json.loads(open(artifacts["report"]).read())
        assert data["telemetry"]["metrics"]
        assert data["telemetry"]["hotspots"]  # --profile was on

    def test_flow_report_prints_stage_wall_times(self, artifacts, capsys):
        assert main(["flow", "--scale", "tiny", "--max-patterns", "10",
                     "--report", str(artifacts["tmp"] / "r2.json")]) == 0
        out = capsys.readouterr().out
        assert "stage wall times:" in out
        assert "elapsed_s" in out

    def test_obs_summary(self, artifacts, capsys):
        assert main(["obs", "summary", artifacts["trace"]]) == 0
        out = capsys.readouterr().out
        assert "flow.run" in out and "count" in out

    def test_obs_check_clean(self, artifacts, capsys):
        assert main(["obs", "check", artifacts["trace"]]) == 0
        assert "well-nested" in capsys.readouterr().out

    def test_obs_check_flags_orphans(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({
            "name": "x", "span_id": "s1", "parent_id": "gone",
            "ts_s": 1.0, "dur_s": 0.5, "pid": 1, "attrs": {},
        }) + "\n")
        assert main(["obs", "check", str(bad)]) == 2
        assert "missing parent" in capsys.readouterr().err

    def test_obs_chrome_conversion(self, artifacts, capsys):
        out_path = str(artifacts["tmp"] / "converted.chrome.json")
        assert main([
            "obs", "chrome", artifacts["trace"], "-o", out_path,
        ]) == 0
        doc = json.loads(open(out_path).read())
        assert doc["traceEvents"]
        assert all(e["ph"] == "X" for e in doc["traceEvents"])

    def test_obs_report_digest(self, artifacts, capsys):
        assert main(["obs", "report", artifacts["report"]]) == 0
        out = capsys.readouterr().out
        assert "run id:" in out
        assert "atpg.patterns_generated" in out
