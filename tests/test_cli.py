"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_floorplan(self, capsys):
        assert main(["floorplan", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "5" in out and "+" in out

    def test_table1(self, capsys):
        assert main(["table", "1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "clock_domains" in out
        assert "transition_delay_faults" in out

    def test_table2(self, capsys):
        assert main(["table", "2", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "clka" in out

    def test_atpg_writes_stil(self, tmp_path, capsys):
        out_file = tmp_path / "pats.stil"
        assert main([
            "atpg", "--scale", "tiny", "--fill", "0",
            "--output", str(out_file),
        ]) == 0
        text = out_file.read_text()
        assert text.startswith("STIL 1.0;")
        assert "Pattern 0 {" in text
        printed = capsys.readouterr().out
        assert "patterns" in printed

    def test_atpg_los_protocol(self, capsys):
        assert main(["atpg", "--scale", "tiny", "--protocol", "los"]) == 0
        assert "coverage" in capsys.readouterr().out

    def test_scap_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "pats.stil"
        main(["atpg", "--scale", "tiny", "--fill", "0",
              "--output", str(out_file)])
        capsys.readouterr()
        code = main(["scap", str(out_file), "--scale", "tiny"])
        out = capsys.readouterr().out
        assert "patterns exceed" in out
        assert code in (0, 1)  # 1 when violations exist

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["transmogrify"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["floorplan", "--scale", "huge"])


class TestFlowCli:
    def test_flow_stop_resume_and_report(self, tmp_path, capsys):
        import json

        ck = str(tmp_path / "ck")
        report1 = tmp_path / "partial.json"
        assert main([
            "flow", "--scale", "tiny", "--stop-after", "1",
            "--checkpoint", ck, "--report", str(report1),
        ]) == 0
        out = capsys.readouterr().out
        assert "flow status: partial" in out
        data = json.loads(report1.read_text())
        assert data["status"] == "partial"
        assert data["completed_stages"] and data["pending_stages"]

        report2 = tmp_path / "full.json"
        assert main([
            "flow", "--scale", "tiny",
            "--checkpoint", ck, "--report", str(report2),
        ]) == 0
        out = capsys.readouterr().out
        assert "flow status: completed" in out
        assert "(from checkpoint)" in out
        data = json.loads(report2.read_text())
        assert data["status"] == "completed"
        assert data["resumed_stages"]  # stage 0 came from the checkpoint
        assert not data["pending_stages"]

    def test_flow_no_resume_recomputes(self, tmp_path, capsys):
        ck = str(tmp_path / "ck")
        assert main(["flow", "--scale", "tiny", "--checkpoint", ck]) == 0
        capsys.readouterr()
        assert main([
            "flow", "--scale", "tiny", "--checkpoint", ck, "--no-resume",
        ]) == 0
        out = capsys.readouterr().out
        assert "(from checkpoint)" not in out


CORRUPT_VERILOG = """\
module corrupt (
    a,
    clk_clka,
    clk_clkb,
    y
);
  input a;
  input clk_clka;
  input clk_clkb;
  output y;
  wire l1;
  wire l2;
  wire d0;
  wire q0;
  wire d1;
  wire q1;
  wire cont;
  INVX1 u_loop1 (.A(l2), .Y(l1));
  INVX1 u_loop2 (.A(l1), .Y(l2));
  AND2X1 u_cont1 (.A(a), .B(q0), .Y(cont));
  AND2X1 u_cont2 (.A(a), .B(q1), .Y(cont));
  INVX1 u_d0 (.A(q1), .Y(d0));
  INVX1 u_d1 (.A(q0), .Y(d1));
  INVX1 u_y (.A(cont), .Y(y));
  SDFFX1 f0 (.D(d0), .Q(q0), .CK(clk_clka));  // pragma edge=pos scan=1 chain=0:0
  SDFFX1 f1 (.D(d1), .Q(q1), .CK(clk_clkb));  // pragma edge=pos scan=1 chain=0:0
endmodule
"""


class TestDrcCli:
    def test_generated_design_is_clean(self, capsys):
        assert main(["drc", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_corrupted_netlist_reports_all_injected_defects(
        self, tmp_path, capsys
    ):
        """The acceptance scenario: a netlist with an injected loop,
        broken chain, clock-domain crossing and bus contention must
        report each with its rule id, and exit non-zero."""
        path = tmp_path / "corrupt.v"
        path.write_text(CORRUPT_VERILOG)
        json_path = tmp_path / "report.json"
        code = main([
            "drc", "--netlist", str(path), "--json", str(json_path),
        ])
        assert code == 2
        out = capsys.readouterr().out
        for rule_id in ("STR-LOOP", "SCN-CHAIN", "CLK-CDC", "STR-DRIVE"):
            assert rule_id in out, f"{rule_id} missing from report"
        data = json.loads(json_path.read_text())
        hit = {v["rule_id"] for v in data["violations"]}
        assert {"STR-LOOP", "SCN-CHAIN", "CLK-CDC", "STR-DRIVE"} <= hit

    def test_waivers_excuse_errors(self, tmp_path, capsys):
        path = tmp_path / "corrupt.v"
        path.write_text(CORRUPT_VERILOG)
        waivers = tmp_path / "waivers.json"
        waivers.write_text(json.dumps({"waivers": [
            {"rule": "STR-*", "reason": "bring-up"},
            {"rule": "SCN-*", "reason": "bring-up"},
        ]}))
        code = main([
            "drc", "--netlist", str(path), "--waivers", str(waivers),
        ])
        assert code == 0
        assert "(waived)" in capsys.readouterr().out

    def test_fail_on_warn_trips_on_clean_design(self, capsys):
        # the generated tiny SOC is ERROR-clean but carries WARN
        # findings (CDC, lockup advisories): --fail-on warn must trip
        assert main(["drc", "--scale", "tiny", "--fail-on", "warn"]) == 2
        assert "FAIL" in capsys.readouterr().err
