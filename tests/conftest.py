"""Shared fixtures: small hand-built circuits used across the test suite."""

from __future__ import annotations

import pytest

from repro.netlist import Netlist


@pytest.fixture(autouse=True, scope="session")
def _isolated_kernel_cache(tmp_path_factory):
    """Point the persistent kernel cache at a throwaway directory.

    Tests must never read from or write into the developer's real
    ``~/.cache/repro/kernels`` — a stale entry there could mask a codegen
    bug, and test runs should not pollute it.
    """
    import os

    root = tmp_path_factory.mktemp("kernel-cache")
    old = os.environ.get("REPRO_KERNEL_CACHE_DIR")
    os.environ["REPRO_KERNEL_CACHE_DIR"] = str(root)
    # Any ambient default cache resolved before this fixture ran would
    # keep the old root; reset the lazy slot so it re-resolves.
    from repro.perf import kernel_cache as kc

    kc._cache_stack[0] = kc._UNSET
    yield
    if old is None:
        os.environ.pop("REPRO_KERNEL_CACHE_DIR", None)
    else:
        os.environ["REPRO_KERNEL_CACHE_DIR"] = old
    kc._cache_stack[0] = kc._UNSET


@pytest.fixture
def tiny_comb() -> Netlist:
    """Pure combinational circuit: y = ~(a & b) ^ c.

    Nets: a, b, c are primary inputs; y is a primary output.
    """
    nl = Netlist("tiny_comb")
    a = nl.add_net("a")
    b = nl.add_net("b")
    c = nl.add_net("c")
    n1 = nl.add_net("n1")
    y = nl.add_net("y")
    nl.add_primary_input(a)
    nl.add_primary_input(b)
    nl.add_primary_input(c)
    nl.add_gate("u_nand", "NAND2X1", [a, b], n1)
    nl.add_gate("u_xor", "XOR2X1", [n1, c], y)
    nl.add_primary_output(y)
    return nl


@pytest.fixture
def tiny_seq() -> Netlist:
    """Two scan flops around an inverter ring segment.

    f0.q -> inv -> f1.d ; f1.q -> and(f1.q, f0.q) -> f0.d
    """
    nl = Netlist("tiny_seq")
    q0 = nl.add_net("q0")
    q1 = nl.add_net("q1")
    d0 = nl.add_net("d0")
    d1 = nl.add_net("d1")
    nl.add_gate("u_inv", "INVX1", [q0], d1, pos=(10.0, 10.0))
    nl.add_gate("u_and", "AND2X1", [q1, q0], d0, pos=(20.0, 10.0))
    nl.add_flop("f0", "SDFFX1", d=d0, q=q0, clock_domain="clka",
                is_scan=True, pos=(5.0, 5.0))
    nl.add_flop("f1", "SDFFX1", d=d1, q=q1, clock_domain="clka",
                is_scan=True, pos=(25.0, 5.0))
    return nl
