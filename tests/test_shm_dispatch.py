"""Zero-copy shm transport and the work-size-aware dispatcher.

The transport is only a win if it is *safe*: segments must never
outlive the run (even when a worker is SIGKILLed mid-chunk) and the
unpacked matrix must be bit-identical to what the parent packed.  The
dispatcher is only trustworthy if its decisions are a pure function of
(policy, work size, usable cores).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg.faults import build_fault_universe, collapse_faults
from repro.atpg.fsim import FaultSimulator
from repro.errors import AtpgError, ConfigError
from repro.obs import Telemetry, use_telemetry
from repro.perf import chaos
from repro.perf.dispatch import (
    DispatchPolicy,
    current_dispatch,
    decide_fsim,
    decide_scap,
    dispatch_policy,
    usable_cpus,
    wants_auto,
)
from repro.perf.resilient import RetryPolicy
from repro.perf.shm import (
    SharedPatternMatrix,
    ShmHandle,
    active_segments,
    resolve_matrix,
    shared_matrix,
    shm_available,
)
from repro.power.calculator import ScapCalculator
from repro.soc import build_turbo_eagle

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unsupported here"
)


# ----------------------------------------------------------------------
# shared memory transport
# ----------------------------------------------------------------------
class TestSharedPatternMatrix:
    @pytest.mark.parametrize(
        "shape", [(1, 1), (3, 8), (5, 7), (64, 129), (150, 40)]
    )
    def test_round_trip_bit_identical(self, shape):
        rng = np.random.default_rng(7)
        matrix = rng.integers(0, 2, size=shape, dtype=np.uint8)
        seg = SharedPatternMatrix.create(matrix)
        try:
            other = SharedPatternMatrix.attach(seg.handle)
            np.testing.assert_array_equal(other.matrix(), matrix)
            other.close()
        finally:
            seg.unlink()
        assert active_segments() == []

    def test_packing_is_eight_to_one(self):
        matrix = np.ones((4, 800), dtype=np.uint8)
        seg = SharedPatternMatrix.create(matrix)
        try:
            assert seg._shm.size < matrix.nbytes // 4
        finally:
            seg.unlink()

    def test_empty_matrix(self):
        matrix = np.zeros((0, 16), dtype=np.uint8)
        seg = SharedPatternMatrix.create(matrix)
        try:
            assert seg.matrix().shape == (0, 16)
        finally:
            seg.unlink()

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            SharedPatternMatrix.create(np.zeros(8, dtype=np.uint8))

    def test_unlink_is_idempotent_and_owner_only(self):
        matrix = np.ones((2, 9), dtype=np.uint8)
        seg = SharedPatternMatrix.create(matrix)
        worker = SharedPatternMatrix.attach(seg.handle)
        worker.unlink()  # non-owner: must be a no-op
        assert active_segments() == [seg.handle.name]
        worker.close()
        seg.unlink()
        seg.unlink()  # second unlink: no error
        assert active_segments() == []

    def test_context_manager_unlinks_on_exception(self):
        matrix = np.ones((2, 9), dtype=np.uint8)
        with pytest.raises(RuntimeError):
            with shared_matrix(matrix):
                assert len(active_segments()) == 1
                raise RuntimeError("boom")
        assert active_segments() == []

    def test_context_manager_none_passthrough(self):
        with shared_matrix(None) as handle:
            assert handle is None
        assert active_segments() == []

    def test_resolve_matrix_both_transports(self):
        matrix = np.eye(6, dtype=np.uint8)
        assert resolve_matrix(None) is None
        np.testing.assert_array_equal(resolve_matrix(matrix), matrix)
        with shared_matrix(matrix) as handle:
            assert isinstance(handle, ShmHandle)
            got = resolve_matrix(handle)
            np.testing.assert_array_equal(got, matrix)
            # the resolved matrix is a private copy, usable after unlink
        np.testing.assert_array_equal(got, matrix)

    def test_telemetry_counters(self):
        tel = Telemetry(tracing=False)
        matrix = np.ones((3, 5), dtype=np.uint8)
        with use_telemetry(tel):
            with shared_matrix(matrix) as handle:
                SharedPatternMatrix.attach(handle).close()
        counters = {
            name: tel.metrics.counter(name).value()
            for name in ("shm.created", "shm.attached", "shm.unlinked")
        }
        assert counters == {
            "shm.created": 1, "shm.attached": 1, "shm.unlinked": 1,
        }


class TestNoLeakedSegments:
    """Satellite contract: no segment outlives a run — even a chaotic one."""

    @pytest.fixture(scope="class")
    def graded(self):
        design = build_turbo_eagle("tiny", seed=2007)
        domain = design.dominant_domain()
        nl = design.netlist
        reps, _ = collapse_faults(nl, build_fault_universe(nl))
        rng = np.random.default_rng(13)
        matrix = rng.integers(0, 2, size=(128, nl.n_flops), dtype=np.int8)
        ref = FaultSimulator(nl, domain, kernel_cache=None).run_batch(
            matrix, reps
        )
        return design, domain, list(reps), matrix, ref

    def test_clean_run_leaves_nothing(self, graded):
        design, domain, reps, matrix, ref = graded
        sim = FaultSimulator(design.netlist, domain, kernel_cache=None)
        got = sim.run_batch(matrix, reps, n_workers=2, transport="shm")
        assert got == ref
        assert active_segments() == []

    @pytest.mark.chaos
    def test_killed_worker_leaves_nothing(self, graded):
        # SIGKILL the worker on its first chunk; the retry machinery
        # rebuilds the pool, the new worker re-attaches the same
        # segment, and the parent's unlink still runs: bit-identical
        # result, zero leaked segments.
        design, domain, reps, matrix, ref = graded
        sim = FaultSimulator(design.netlist, domain, kernel_cache=None)
        fast = RetryPolicy(
            backoff_base_s=0.001, backoff_max_s=0.01, jitter=0.0
        )
        with chaos.inject(chaos.ChaosSpec(kill={0: (0,)})):
            got = sim.run_batch(
                matrix, reps, n_workers=2, transport="shm",
                exec_policy=fast,
            )
        assert got == ref
        assert active_segments() == []

    def test_scap_shm_leaves_nothing(self, graded):
        design, _domain, _reps, matrix, _ref = graded
        calc = ScapCalculator(design)
        serial = calc.profile_patterns(matrix[:24])
        pooled = calc.profile_patterns(
            matrix[:24], n_workers=2, transport="shm"
        )
        assert pooled == serial
        assert active_segments() == []


# ----------------------------------------------------------------------
# dispatcher
# ----------------------------------------------------------------------
class TestDispatchPolicy:
    def test_defaults_are_auto(self):
        policy = DispatchPolicy()
        assert policy.mode == "auto"
        assert policy.transport == "auto"

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            DispatchPolicy(mode="serialish")
        with pytest.raises(ConfigError):
            DispatchPolicy(transport="carrier-pigeon")

    def test_scoping_composes(self):
        base = current_dispatch()
        with dispatch_policy(mode="pool", n_workers=3) as outer:
            assert current_dispatch() is outer
            with dispatch_policy(transport="shm") as inner:
                assert inner.mode == "pool"  # inherited
                assert inner.transport == "shm"
            assert current_dispatch() is outer
        assert current_dispatch() is base

    def test_wants_auto(self):
        assert wants_auto("auto")
        assert not wants_auto(4)
        assert not wants_auto(None)
        assert not wants_auto(1)


class TestDecisions:
    def test_usable_cpus_positive(self):
        assert usable_cpus() >= 1

    def test_tiny_work_stays_batch(self):
        with dispatch_policy(n_workers=8):
            decision = decide_fsim(64, 10)
        assert decision.mode == "batch"
        assert decision.n_workers == 1

    def test_huge_work_goes_pool(self):
        with dispatch_policy(n_workers=8):
            decision = decide_fsim(10_000, 50_000)
        assert decision.mode == "pool"
        assert decision.n_workers > 1
        assert "overhead" in decision.reason

    def test_single_core_never_pools(self):
        with dispatch_policy(n_workers=1):
            decision = decide_fsim(10_000, 50_000)
        assert decision.mode == "batch"
        assert decision.reason == "single core"

    def test_forced_modes_win(self):
        with dispatch_policy(mode="batch", n_workers=8):
            assert decide_fsim(10_000, 50_000).mode == "batch"
        with dispatch_policy(mode="pool", n_workers=8):
            decision = decide_scap(4)
            assert decision.mode == "pool"
            assert decision.reason == "forced pool"

    def test_pool_capped_by_items(self):
        with dispatch_policy(mode="pool", n_workers=8):
            assert decide_scap(3).n_workers <= 3

    def test_scap_estimate_scales_with_patterns(self):
        with dispatch_policy(n_workers=8):
            small = decide_scap(4)
            large = decide_scap(100_000)
        assert small.est_serial_s < large.est_serial_s
        assert small.mode == "batch"
        assert large.mode == "pool"

    def test_shm_transport_needs_size(self):
        big = 1 << 22
        with dispatch_policy(mode="pool", n_workers=4):
            assert decide_fsim(10_000, 50_000, matrix_bytes=big).use_shm
            assert not decide_fsim(10_000, 50_000, matrix_bytes=64).use_shm
        with dispatch_policy(mode="pool", n_workers=4, transport="inherit"):
            assert not decide_fsim(
                10_000, 50_000, matrix_bytes=big
            ).use_shm
        with dispatch_policy(mode="pool", n_workers=4, transport="shm"):
            assert decide_fsim(10_000, 50_000, matrix_bytes=64).use_shm

    def test_explicit_policy_object_wins(self):
        policy = DispatchPolicy(mode="pool", n_workers=2)
        decision = decide_fsim(10_000, 50_000, policy=policy)
        assert decision.mode == "pool"
        assert decision.n_workers == 2

    def test_decisions_counted(self):
        tel = Telemetry(tracing=False)
        with use_telemetry(tel):
            with dispatch_policy(n_workers=8):
                decide_fsim(64, 10)
                decide_scap(100_000)
        assert tel.metrics.counter("dispatch.fsim").value(mode="batch") == 1
        assert tel.metrics.counter("dispatch.scap").value(mode="pool") == 1


class TestCallSiteValidation:
    def test_fsim_rejects_bad_transport(self):
        design = build_turbo_eagle("tiny", seed=2007)
        sim = FaultSimulator(
            design.netlist, design.dominant_domain(), kernel_cache=None
        )
        with pytest.raises(AtpgError):
            sim.run_batch(
                np.zeros((4, design.netlist.n_flops), dtype=np.uint8),
                [],
                transport="telepathy",
            )

    def test_scap_rejects_bad_transport(self):
        design = build_turbo_eagle("tiny", seed=2007)
        calc = ScapCalculator(design)
        with pytest.raises(ConfigError):
            calc.profile_patterns(
                np.zeros((4, design.netlist.n_flops), dtype=np.uint8),
                transport="telepathy",
            )

    def test_auto_is_bit_identical_under_forced_pool(self):
        design = build_turbo_eagle("tiny", seed=2007)
        domain = design.dominant_domain()
        nl = design.netlist
        reps, _ = collapse_faults(nl, build_fault_universe(nl))
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, 2, size=(96, nl.n_flops), dtype=np.int8)
        sim = FaultSimulator(nl, domain, kernel_cache=None)
        ref = sim.run_batch(matrix, reps)
        with dispatch_policy(mode="pool", n_workers=2, transport="shm"):
            got = sim.run_batch(matrix, reps, n_workers="auto")
        assert got == ref
