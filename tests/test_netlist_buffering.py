"""Tests for fanout buffering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.netlist import (
    Netlist,
    check_netlist,
    fanout_violations,
    insert_fanout_buffers,
)
from repro.sim import DelayModel, LogicSim, loc_launch_capture
from repro.soc import build_turbo_eagle


def _wide_net_design(n_loads: int = 30) -> Netlist:
    """One flop Q driving many inverters into an OR-reduction flop."""
    nl = Netlist("wide")
    q = nl.add_net("q")
    outs = []
    for i in range(n_loads):
        out = nl.add_net(f"inv{i}")
        nl.add_gate(f"g{i}", "INVX1", [q], out, pos=(10.0 * i, 5.0))
        outs.append(out)
    # OR-tree so the inverters are observable.
    frontier = outs
    k = 0
    while len(frontier) > 1:
        nxt = []
        for j in range(0, len(frontier) - 1, 2):
            out = nl.add_net(f"or{k}")
            nl.add_gate(f"o{k}", "OR2X1", [frontier[j], frontier[j + 1]],
                        out)
            nxt.append(out)
            k += 1
        if len(frontier) % 2:
            nxt.append(frontier[-1])
        frontier = nxt
    nl.add_flop("f0", "SDFFX1", d=frontier[0], q=q, clock_domain="clka",
                is_scan=True, pos=(0.0, 0.0))
    return nl


class TestBuffering:
    def test_violations_found(self):
        nl = _wide_net_design(30)
        q = nl.net_id("q")
        violations = dict(fanout_violations(nl, max_fanout=12))
        assert violations.get(q) == 30

    def test_insertion_fixes_violations(self):
        nl = _wide_net_design(30)
        added = insert_fanout_buffers(nl, max_fanout=12)
        assert added >= 2
        assert fanout_violations(nl, max_fanout=12) == []
        assert check_netlist(nl) == []

    def test_logic_preserved(self):
        before = _wide_net_design(30)
        after = _wide_net_design(30)
        insert_fanout_buffers(after, max_fanout=8)

        def response(netlist, bit):
            sim = LogicSim(netlist)
            cyc = loc_launch_capture(sim, {0: bit}, "clka")
            return cyc.captured[0]

        for bit in (0, 1):
            assert response(before, bit) == response(after, bit)

    def test_delay_improves_on_wide_net(self):
        before = _wide_net_design(40)
        after = _wide_net_design(40)
        insert_fanout_buffers(after, max_fanout=8)
        # The INV stage delay drops because the driving flop sees far
        # less load; total path may add a buffer stage, so compare the
        # flop clock-to-Q (direct load effect).
        dm_before = DelayModel(before)
        dm_after = DelayModel(after)
        assert dm_after.flop_ck2q_ns[0] < dm_before.flop_ck2q_ns[0]

    def test_deep_tree_converges(self):
        nl = _wide_net_design(60)
        insert_fanout_buffers(nl, max_fanout=4)
        assert fanout_violations(nl, max_fanout=4) == []

    def test_clean_design_untouched(self):
        nl = _wide_net_design(5)
        assert insert_fanout_buffers(nl, max_fanout=12) == 0
        assert nl.n_gates == 5 + 4  # inverters + or-tree

    def test_bad_max_fanout(self):
        nl = _wide_net_design(5)
        with pytest.raises(NetlistError):
            fanout_violations(nl, max_fanout=1)

    def test_generated_soc_buffering_roundtrip(self):
        """Buffer a real generated SOC and confirm LOC responses and
        structural health are preserved."""
        design = build_turbo_eagle("tiny", seed=33)
        nl = design.netlist
        rng = np.random.default_rng(0)
        v1 = {fi: int(rng.integers(2)) for fi in range(nl.n_flops)}
        before = loc_launch_capture(LogicSim(nl), v1, "clka").captured
        added = insert_fanout_buffers(nl, max_fanout=6)
        assert fanout_violations(nl, max_fanout=6) == []
        assert check_netlist(nl) == []
        after = loc_launch_capture(LogicSim(nl), v1, "clka").captured
        assert before == after
        assert added > 0
