"""Tests for launch-off-shift test generation (related-work baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg import AtpgEngine, FaultSimulator, build_fault_universe
from repro.atpg.faults import collapse_faults
from repro.atpg.podem import PodemStatus, generate_test
from repro.atpg.twoframe import TwoFrameState
from repro.errors import AtpgError
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=7)


class TestLosState:
    def test_needs_scan(self, design):
        with pytest.raises(AtpgError):
            TwoFrameState(design.netlist, "clka", protocol="los")

    def test_unknown_protocol(self, design):
        with pytest.raises(AtpgError):
            TwoFrameState(design.netlist, "clka", protocol="warp",
                          scan=design.scan)

    def test_frame2_source_mapping(self, design):
        state = TwoFrameState(design.netlist, "clka", protocol="los",
                              scan=design.scan)
        chain = design.scan.chains[0]
        head, second = chain.flops[0], chain.flops[1]
        assert state.frame2_source(head) is None  # constant scan-in
        assert state.frame2_source(second) == ("v1", head)

    def test_assign_shifts_into_downstream(self, design):
        state = TwoFrameState(design.netlist, "clka", protocol="los",
                              scan=design.scan)
        fault = build_fault_universe(design.netlist)[0]
        state.set_fault(fault)
        chain = design.scan.chains[0]
        up, down = chain.flops[0], chain.flops[1]
        state.assign(up, 1)
        q_down = design.netlist.flops[down].q
        assert state.g2[q_down] == 1

    def test_loc_rejects_los_only_concepts(self, design):
        state = TwoFrameState(design.netlist, "clka")
        # LOC pulsed flop launches its frame-1 D value.
        fi = state.pulsed[0]
        assert state.frame2_source(fi) == (
            "f1net", design.netlist.flops[fi].d
        )


class TestLosPodem:
    def test_cubes_verify_in_los_fault_sim(self, design):
        """Property: every LOS PODEM cube detects its fault under LOS
        fault simulation (cross-engine consistency)."""
        nl = design.netlist
        state = TwoFrameState(nl, "clka", protocol="los", scan=design.scan)
        fsim = FaultSimulator(nl, "clka")
        reps, _ = collapse_faults(nl, build_fault_universe(nl))
        rng = np.random.default_rng(1)
        perm = rng.permutation(len(reps))[:80]
        checked = 0
        for i in perm:
            fault = reps[int(i)]
            result = generate_test(state, fault, max_backtracks=50)
            if not result.success:
                continue
            v1 = np.zeros((1, nl.n_flops), dtype=np.uint8)
            for flop, bit in result.cube.items():
                v1[0, flop] = bit
            words = fsim.run(v1, [fault], protocol="los", scan=design.scan)
            assert words.get(fault, 0) & 1, fault
            checked += 1
        assert checked >= 20


class TestLosEngine:
    def test_full_run_consistent(self, design):
        engine = AtpgEngine(design.netlist, "clka", scan=design.scan,
                            protocol="los", seed=3)
        result = engine.run(fill="random")
        assert result.inconsistent == []
        assert result.test_coverage > 0.5

    def test_los_engine_requires_scan(self, design):
        with pytest.raises(AtpgError):
            AtpgEngine(design.netlist, "clka", protocol="los")
