"""Differential property tests over randomly generated netlists.

Every invariant here must hold for *any* structurally valid design, not
just the generated SOC: simulator agreement, round-trip stability, and
ATPG/fault-sim consistency.
"""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import build_fault_universe, collapse_faults
from repro.atpg.fsim import FaultSimulator
from repro.atpg.podem import PodemStatus, generate_test
from repro.atpg.twoframe import TwoFrameState
from repro.netlist import check_netlist, parse_verilog, write_verilog
from repro.sim import (
    DelayModel,
    EventTimingSim,
    FastTimingSim,
    LogicSim,
    loc_launch_capture,
)
from repro.sim.event import build_launch_events

from tests.strategies import random_netlist


@settings(max_examples=40, deadline=None)
@given(nl=random_netlist())
def test_random_netlists_are_lint_clean(nl):
    assert check_netlist(nl) == []


@settings(max_examples=25, deadline=None)
@given(nl=random_netlist(), seed=st.integers(0, 2**31 - 1))
def test_event_final_state_matches_zero_delay(nl, seed):
    """The event-driven simulator must settle to the zero-delay frame-2
    values (same logic, different schedule)."""
    rng = np.random.default_rng(seed)
    sim = LogicSim(nl)
    v1 = {fi: int(rng.integers(2)) for fi in range(nl.n_flops)}
    cyc = loc_launch_capture(sim, v1, "clka")
    dm = DelayModel(nl)
    ets = EventTimingSim(nl, dm)
    launch_times = {fi: 0.1 for fi in cyc.pulsed_flops}
    launch = {fi: cyc.launch_state[fi] for fi in cyc.pulsed_flops}
    events = build_launch_events(nl, cyc.frame1, launch, launch_times,
                                 dm.flop_ck2q_ns)
    res = ets.simulate(cyc.frame1, events, capture_time_ns=1000.0,
                       horizon_ns=1e6, record_trace=True)
    assert not res.truncated
    final = list(cyc.frame1)
    for _t, net, val in res.trace:
        final[net] = val
    for net in range(nl.n_nets):
        assert final[net] == (cyc.frame2[net] & 1), nl.net_names[net]


@settings(max_examples=25, deadline=None)
@given(nl=random_netlist(), seed=st.integers(0, 2**31 - 1))
def test_fast_engine_never_exceeds_event_energy(nl, seed):
    rng = np.random.default_rng(seed)
    sim = LogicSim(nl)
    v1 = {fi: int(rng.integers(2)) for fi in range(nl.n_flops)}
    cyc = loc_launch_capture(sim, v1, "clka")
    dm = DelayModel(nl)
    launch_times = {fi: 0.0 for fi in cyc.pulsed_flops}
    launch = {fi: cyc.launch_state[fi] for fi in cyc.pulsed_flops}
    events = build_launch_events(nl, cyc.frame1, launch, launch_times,
                                 dm.flop_ck2q_ns)
    ev = EventTimingSim(nl, dm).simulate(cyc.frame1, events, 1000.0,
                                         horizon_ns=1e6)
    fa = FastTimingSim(nl, dm).simulate(cyc.frame1, cyc.frame2, launch,
                                        launch_times, 1000.0)
    assert fa.energy_fj_total <= ev.energy_fj_total + 1e-9
    assert fa.n_transitions <= ev.n_transitions


@settings(max_examples=20, deadline=None)
@given(nl=random_netlist())
def test_verilog_roundtrip_preserves_behaviour(nl):
    buf = io.StringIO()
    write_verilog(nl, buf)
    buf.seek(0)
    back = parse_verilog(buf)
    sim_a = LogicSim(nl)
    sim_b = LogicSim(back)
    for trial in range(3):
        v1 = {fi: (trial * 7 + fi) % 2 for fi in range(nl.n_flops)}
        cap_a = loc_launch_capture(sim_a, v1, "clka").captured
        name_a = {nl.flops[fi].name: v for fi, v in cap_a.items()}
        cap_b = loc_launch_capture(sim_b, v1_by_name(back, name_a, v1,
                                                     nl), "clka").captured
        name_b = {back.flops[fi].name: v for fi, v in cap_b.items()}
        assert name_a == name_b


def v1_by_name(back, _unused, v1, original):
    mapping = {f.name: fi for fi, f in enumerate(back.flops)}
    return {
        mapping[original.flops[fi].name]: bit for fi, bit in v1.items()
    }


@settings(max_examples=12, deadline=None)
@given(nl=random_netlist(max_gates=12))
def test_podem_cubes_verify_on_random_netlists(nl):
    """PODEM and the fault simulator agree on arbitrary designs."""
    state = TwoFrameState(nl, "clka")
    fsim = FaultSimulator(nl, "clka")
    reps, _ = collapse_faults(nl, build_fault_universe(nl))
    for fault in reps[:12]:
        result = generate_test(state, fault, max_backtracks=40)
        if result.status is not PodemStatus.SUCCESS:
            continue
        v1 = np.zeros((1, nl.n_flops), dtype=np.uint8)
        for flop, bit in result.cube.items():
            v1[0, flop] = bit
        assert fsim.run(v1, [fault]).get(fault, 0) & 1, fault
