"""Tests for the floorplan and pad-ring geometry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.soc.floorplan import (
    BLOCK_NAMES,
    BlockRegion,
    Floorplan,
    make_turbo_eagle_floorplan,
    periphery_pad_positions,
)


@pytest.fixture
def fp() -> Floorplan:
    return make_turbo_eagle_floorplan(1000.0)


class TestFloorplan:
    def test_all_blocks_present(self, fp):
        assert set(fp.regions) == set(BLOCK_NAMES)

    def test_blocks_do_not_overlap(self, fp):
        rng = np.random.default_rng(1)
        for _ in range(500):
            x = float(rng.uniform(0, fp.width))
            y = float(rng.uniform(0, fp.height))
            owners = [r.name for r in fp if r.contains(x, y)]
            assert len(owners) <= 1

    def test_b5_is_largest_and_central(self, fp):
        areas = {r.name: r.area for r in fp}
        assert max(areas, key=areas.get) == "B5"
        cx, cy = fp.center
        assert fp.block_at(cx, cy) == "B5"

    def test_b5_farthest_from_periphery(self, fp):
        dist = {
            r.name: fp.distance_to_periphery(*r.center) for r in fp
        }
        assert max(dist, key=dist.get) == "B5"

    def test_random_point_inside(self, fp):
        rng = np.random.default_rng(7)
        region = fp.region("B3")
        for _ in range(100):
            x, y = region.random_point(rng)
            assert region.contains(x, y)

    def test_degenerate_region_rejected(self):
        with pytest.raises(ConfigError):
            BlockRegion("bad", 10, 10, 10, 20)

    def test_region_outside_chip_rejected(self):
        region = BlockRegion("big", 0, 0, 2000, 2000)
        with pytest.raises(ConfigError):
            Floorplan(1000, 1000, {"big": region})

    def test_unknown_block_raises(self, fp):
        with pytest.raises(ConfigError):
            fp.region("B9")

    def test_ascii_render_contains_all_blocks(self, fp):
        art = fp.render_ascii()
        for digit in "123456":
            assert digit in art


class TestPads:
    def test_pad_count_and_on_edge(self, fp):
        pads = periphery_pad_positions(fp, 37)
        assert len(pads) == 37
        for x, y in pads:
            on_edge = (
                x in (0.0, fp.width) or y in (0.0, fp.height)
            )
            assert on_edge

    def test_pads_cover_all_four_sides(self, fp):
        pads = periphery_pad_positions(fp, 37)
        sides = set()
        for x, y in pads:
            if y == 0.0:
                sides.add("bottom")
            elif y == fp.height:
                sides.add("top")
            elif x == 0.0:
                sides.add("left")
            elif x == fp.width:
                sides.add("right")
        assert sides == {"bottom", "top", "left", "right"}

    def test_zero_pads_rejected(self, fp):
        with pytest.raises(ConfigError):
            periphery_pad_positions(fp, 0)
