"""Tests for the per-block target cap (the paper's wishlist ATPG
option) and the per-pattern merged-fault bookkeeping."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.atpg import AtpgEngine
from repro.atpg.faults import fault_block
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=71)


def _targets_per_block(design, pattern):
    nl = design.netlist
    nl.freeze()
    counts: Counter = Counter()
    for net in pattern.targeted_faults:
        drv = nl.driver_of(net)
        block = None
        if drv is not None and drv[0] == "gate":
            block = nl.gates[drv[1]].block
        elif drv is not None and drv[0] == "flop":
            block = nl.flops[drv[1]].block
        counts[block] += 1
    return counts


class TestBlockCap:
    def test_targets_recorded(self, design):
        engine = AtpgEngine(design.netlist, "clka", scan=design.scan,
                            seed=2)
        result = engine.run(fill="0", max_patterns=10)
        multi = [p for p in result.pattern_set
                 if len(p.targeted_faults) > 1]
        assert multi, "compaction recorded no merged targets"

    def test_cap_respected(self, design):
        engine = AtpgEngine(
            design.netlist, "clka", scan=design.scan, seed=2,
            max_targets_per_block=2,
        )
        result = engine.run(fill="0", max_patterns=15)
        for pattern in result.pattern_set:
            counts = _targets_per_block(design, pattern)
            for block, count in counts.items():
                if block is not None:
                    assert count <= 2, (pattern.index, block, count)

    def test_cap_costs_patterns_not_coverage(self, design):
        plain = AtpgEngine(design.netlist, "clka", scan=design.scan,
                           seed=2).run(fill="0")
        capped = AtpgEngine(
            design.netlist, "clka", scan=design.scan, seed=2,
            max_targets_per_block=1,
        ).run(fill="0")
        assert capped.n_patterns >= plain.n_patterns
        assert abs(capped.test_coverage - plain.test_coverage) < 0.08

    def test_mean_targets_drop_under_cap(self, design):
        plain = AtpgEngine(design.netlist, "clka", scan=design.scan,
                           seed=2).run(fill="0", max_patterns=20)
        capped = AtpgEngine(
            design.netlist, "clka", scan=design.scan, seed=2,
            max_targets_per_block=1,
        ).run(fill="0", max_patterns=20)

        def mean_targets(res):
            totals = [len(p.targeted_faults) for p in res.pattern_set]
            return sum(totals) / max(1, len(totals))

        assert mean_targets(capped) <= mean_targets(plain)
