"""Tests for N-detect pattern generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg import (
    AtpgEngine,
    FaultSimulator,
    build_fault_universe,
    collapse_faults,
)
from repro.errors import AtpgError
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=113)


class TestNDetect:
    @pytest.fixture(scope="class")
    def runs(self, design):
        out = {}
        for n in (1, 3):
            engine = AtpgEngine(design.netlist, "clka",
                                scan=design.scan, seed=4)
            out[n] = engine.run(fill="random", n_detect=n)
        return out

    def test_more_patterns_for_higher_n(self, runs):
        assert runs[3].n_patterns > runs[1].n_patterns

    def test_coverage_not_lost(self, runs):
        assert runs[3].test_coverage >= runs[1].test_coverage - 0.02

    def test_detection_multiplicity(self, design, runs):
        """Most detected faults really are caught by >= 3 patterns in
        the N=3 set (hard faults may saturate below the quota)."""
        fsim = FaultSimulator(design.netlist, "clka")
        matrix = runs[3].pattern_set.as_matrix()
        sample = list(runs[3].detected)[:60]
        counts = {f: 0 for f in sample}
        for lo in range(0, matrix.shape[0], 64):
            words = fsim.run(matrix[lo:lo + 64], sample)
            for fault, word in words.items():
                counts[fault] += bin(word).count("1")
        satisfied = sum(1 for c in counts.values() if c >= 3)
        assert satisfied >= 0.7 * len(sample)

    def test_first_detection_indices_valid(self, runs):
        res = runs[3]
        for fault, idx in res.detected.items():
            assert 0 <= idx < res.n_patterns

    def test_invalid_n_rejected(self, design):
        engine = AtpgEngine(design.netlist, "clka", scan=design.scan)
        with pytest.raises(AtpgError):
            engine.run(n_detect=0)

    def test_no_inconsistencies(self, runs):
        for res in runs.values():
            assert res.inconsistent == []
