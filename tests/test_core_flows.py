"""Tests for the paper-contribution layer: flows, thresholds,
validation, IR-scaled re-simulation and the case-study driver.

A single tiny CaseStudy instance is shared module-wide: the flows are
the expensive part and every experiment method reuses the caches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CaseStudy
from repro.core import (
    STAGE_PLAN_TURBO_EAGLE,
    NoiseAwarePatternGenerator,
    validate_pattern_set,
)
from repro.core.validation import ScapViolation
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def study():
    return CaseStudy(scale="tiny", seed=2007, backtrack_limit=60)


class TestThresholds:
    def test_all_blocks_have_thresholds(self, study):
        thresholds = study.thresholds_mw
        assert set(thresholds) == {"B1", "B2", "B3", "B4", "B5", "B6"}
        assert all(v > 0 for v in thresholds.values())

    def test_b5_threshold_largest(self, study):
        thresholds = study.thresholds_mw
        assert max(thresholds, key=thresholds.get) == "B5"


class TestFlows:
    def test_conventional_flow(self, study):
        flow = study.conventional()
        assert flow.name == "conventional"
        assert flow.fill == "random"
        assert flow.n_patterns > 0
        assert flow.test_coverage > 0.5

    def test_staged_flow_structure(self, study):
        flow = study.staged()
        assert flow.fill == "0"
        assert len(flow.step_results) == len(STAGE_PLAN_TURBO_EAGLE)
        assert flow.step_boundaries[0] == 0
        assert flow.step_boundaries == sorted(flow.step_boundaries)
        assert flow.n_patterns > 0

    def test_staged_pattern_indices_continuous(self, study):
        flow = study.staged()
        for i, pattern in enumerate(flow.pattern_set):
            assert pattern.index == i

    def test_coverage_curves_monotone_and_end_at_final(self, study):
        for flow in (study.conventional(), study.staged()):
            curve = flow.coverage_curve()
            ys = [y for _x, y in curve]
            assert all(b >= a for a, b in zip(ys, ys[1:]))
            assert ys[-1] == pytest.approx(flow.test_coverage)

    def test_similar_final_coverage(self, study):
        """Figure 4: both flows converge to comparable coverage."""
        conv = study.conventional().test_coverage
        stag = study.staged().test_coverage
        assert abs(conv - stag) < 0.12

    def test_staged_more_patterns(self, study):
        assert study.staged().n_patterns >= study.conventional().n_patterns

    def test_unknown_block_in_plan_rejected(self, study):
        with pytest.raises(ConfigError):
            NoiseAwarePatternGenerator(
                study.design, stage_plan=[("B9",)]
            )

    def test_empty_plan_rejected(self, study):
        with pytest.raises(ConfigError):
            NoiseAwarePatternGenerator(study.design, stage_plan=[])


class TestValidation:
    def test_violations_consistent(self, study):
        report = study.validation("conventional")
        for v in report.violations:
            assert v.scap_mw > v.threshold_mw
            assert v.excess_ratio > 1.0
            assert 0 <= v.pattern_index < report.n_patterns

    def test_staged_quieter_in_b5(self, study):
        """The paper's headline: far fewer B5 violations after staging."""
        conv = study.validation("conventional")
        stag = study.validation("staged")
        assert (
            stag.violation_fraction("B5") <= conv.violation_fraction("B5")
        )

    def test_staged_prefix_is_quiet(self, study):
        """Figure 6: before the B5 step, B5 SCAP is (near) zero."""
        stag = study.validation("staged")
        boundaries = study.staged().step_boundaries
        series = stag.scap_series("B5")
        prefix = series[: boundaries[-1]]
        threshold = study.thresholds_mw["B5"]
        assert (prefix <= threshold).all()

    def test_extreme_patterns(self, study):
        report = study.validation("conventional")
        picks = report.extreme_patterns("B5")
        series = report.scap_series("B5")
        assert series[picks["P1"]] == series.max()
        assert picks["P1"] != picks["P2"] or len(series) == 1

    def test_scap_series_length(self, study):
        report = study.validation("conventional")
        assert len(report.scap_series("B5")) == report.n_patterns


class TestCaseStudyTables:
    def test_table1(self, study):
        t1 = study.table1()
        assert t1["clock_domains"] == 6
        assert t1["transition_delay_faults"] > 0

    def test_table3_shapes(self, study):
        t3 = study.table3()
        case1 = {r.block: r for r in t3["case1_full_cycle"]}
        case2 = {r.block: r for r in t3["case2_half_cycle"]}
        # Power ~doubles for every block when the window is halved.
        for block in ("B1", "B2", "B3", "B4", "B5", "B6"):
            ratio = case2[block].avg_power_mw / case1[block].avg_power_mw
            assert 1.5 < ratio < 2.5
        # B5 is the worst-IR block in both cases.
        worst2 = max(
            (r for r in t3["case2_half_cycle"] if r.block != "Chip"),
            key=lambda r: r.worst_drop_vdd_v,
        )
        assert worst2.block == "B5"

    def test_table4_scap_exceeds_cap(self, study):
        t4 = study.table4()
        assert t4["SCAP"]["avg_power_mw"] > 1.5 * t4["CAP"]["avg_power_mw"]
        assert t4["SCAP"]["worst_drop_vdd_v"] >= t4["CAP"]["worst_drop_vdd_v"]
        assert t4["SCAP"]["window_ns"] < t4["CAP"]["window_ns"]

    def test_figure1_render(self, study):
        art = study.figure1()
        assert "5" in art and "1" in art

    def test_figure3_p1_droopier_than_p2(self, study):
        f3 = study.figure3()
        assert f3["P1"]["scap_mw_b5"] >= f3["P2"]["scap_mw_b5"]
        assert (
            f3["P1"]["worst_drop_vdd_v"] >= f3["P2"]["worst_drop_vdd_v"]
        )

    def test_figure4_curves(self, study):
        f4 = study.figure4()
        assert set(f4) == {"conventional", "staged"}
        assert len(f4["staged"]) == study.staged().n_patterns


class TestIrScale:
    def test_figure7_regions(self, study):
        comp = study.figure7()
        deltas = comp.deltas()
        assert deltas, "expected active endpoints"
        # Region 1 must exist: IR-drop slows some real paths.
        assert comp.region1(), "no slowed endpoints"
        assert comp.max_increase_pct() > 0
        # Scaled delays never speed a *data path* up; apparent speedups
        # come only from capture-clock lateness, so any region-2 delta
        # is bounded by the clock-path change.
        assert all(
            fi in comp.nominal_ns for fi in comp.region2()
        )

    def test_figure7_ir_linked(self, study):
        comp = study.figure7()
        assert comp.ir.worst_vdd_v > 0
