"""Public-API integrity: every module imports, every __all__ resolves.

Guards against broken exports, dangling names after refactors, and
accidental import cycles anywhere in the package.
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.atpg",
    "repro.core",
    "repro.dft",
    "repro.netlist",
    "repro.pgrid",
    "repro.power",
    "repro.reporting",
    "repro.sim",
    "repro.soc",
]


def _walk_modules():
    names = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        names.append(pkg_name)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                names.append(f"{pkg_name}.{info.name}")
    return sorted(set(names))


@pytest.mark.parametrize("module_name", _walk_modules())
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_all_names_resolve(pkg_name):
    pkg = importlib.import_module(pkg_name)
    exported = getattr(pkg, "__all__", [])
    assert exported, f"{pkg_name} exports nothing"
    for name in exported:
        assert hasattr(pkg, name), f"{pkg_name}.{name} missing"


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_all_is_sorted_and_unique(pkg_name):
    pkg = importlib.import_module(pkg_name)
    exported = list(getattr(pkg, "__all__", []))
    assert len(exported) == len(set(exported)), f"{pkg_name}: duplicates"


def test_top_level_version():
    assert repro.__version__ == "1.0.0"


def test_every_public_symbol_documented():
    """Everything re-exported at the top level carries a docstring."""
    for name in repro.__all__:
        if name.startswith("__") or name in ("K_VOLT", "VDD_NOMINAL"):
            continue
        obj = getattr(repro, name)
        doc = getattr(obj, "__doc__", None)
        assert doc and doc.strip(), f"repro.{name} lacks a docstring"
