"""API-detail tests for accessors and small result types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ElectricalEnv
from repro.core.ftas import FtasReport, PatternFtas
from repro.core.irscale import IrScaledComparison
from repro.errors import ConfigError
from repro.pgrid.dynamic_ir import DynamicIrResult
from repro.power.scap import PatternPowerProfile
from repro.soc import build_turbo_eagle


class TestSocAccessors:
    @pytest.fixture(scope="class")
    def design(self):
        return build_turbo_eagle("tiny", seed=151)

    def test_unknown_domain_rejected(self, design):
        with pytest.raises(ConfigError):
            design.flops_in_domain("clkz")

    def test_blocks_partition_placed_instances(self, design):
        netlist = design.netlist
        per_block = sum(
            len(design.gates_in_block(b)) for b in design.blocks()
        )
        glue = sum(1 for g in netlist.gates if g.block is None)
        assert per_block + glue == netlist.n_gates

    def test_enable_flops_listed(self, design):
        for block in design.blocks():
            enables = design.enable_flops_in_block(block)
            assert enables, block
            for fi in enables:
                assert "_enf" in design.netlist.flops[fi].name

    def test_characteristics_consistent(self, design):
        char = design.characteristics()
        assert char["total_scan_flops"] == len(design.netlist.scan_flops)
        assert char["gates"] == design.netlist.n_gates


class TestSmallResultTypes:
    def test_pattern_power_profile_validation(self):
        with pytest.raises(ConfigError):
            PatternPowerProfile(0, 0.0, 1.0, 1, 1.0)

    def test_dynamic_ir_result_red_fraction(self):
        drop = np.zeros(16)
        drop[3] = 0.2
        result = DynamicIrResult(
            window_ns=5.0,
            drop_vdd=drop,
            drop_vss=np.zeros(16),
            gate_droop_v=np.zeros(4),
            flop_droop_v=np.zeros(2),
            vdd=1.8,
        )
        assert result.worst_vdd_v == pytest.approx(0.2)
        assert result.red_fraction() == pytest.approx(1 / 16)

    def test_ir_scaled_comparison_regions(self):
        ir = DynamicIrResult(
            window_ns=5.0,
            drop_vdd=np.zeros(4),
            drop_vss=np.zeros(4),
            gate_droop_v=np.zeros(1),
            flop_droop_v=np.zeros(1),
        )
        comp = IrScaledComparison(
            pattern_index=0,
            nominal_ns={1: 2.0, 2: 3.0, 3: 0.0, 4: 1.0},
            scaled_ns={1: 2.5, 2: 2.8, 3: 0.0, 4: 1.0},
            ir=ir,
        )
        assert comp.region1() == [1]
        assert comp.region2() == [2]
        assert 3 not in comp.deltas()  # non-active excluded
        assert comp.max_increase_pct() == pytest.approx(25.0)

    def test_ftas_report_bins(self):
        report = FtasReport(nominal_period_ns=20.0)
        report.patterns.append(PatternFtas(0, 8.0, 10.0, 0.12))
        report.patterns.append(PatternFtas(1, 15.0, 18.0, 0.12))
        bins = report.bin_patterns([50.0, 100.0], ir_aware=True)
        # pattern 0: fmax 100 MHz -> 100 bin; pattern 1: 55.6 -> 50 bin.
        assert bins[100.0] == 1
        assert bins[50.0] == 1
        assert report.patterns[0].ir_headroom_loss_pct == pytest.approx(
            25.0
        )

    def test_env_defaults(self):
        env = ElectricalEnv()
        assert env.vdd == pytest.approx(1.8)
        assert env.k_volt == pytest.approx(0.9)
