"""Hypothesis strategies for randomly generated netlists.

`random_netlist()` draws small sequential designs (random DAG clouds
wrapped in scan flops) for differential property testing: anything that
must hold for *every* structurally-valid netlist — simulator agreement,
round-trips, lint cleanliness — gets checked far beyond the hand-built
fixtures and the SOC generator's idioms.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.netlist import Netlist
from repro.netlist.library import DEFAULT_CELL_FOR_KIND

_KINDS_1 = ["INV", "BUF"]
_KINDS_2 = ["AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2"]
_KINDS_3 = ["MUX2", "AOI21", "OAI21", "AND3", "NOR3"]


@st.composite
def random_netlist(
    draw,
    min_flops: int = 2,
    max_flops: int = 6,
    min_gates: int = 2,
    max_gates: int = 18,
) -> Netlist:
    """A random valid sequential netlist on one clock domain.

    Gates are created in topological order (inputs drawn from earlier
    signals), so the result is always acyclic; every flop D is driven
    by some signal, making the design lint-clean by construction.
    """
    n_flops = draw(st.integers(min_flops, max_flops))
    n_gates = draw(st.integers(min_gates, max_gates))
    nl = Netlist("hypo")
    signals = []
    for i in range(n_flops):
        signals.append(nl.add_net(f"q{i}"))

    for gi in range(n_gates):
        arity_pick = draw(st.integers(0, 2))
        kinds = (_KINDS_1, _KINDS_2, _KINDS_3)[arity_pick]
        kind = draw(st.sampled_from(kinds))
        arity = 1 if arity_pick == 0 else (2 if arity_pick == 1 else 3)
        ins = [
            signals[draw(st.integers(0, len(signals) - 1))]
            for _ in range(arity)
        ]
        out = nl.add_net(f"n{gi}")
        nl.add_gate(
            f"g{gi}", DEFAULT_CELL_FOR_KIND[kind], ins, out,
            pos=(float(gi), float(gi % 5)),
        )
        signals.append(out)

    for i in range(n_flops):
        d = signals[draw(st.integers(0, len(signals) - 1))]
        nl.add_flop(
            f"f{i}", "SDFFX1", d=d, q=nl.net_id(f"q{i}"),
            clock_domain="clka", is_scan=True,
            pos=(float(i), 10.0),
        )
    return nl


@st.composite
def pattern_matrix(
    draw,
    n_flops: int,
    min_patterns: int = 1,
    max_patterns: int = 96,
) -> np.ndarray:
    """A random ``(n_patterns, n_flops)`` 0/1 scan-load matrix.

    Pattern counts deliberately straddle machine-word lane boundaries
    (1..96 against 64-bit lanes) so batched consumers are exercised on
    partial, exact and multi-word lane splits.
    """
    n_patterns = draw(st.integers(min_patterns, max_patterns))
    bits = draw(
        st.lists(
            st.integers(0, 1),
            min_size=n_patterns * n_flops,
            max_size=n_patterns * n_flops,
        )
    )
    return np.array(bits, dtype=np.uint8).reshape(n_patterns, n_flops)
