"""Tests for the two-frame implication engine and PODEM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg.faults import STF, STR, TransitionFault, build_fault_universe, collapse_faults
from repro.atpg.fsim import FaultSimulator
from repro.atpg.podem import PodemStatus, generate_test
from repro.atpg.twoframe import TwoFrameState
from repro.atpg.values import X
from repro.errors import AtpgError
from repro.netlist import Netlist
from repro.soc import build_turbo_eagle


@pytest.fixture
def pipeline2():
    """f0 -> inv -> f1 ; f1 -> buf -> f0 (two scan flops, one domain)."""
    nl = Netlist("pipe2")
    q0 = nl.add_net("q0")
    q1 = nl.add_net("q1")
    a = nl.add_net("a")
    b = nl.add_net("b")
    nl.add_gate("g_inv", "INVX1", [q0], a)
    nl.add_gate("g_buf", "BUFX2", [q1], b)
    nl.add_flop("f0", "SDFFX1", d=b, q=q0, clock_domain="clka", is_scan=True)
    nl.add_flop("f1", "SDFFX1", d=a, q=q1, clock_domain="clka", is_scan=True)
    return nl


class TestTwoFrameState:
    def test_assign_implies_both_frames(self, pipeline2):
        state = TwoFrameState(pipeline2, "clka")
        fault = TransitionFault(pipeline2.net_id("a"), STR)
        state.set_fault(fault)
        state.assign(0, 0)  # v1[f0] = 0
        a = pipeline2.net_id("a")
        # frame1: a = ~q0 = 1 ; launch: f1 <- 1 ; frame2 good: a = ~?.
        assert state.f1[a] == 1
        q1 = pipeline2.net_id("q1")
        assert state.g2[q1] == 1  # launched from frame-1 D of f1

    def test_undo_restores(self, pipeline2):
        state = TwoFrameState(pipeline2, "clka")
        state.set_fault(TransitionFault(pipeline2.net_id("a"), STR))
        mark = state.mark()
        state.assign(0, 1)
        assert state.v1 == {0: 1}
        state.undo_to(mark)
        assert state.v1 == {}
        assert state.f1[pipeline2.net_id("a")] == X

    def test_double_assign_rejected(self, pipeline2):
        state = TwoFrameState(pipeline2, "clka")
        state.set_fault(TransitionFault(pipeline2.net_id("a"), STR))
        state.assign(0, 1)
        with pytest.raises(AtpgError):
            state.assign(0, 0)

    def test_empty_domain_rejected(self, pipeline2):
        with pytest.raises(AtpgError):
            TwoFrameState(pipeline2, "clkz")

    def test_faulty_machine_forced(self, pipeline2):
        a = pipeline2.net_id("a")
        state = TwoFrameState(pipeline2, "clka")
        state.set_fault(TransitionFault(a, STR))
        state.assign(0, 0)
        # good frame2: q0 launches to b(=q1 held X)... regardless, the
        # faulty machine's stem stays at the stuck value 0.
        assert state.f2[a] == 0


class TestPodem:
    def test_detects_simple_fault(self, pipeline2):
        state = TwoFrameState(pipeline2, "clka")
        # STR at a (output of inverter from q0): frame1 a=0 needs q0=1;
        # frame2 a=1 needs launch q0=0, i.e. f0 loads b=q1=0.
        fault = TransitionFault(pipeline2.net_id("a"), STR)
        result = generate_test(state, fault)
        assert result.status is PodemStatus.SUCCESS
        cube = result.cube
        assert cube[0] == 1  # activation
        assert cube[1] == 0  # launch through f0 <- buf(q1)

    def test_cube_detects_in_fault_simulator(self, pipeline2):
        state = TwoFrameState(pipeline2, "clka")
        fault = TransitionFault(pipeline2.net_id("a"), STR)
        result = generate_test(state, fault)
        v1 = np.zeros((1, 2), dtype=np.uint8)
        for flop, bit in result.cube.items():
            v1[0, flop] = bit
        fsim = FaultSimulator(pipeline2, "clka")
        assert fsim.run(v1, [fault]) == {fault: 1}

    def test_untestable_constant_cone(self):
        """A stem fed only by constant PIs is untestable."""
        nl = Netlist("const")
        pi = nl.add_net("pi0")
        y = nl.add_net("y")
        d = nl.add_net("d")
        q = nl.add_net("q")
        nl.add_primary_input(pi)
        nl.add_gate("g1", "INVX1", [pi], y)
        nl.add_gate("g2", "BUFX2", [y], d)
        nl.add_flop("f", "SDFFX1", d=d, q=q, clock_domain="clka",
                    is_scan=True)
        state = TwoFrameState(nl, "clka")
        result = generate_test(state, TransitionFault(y, STR))
        assert result.status is PodemStatus.UNTESTABLE

    def test_unobservable_fault_pruned(self):
        """A stem with no path to a capture flop is untestable (fast)."""
        nl = Netlist("unobs")
        q = nl.add_net("q")
        dead = nl.add_net("dead")
        d = nl.add_net("d")
        nl.add_gate("g1", "INVX1", [q], dead)  # drives nothing captured
        nl.add_gate("g2", "BUFX2", [q], d)
        nl.add_flop("f", "SDFFX1", d=d, q=q, clock_domain="clka",
                    is_scan=True)
        state = TwoFrameState(nl, "clka")
        result = generate_test(state, TransitionFault(dead, STR))
        assert result.status is PodemStatus.UNTESTABLE
        assert result.decisions == 0  # structural prune, no search

    def test_base_constraints_respected(self, pipeline2):
        state = TwoFrameState(pipeline2, "clka")
        fault = TransitionFault(pipeline2.net_id("a"), STR)
        # Base forces the activation bit the wrong way: unmergeable.
        result = generate_test(state, fault, base={0: 0})
        assert result.status is PodemStatus.UNTESTABLE
        # Compatible base: success, base bits included in the cube.
        result = generate_test(state, fault, base={0: 1})
        assert result.success
        assert result.cube[0] == 1

    def test_every_success_cube_verifies(self):
        """Property: PODEM cubes always detect their fault in fault sim
        (zero-delay consistency between the two engines)."""
        design = build_turbo_eagle("tiny", seed=41)
        nl = design.netlist
        state = TwoFrameState(nl, "clka")
        fsim = FaultSimulator(nl, "clka")
        reps, _ = collapse_faults(nl, build_fault_universe(nl))
        rng = np.random.default_rng(0)
        perm = rng.permutation(len(reps))[:120]
        checked = 0
        for i in perm:
            fault = reps[int(i)]
            result = generate_test(state, fault, max_backtracks=50)
            if not result.success:
                continue
            v1 = np.zeros((1, nl.n_flops), dtype=np.uint8)
            for flop, bit in result.cube.items():
                v1[0, flop] = bit
            assert fsim.run(v1, [fault]).get(fault, 0) == 1, fault
            checked += 1
        assert checked >= 30  # enough successes to be meaningful
