"""Tests for the static timing analyzer and IR derating."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ElectricalEnv
from repro.errors import SimulationError
from repro.pgrid import GridModel, dynamic_ir_for_pattern
from repro.power import ScapCalculator
from repro.sim import DelayModel, StaticTimingAnalyzer, derates_from_ir
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def env():
    design = build_turbo_eagle("tiny", seed=55)
    dm = DelayModel(design.netlist, design.parasitics)
    sta = StaticTimingAnalyzer(
        design.netlist, dm, design.clock_trees["clka"],
        period_ns=20.0, domain="clka",
    )
    return design, dm, sta


class TestSta:
    def test_all_endpoints_have_positive_slack_at_nominal(self, env):
        design, dm, sta = env
        report = sta.analyze()
        assert report.endpoints, "no endpoints analysed"
        # The generated design is timing-closed at 20 ns.
        assert report.worst_slack_ns > 0

    def test_arrival_bounds(self, env):
        design, dm, sta = env
        report = sta.analyze()
        crit = dm.critical_path_estimate_ns()
        for e in report.endpoints:
            assert 0 < e.arrival_ns <= crit + 5.0
            assert e.required_ns > 0

    def test_worst_endpoints_sorted(self, env):
        _d, _dm, sta = env
        report = sta.analyze()
        worst = report.worst_endpoints(4)
        slacks = [e.slack_ns for e in worst]
        assert slacks == sorted(slacks)
        assert slacks[0] == pytest.approx(report.worst_slack_ns)

    def test_uniform_derate_shifts_slack(self, env):
        design, dm, sta = env
        nominal = sta.analyze()
        derated = sta.analyze(
            gate_derate=np.full(design.netlist.n_gates, 1.2),
            flop_derate=np.full(design.netlist.n_flops, 1.2),
        )
        nom = {e.flop: e for e in nominal.endpoints}
        der = {e.flop: e for e in derated.endpoints}
        for fi, e in der.items():
            assert e.arrival_ns > nom[fi].arrival_ns
            assert e.slack_ns < nom[fi].slack_ns

    def test_late_capture_clock_relaxes_required(self, env):
        _design, _dm, sta = env
        nominal = sta.analyze()
        # A slower clock tree delays both launch (arrival) and capture
        # (required); required grows by the endpoint's own insertion
        # scaling.
        scaled = sta.analyze(clock_delay_scale=lambda buf, d: d * 1.5)
        nom = {e.flop: e for e in nominal.endpoints}
        for e in scaled.endpoints:
            assert e.required_ns > nom[e.flop].required_ns

    def test_trace_path_consistent(self, env):
        _design, _dm, sta = env
        report = sta.analyze()
        endpoint = report.worst_endpoints(1)[0]
        path = sta.trace_path(endpoint)
        assert path, "empty path"
        arrivals = [p.arrival_ns for p in path]
        assert arrivals == sorted(arrivals)
        assert path[-1].arrival_ns == pytest.approx(endpoint.arrival_ns)

    def test_bad_inputs(self, env):
        design, dm, sta = env
        with pytest.raises(SimulationError):
            sta.analyze(gate_derate=np.ones(3))
        with pytest.raises(SimulationError):
            StaticTimingAnalyzer(
                design.netlist, dm, design.clock_trees["clka"],
                period_ns=-1.0, domain="clka",
            )


class TestIrDerates:
    def test_derates_from_ir(self, env):
        design, dm, sta = env
        model = GridModel.calibrated(design, nx=12, ny=12)
        calc = ScapCalculator(design, "clka")
        rng = np.random.default_rng(0)
        v1 = {fi: int(rng.integers(2)) for fi in range(design.netlist.n_flops)}
        timing = calc.simulate_pattern(v1)
        ir = dynamic_ir_for_pattern(model, timing)
        gate_d, flop_d = derates_from_ir(ir, ElectricalEnv())
        assert (gate_d >= 1.0).all()
        assert gate_d.max() == pytest.approx(
            1.0 + 0.9 * ir.gate_droop_v.max()
        )
        # IR-derated STA is never more optimistic than nominal.
        nominal = sta.analyze()
        derated = sta.analyze(gate_derate=gate_d, flop_derate=flop_d)
        assert derated.worst_slack_ns <= nominal.worst_slack_ns + 1e-9


class TestLaunchRestriction:
    def test_seeded_arrivals_never_exceed_full(self, env):
        _design, _dm, sta = env
        full = {e.flop: e for e in sta.analyze().endpoints}
        seeds = sorted(sta._launch_flops)[:3]
        seeded = sta.analyze(launch_flops=seeds)
        # fewer launch points -> a subset of cones, never later arrivals
        assert seeded.endpoints
        assert len(seeded.endpoints) <= len(full)
        for e in seeded.endpoints:
            assert e.arrival_ns <= full[e.flop].arrival_ns + 1e-9
            assert e.required_ns == pytest.approx(
                full[e.flop].required_ns
            )

    def test_empty_seed_list_reaches_nothing(self, env):
        _design, _dm, sta = env
        assert sta.analyze(launch_flops=[]).endpoints == []

    def test_non_launch_capable_seed_rejected(self, env):
        design, _dm, sta = env
        bad = design.netlist.n_flops + 5
        with pytest.raises(SimulationError, match="not launch-capable"):
            sta.analyze(launch_flops=[bad])


class TestIrDerateHardening:
    @pytest.fixture(scope="class")
    def ir(self, env):
        design, _dm, _sta = env
        model = GridModel.calibrated(design, nx=12, ny=12)
        calc = ScapCalculator(design, "clka")
        rng = np.random.default_rng(1)
        v1 = {
            fi: int(rng.integers(2))
            for fi in range(design.netlist.n_flops)
        }
        timing = calc.simulate_pattern(v1)
        return dynamic_ir_for_pattern(model, timing)

    def test_only_restricts_to_named_instances(self, env, ir):
        design, _dm, _sta = env
        name = design.netlist.gates[0].name
        gate_d, flop_d = derates_from_ir(
            ir, netlist=design.netlist, only=[name]
        )
        assert (flop_d == 1.0).all()
        assert (gate_d[1:] == 1.0).all()
        assert gate_d[0] == pytest.approx(
            1.0 + 0.9 * max(ir.gate_droop_v[0], 0.0)
        )

    def test_only_accepts_flop_names_too(self, env, ir):
        design, _dm, _sta = env
        name = design.netlist.flops[0].name
        gate_d, flop_d = derates_from_ir(
            ir, netlist=design.netlist, only=[name]
        )
        assert (gate_d == 1.0).all()
        assert (flop_d[1:] == 1.0).all()

    def test_only_without_netlist_rejected(self, ir):
        with pytest.raises(SimulationError, match="needs netlist="):
            derates_from_ir(ir, only=["u0"])

    def test_empty_only_rejected(self, env, ir):
        design, _dm, _sta = env
        with pytest.raises(SimulationError, match="empty instance"):
            derates_from_ir(ir, netlist=design.netlist, only=[])

    def test_unknown_instance_rejected(self, env, ir):
        design, _dm, _sta = env
        with pytest.raises(
            SimulationError, match="unknown instance name"
        ):
            derates_from_ir(
                ir, netlist=design.netlist, only=["no_such_cell"]
            )

    def test_mismatched_netlist_rejected(self, env, ir):
        from repro.soc import build_turbo_eagle as _build

        other = _build("tiny", seed=56).netlist
        if other.n_gates == len(ir.gate_droop_v):
            pytest.skip("same-size netlist cannot detect the mismatch")
        with pytest.raises(SimulationError, match="gate droops"):
            derates_from_ir(
                ir, netlist=other, only=[other.gates[0].name]
            )


class TestAnalyzeStatistical:
    def test_zero_sigma_is_deterministic_sta(self, env):
        from repro.sim import analyze_statistical

        _design, _dm, sta = env
        ssta = analyze_statistical(sta, sigma_fraction=0.0)
        det = {e.flop: e for e in sta.analyze().endpoints}
        assert ssta.endpoints
        for e in ssta.endpoints:
            assert e.std_arrival_ns == 0.0
            assert e.mean_arrival_ns == pytest.approx(
                det[e.flop].arrival_ns
            )
            # timing-closed design: every yield is exactly 1
            assert e.timing_yield() == 1.0
        assert ssta.chip_timing_yield() == 1.0

    def test_negative_sigma_rejected(self, env):
        from repro.sim import analyze_statistical

        _design, _dm, sta = env
        with pytest.raises(SimulationError):
            analyze_statistical(sta, sigma_fraction=-0.1)

    def test_yield_monotone_in_sigma(self, env):
        from repro.sim import analyze_statistical

        _design, _dm, sta = env
        yields = [
            analyze_statistical(sta, s).chip_timing_yield()
            for s in (0.01, 0.2, 0.8)
        ]
        assert yields[0] >= yields[1] >= yields[2]

    def test_worst_yield_endpoint_is_min(self, env):
        from repro.sim import analyze_statistical

        _design, _dm, sta = env
        ssta = analyze_statistical(sta, sigma_fraction=0.3)
        worst = ssta.worst_yield_endpoint()
        assert worst is not None
        assert worst.timing_yield() == min(
            e.timing_yield() for e in ssta.endpoints
        )
        assert ssta.chip_timing_yield() <= worst.timing_yield() + 1e-12


class TestIrScaledComparisonEdges:
    @pytest.fixture(scope="class")
    def cmp_(self, env):
        from repro.core.irscale import ir_scaled_endpoint_comparison

        design, _dm, _sta = env
        model = GridModel.calibrated(design, nx=12, ny=12)
        calc = ScapCalculator(design, "clka")
        rng = np.random.default_rng(2)
        v1 = {
            fi: int(rng.integers(2))
            for fi in range(design.netlist.n_flops)
        }
        return ir_scaled_endpoint_comparison(
            calc, model, v1, index=17, env=ElectricalEnv()
        )

    def test_dict_pattern_uses_explicit_index(self, cmp_):
        assert cmp_.pattern_index == 17

    def test_deltas_exclude_inactive_endpoints(self, cmp_):
        deltas = cmp_.deltas()
        for fi in deltas:
            assert cmp_.nominal_ns[fi] != 0.0
            assert cmp_.scaled_ns[fi] != 0.0
        inactive = {
            fi for fi, d in cmp_.nominal_ns.items() if d == 0.0
        }
        assert inactive.isdisjoint(deltas)

    def test_regions_partition_significant_deltas(self, cmp_):
        r1 = set(cmp_.region1())
        r2 = set(cmp_.region2())
        assert not (r1 & r2)
        for fi in r1:
            assert cmp_.deltas()[fi] > 0
        for fi in r2:
            assert cmp_.deltas()[fi] < 0

    def test_max_increase_pct_nonnegative(self, cmp_):
        assert cmp_.max_increase_pct() >= 0.0

    def test_split_cases_compose_to_comparison(self, env, cmp_):
        from repro.core.irscale import ir_nominal_case, ir_scaled_case

        design, _dm, _sta = env
        model = GridModel.calibrated(design, nx=12, ny=12)
        calc = ScapCalculator(design, "clka")
        rng = np.random.default_rng(2)
        v1 = {
            fi: int(rng.integers(2))
            for fi in range(design.netlist.n_flops)
        }
        _timing, ir, nominal = ir_nominal_case(calc, model, v1)
        scaled = ir_scaled_case(calc, model, v1, ir, ElectricalEnv())
        assert nominal == cmp_.nominal_ns
        assert scaled == cmp_.scaled_ns
