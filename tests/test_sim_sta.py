"""Tests for the static timing analyzer and IR derating."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ElectricalEnv
from repro.errors import SimulationError
from repro.pgrid import GridModel, dynamic_ir_for_pattern
from repro.power import ScapCalculator
from repro.sim import DelayModel, StaticTimingAnalyzer, derates_from_ir
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def env():
    design = build_turbo_eagle("tiny", seed=55)
    dm = DelayModel(design.netlist, design.parasitics)
    sta = StaticTimingAnalyzer(
        design.netlist, dm, design.clock_trees["clka"],
        period_ns=20.0, domain="clka",
    )
    return design, dm, sta


class TestSta:
    def test_all_endpoints_have_positive_slack_at_nominal(self, env):
        design, dm, sta = env
        report = sta.analyze()
        assert report.endpoints, "no endpoints analysed"
        # The generated design is timing-closed at 20 ns.
        assert report.worst_slack_ns > 0

    def test_arrival_bounds(self, env):
        design, dm, sta = env
        report = sta.analyze()
        crit = dm.critical_path_estimate_ns()
        for e in report.endpoints:
            assert 0 < e.arrival_ns <= crit + 5.0
            assert e.required_ns > 0

    def test_worst_endpoints_sorted(self, env):
        _d, _dm, sta = env
        report = sta.analyze()
        worst = report.worst_endpoints(4)
        slacks = [e.slack_ns for e in worst]
        assert slacks == sorted(slacks)
        assert slacks[0] == pytest.approx(report.worst_slack_ns)

    def test_uniform_derate_shifts_slack(self, env):
        design, dm, sta = env
        nominal = sta.analyze()
        derated = sta.analyze(
            gate_derate=np.full(design.netlist.n_gates, 1.2),
            flop_derate=np.full(design.netlist.n_flops, 1.2),
        )
        nom = {e.flop: e for e in nominal.endpoints}
        der = {e.flop: e for e in derated.endpoints}
        for fi, e in der.items():
            assert e.arrival_ns > nom[fi].arrival_ns
            assert e.slack_ns < nom[fi].slack_ns

    def test_late_capture_clock_relaxes_required(self, env):
        _design, _dm, sta = env
        nominal = sta.analyze()
        # A slower clock tree delays both launch (arrival) and capture
        # (required); required grows by the endpoint's own insertion
        # scaling.
        scaled = sta.analyze(clock_delay_scale=lambda buf, d: d * 1.5)
        nom = {e.flop: e for e in nominal.endpoints}
        for e in scaled.endpoints:
            assert e.required_ns > nom[e.flop].required_ns

    def test_trace_path_consistent(self, env):
        _design, _dm, sta = env
        report = sta.analyze()
        endpoint = report.worst_endpoints(1)[0]
        path = sta.trace_path(endpoint)
        assert path, "empty path"
        arrivals = [p.arrival_ns for p in path]
        assert arrivals == sorted(arrivals)
        assert path[-1].arrival_ns == pytest.approx(endpoint.arrival_ns)

    def test_bad_inputs(self, env):
        design, dm, sta = env
        with pytest.raises(SimulationError):
            sta.analyze(gate_derate=np.ones(3))
        with pytest.raises(SimulationError):
            StaticTimingAnalyzer(
                design.netlist, dm, design.clock_trees["clka"],
                period_ns=-1.0, domain="clka",
            )


class TestIrDerates:
    def test_derates_from_ir(self, env):
        design, dm, sta = env
        model = GridModel.calibrated(design, nx=12, ny=12)
        calc = ScapCalculator(design, "clka")
        rng = np.random.default_rng(0)
        v1 = {fi: int(rng.integers(2)) for fi in range(design.netlist.n_flops)}
        timing = calc.simulate_pattern(v1)
        ir = dynamic_ir_for_pattern(model, timing)
        gate_d, flop_d = derates_from_ir(ir, ElectricalEnv())
        assert (gate_d >= 1.0).all()
        assert gate_d.max() == pytest.approx(
            1.0 + 0.9 * ir.gate_droop_v.max()
        )
        # IR-derated STA is never more optimistic than nominal.
        nominal = sta.analyze()
        derated = sta.analyze(gate_derate=gate_d, flop_derate=flop_d)
        assert derated.worst_slack_ns <= nominal.worst_slack_ns + 1e-9
