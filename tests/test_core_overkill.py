"""Tests for the overkill (IR-induced false failure) analysis."""

from __future__ import annotations

import pytest

from repro import CaseStudy
from repro.core import overkill_analysis
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def study():
    return CaseStudy(scale="tiny", seed=2007, backtrack_limit=60)


@pytest.fixture(scope="module")
def fast_period(study):
    """A faster-than-at-speed period that the sampled conventional
    patterns meet nominally (with a thin margin)."""
    report = overkill_analysis(
        study.calculator, study.model,
        study.conventional().pattern_set, sample=10,
    )
    # All patterns pass at the nominal period...
    assert report.n_at_risk == 0
    assert all(not p.nominal_failures for p in report.patterns)
    # ...so pick a period that every sampled pattern meets nominally but
    # where at least one pattern's IR-scaled delay no longer fits:
    # just above the worst *nominal* endpoint delay.
    worst_nominal = max(p.worst_nominal_ns for p in report.patterns)
    return worst_nominal + report.setup_ns + 0.05


class TestOverkill:
    def test_no_overkill_at_speed(self, study):
        report = overkill_analysis(
            study.calculator, study.model,
            study.conventional().pattern_set, sample=8,
        )
        assert report.risk_fraction == 0.0

    def test_overkill_appears_when_overclocked(self, study, fast_period):
        report = overkill_analysis(
            study.calculator, study.model,
            study.conventional().pattern_set, sample=10,
            period_ns=fast_period,
        )
        # The thin margin survives nominally but not under IR-drop.
        assert all(not p.nominal_failures for p in report.patterns)
        assert report.n_at_risk > 0
        assert report.total_overkill_endpoints() > 0

    def test_staged_patterns_less_overkill(self, study, fast_period):
        conv = overkill_analysis(
            study.calculator, study.model,
            study.conventional().pattern_set, sample=10,
            period_ns=fast_period,
        )
        stag = overkill_analysis(
            study.calculator, study.model,
            study.staged().pattern_set, sample=10,
            period_ns=fast_period,
        )
        # Quieter patterns droop less; they cannot be *more* at risk per
        # overkill endpoint count at the same period.
        assert (
            stag.total_overkill_endpoints()
            <= conv.total_overkill_endpoints()
        )

    def test_bad_period_rejected(self, study):
        with pytest.raises(ConfigError):
            overkill_analysis(
                study.calculator, study.model,
                study.conventional().pattern_set, sample=2,
                period_ns=0.05,
            )
        with pytest.raises(ConfigError):
            overkill_analysis(
                study.calculator, study.model,
                study.conventional().pattern_set, sample=2,
                setup_ns=-1.0,
            )
