"""Cross-cutting property-based tests (hypothesis).

Invariants that tie layers together: trail-undo correctness of the
implication engine, fill completeness, energy bookkeeping of the timing
engines, and grid-solver physics.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.faults import STR, TransitionFault, build_fault_universe
from repro.atpg.fill import apply_fill
from repro.atpg.twoframe import TwoFrameState
from repro.power import ScapCalculator
from repro.sim import DelayModel, EventTimingSim, LogicSim
from repro.soc import build_turbo_eagle
from repro.soc.floorplan import make_turbo_eagle_floorplan
from repro.pgrid.grid import PowerGrid

_DESIGN = build_turbo_eagle("tiny", seed=77)
_N_FLOPS = _DESIGN.netlist.n_flops


class TestTrailUndo:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=_N_FLOPS - 1),
                st.integers(min_value=0, max_value=1),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_assign_then_undo_is_identity(self, data):
        """Any assignment sequence fully undone restores the post-fault
        baseline state byte for byte."""
        state = TwoFrameState(_DESIGN.netlist, "clka")
        fault = build_fault_universe(_DESIGN.netlist)[3]
        state.set_fault(fault)
        f1_before = list(state.f1)
        g2_before = list(state.g2)
        f2_before = list(state.f2)
        d_before = set(state.d_nets)
        mark = state.mark()
        assigned = set()
        for flop, bit in data:
            if flop in assigned:
                continue
            state.assign(flop, bit)
            assigned.add(flop)
        state.undo_to(mark)
        assert state.f1 == f1_before
        assert state.g2 == g2_before
        assert state.f2 == f2_before
        assert state.d_nets == d_before
        assert state.v1 == {}

    @settings(max_examples=20, deadline=None)
    @given(
        flop=st.integers(min_value=0, max_value=_N_FLOPS - 1),
        bit=st.integers(min_value=0, max_value=1),
    )
    def test_implication_matches_fresh_state(self, flop, bit):
        """Incremental implication == assigning on a fresh state."""
        fault = build_fault_universe(_DESIGN.netlist)[10]
        s1 = TwoFrameState(_DESIGN.netlist, "clka")
        s1.set_fault(fault)
        mark = s1.mark()
        # dirty it up then roll back
        s1.assign((flop + 1) % _N_FLOPS, 1 - bit)
        s1.undo_to(mark)
        s1.assign(flop, bit)

        s2 = TwoFrameState(_DESIGN.netlist, "clka")
        s2.set_fault(fault)
        s2.assign(flop, bit)
        assert s1.f1 == s2.f1
        assert s1.g2 == s2.g2
        assert s1.f2 == s2.f2


class TestFillProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        cube_bits=st.dictionaries(
            st.integers(min_value=0, max_value=_N_FLOPS - 1),
            st.integers(min_value=0, max_value=1),
            max_size=12,
        ),
        policy=st.sampled_from(["0", "1", "adjacent"]),
    )
    def test_fill_is_complete_and_respects_care_bits(self, cube_bits, policy):
        v1 = apply_fill(cube_bits, _N_FLOPS, policy, scan=_DESIGN.scan)
        assert v1.shape == (_N_FLOPS,)
        assert set(np.unique(v1)).issubset({0, 1})
        for flop, bit in cube_bits.items():
            assert v1[flop] == bit

    @settings(max_examples=20, deadline=None)
    @given(
        cube_bits=st.dictionaries(
            st.integers(min_value=0, max_value=_N_FLOPS - 1),
            st.integers(min_value=0, max_value=1),
            max_size=12,
        )
    )
    def test_deterministic_fills_are_deterministic(self, cube_bits):
        for policy in ("0", "1", "adjacent"):
            a = apply_fill(cube_bits, _N_FLOPS, policy, scan=_DESIGN.scan)
            b = apply_fill(cube_bits, _N_FLOPS, policy, scan=_DESIGN.scan)
            assert (a == b).all()


class TestEnergyBookkeeping:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_event_energy_equals_toggle_weighted_caps(self, seed):
        """Total energy == sum over nets of toggles * C * VDD^2, and the
        per-block split sums to at most the total (glue excluded)."""
        calc = ScapCalculator(_DESIGN, "clka")
        rng = np.random.default_rng(seed)
        v1 = {fi: int(rng.integers(2)) for fi in range(_N_FLOPS)}
        result = calc.simulate_pattern(v1)
        caps = _DESIGN.parasitics.net_cap_ff
        expected = float((result.toggles * caps).sum()) * 1.8 * 1.8
        assert result.energy_fj_total == pytest.approx(expected)
        assert sum(result.energy_fj_by_block.values()) <= (
            result.energy_fj_total + 1e-6
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_last_arrival_bounded_by_stw(self, seed):
        calc = ScapCalculator(_DESIGN, "clka")
        rng = np.random.default_rng(seed)
        v1 = {fi: int(rng.integers(2)) for fi in range(_N_FLOPS)}
        result = calc.simulate_pattern(v1)
        finite = result.last_arrival_ns[~np.isnan(result.last_arrival_ns)]
        if finite.size:
            assert finite.max() == pytest.approx(result.stw_ns)
            assert (finite >= 0).all()


class TestGridPhysics:
    @settings(max_examples=15, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=63),
        b=st.integers(min_value=0, max_value=63),
        ia=st.floats(min_value=1e-5, max_value=1e-2),
        ib=st.floats(min_value=1e-5, max_value=1e-2),
    )
    def test_superposition(self, a, b, ia, ib):
        fp = make_turbo_eagle_floorplan(300.0)
        grid = PowerGrid(fp, nx=8, ny=8, seg_res_ohm=10.0)
        inj_a = np.zeros(64)
        inj_a[a] = ia
        inj_b = np.zeros(64)
        inj_b[b] = ib
        combined = grid.drop_v(inj_a + inj_b)
        parts = grid.drop_v(inj_a) + grid.drop_v(inj_b)
        assert np.allclose(combined, parts, atol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(node=st.integers(min_value=0, max_value=63))
    def test_all_drops_nonnegative(self, node):
        fp = make_turbo_eagle_floorplan(300.0)
        grid = PowerGrid(fp, nx=8, ny=8, seg_res_ohm=10.0)
        inj = np.zeros(64)
        inj[node] = 1e-3
        drop = grid.drop_v(inj)
        assert (drop >= -1e-12).all()
        assert drop[node] == pytest.approx(drop.max())
