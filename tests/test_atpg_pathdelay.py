"""Tests for path-delay fault test generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg import (
    PathTestStatus,
    StructuralPath,
    generate_path_test,
    longest_path_tests,
    path_from_endpoint,
)
from repro.atpg.twoframe import TwoFrameState
from repro.errors import AtpgError
from repro.netlist import Netlist
from repro.netlist.cells import controlling_value
from repro.sim import DelayModel, LogicSim, StaticTimingAnalyzer, loc_launch_capture
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def design():
    return build_turbo_eagle("tiny", seed=47)


@pytest.fixture(scope="module")
def sta(design):
    dm = DelayModel(design.netlist, design.parasitics)
    analyzer = StaticTimingAnalyzer(
        design.netlist, dm, design.clock_trees["clka"],
        period_ns=20.0, domain="clka",
    )
    analyzer.analyze()
    return analyzer


class TestPathExtraction:
    def test_path_from_worst_endpoint(self, design, sta):
        report = sta.analyze()
        endpoint = report.worst_endpoints(1)[0]
        path = path_from_endpoint(design.netlist, sta, endpoint)
        assert path is not None
        nets = path.nets(design.netlist)
        # Path is structurally connected: each gate reads the previous
        # net.
        for gi, prev in zip(path.gates, nets):
            assert prev in design.netlist.gates[gi].inputs
        # Ends at the endpoint's D net.
        assert nets[-1] == design.netlist.flops[endpoint.flop].d

    def test_describe(self, design, sta):
        report = sta.analyze()
        path = path_from_endpoint(
            design.netlist, sta, report.worst_endpoints(1)[0]
        )
        text = path.describe(design.netlist)
        assert "->" in text


class TestPathTestGeneration:
    def _pipeline(self):
        nl = Netlist("pp")
        q0 = nl.add_net("q0")
        q1 = nl.add_net("q1")
        mid = nl.add_net("mid")
        d0 = nl.add_net("d0")
        d1 = nl.add_net("d1")
        g_and = nl.add_gate("g_and", "AND2X1", [q0, q1], mid)
        g_buf = nl.add_gate("g_buf", "BUFX2", [mid], d0)
        nl.add_gate("g_inv", "INVX1", [q0], d1)
        nl.add_flop("f0", "SDFFX1", d=d0, q=q0, clock_domain="clka",
                    is_scan=True)
        nl.add_flop("f1", "SDFFX1", d=d1, q=q1, clock_domain="clka",
                    is_scan=True)
        return nl, q1, (g_and, g_buf)

    def test_simple_pipeline_fall_path(self):
        """Hand-built circuit: the falling transition through the AND
        is non-robustly testable (side input q0 launches to 1)."""
        nl, src, gates = self._pipeline()
        state = TwoFrameState(nl, "clka")
        path = StructuralPath(source=src, gates=gates)
        result = generate_path_test(state, path, "fall")
        assert result.success
        cube = result.cube
        sim = LogicSim(nl)
        v1 = {0: cube.get(0, 0), 1: cube.get(1, 0)}
        cyc = loc_launch_capture(sim, v1, "clka")
        assert v1[1] == 1                # fall: source starts at 1
        assert cyc.launch_state[1] == 0  # and launches to 0
        assert cyc.launch_state[0] == 1  # q0 non-controlling in frame 2

    def test_simple_pipeline_rise_is_untestable(self):
        """The rising transition through the same path is provably
        untestable: launching q1 to 1 requires frame-1 q0 = 0, which
        forces the frame-2 side input q0 = AND(0, x) = 0 (controlling).
        The engine proves the conflict rather than aborting."""
        nl, src, gates = self._pipeline()
        state = TwoFrameState(nl, "clka")
        path = StructuralPath(source=src, gates=gates)
        result = generate_path_test(state, path, "rise")
        assert result.status is PathTestStatus.UNTESTABLE

    def test_bad_transition_rejected(self, design):
        state = TwoFrameState(design.netlist, "clka")
        path = StructuralPath(source=design.netlist.flops[0].q, gates=())
        with pytest.raises(AtpgError):
            generate_path_test(state, path, "wiggle")

    def test_sta_paths_are_mostly_false_paths(self, design, sta):
        """The classic false-path phenomenon: STA's structural worst
        paths run through logic blocked by constant PIs / held enables,
        so their non-robust tests are *proven* untestable (not merely
        aborted)."""
        state = TwoFrameState(design.netlist, "clka")
        results = longest_path_tests(design.netlist, sta, state, k=6)
        assert results, "no paths extracted"
        proven = [
            r for _p, r in results
            if r.status is PathTestStatus.UNTESTABLE
        ]
        assert len(proven) >= len(results) // 2

    def _simulated_paths(self, design, calculator, patterns, n=12):
        import math

        from repro.atpg import path_from_timing

        nl = design.netlist
        paths = []
        for pattern in list(patterns)[:n]:
            timing = calculator.simulate_pattern(pattern.v1_dict())
            eps = [
                (fi, float(timing.last_arrival_ns[nl.flops[fi].d]))
                for fi in calculator.launch_time
            ]
            eps = [(fi, a) for fi, a in eps if not math.isnan(a)]
            if not eps:
                continue
            worst = max(eps, key=lambda t: t[1])[0]
            path = path_from_timing(nl, timing, worst)
            if path is not None and path.gates:
                paths.append(path)
        return paths

    def test_simulated_paths_are_testable(self, design):
        """Paths extracted from real pattern simulations are
        sensitizable by construction: most get non-robust tests."""
        from repro.power import ScapCalculator
        from repro.atpg import AtpgEngine

        calc = ScapCalculator(design, "clka")
        engine = AtpgEngine(design.netlist, "clka", scan=design.scan,
                            seed=5)
        patterns = engine.run(fill="random", max_patterns=14).pattern_set
        paths = self._simulated_paths(design, calc, patterns)
        assert paths, "no simulated paths extracted"
        state = TwoFrameState(design.netlist, "clka")
        outcomes = []
        for path in paths:
            for transition in ("rise", "fall"):
                result = generate_path_test(state, path, transition,
                                            max_backtracks=150)
                outcomes.append((path, result))
                if result.success:
                    break
        successes = [(p, r) for p, r in outcomes if r.success]
        assert len(successes) >= max(1, len(paths) // 3)

        # Property: every successful cube really sensitizes the path's
        # controlled side inputs in frame 2.
        sim = LogicSim(design.netlist)
        netlist = design.netlist
        checked = 0
        for path, result in successes:
            v1 = {fi: result.cube.get(fi, 0)
                  for fi in range(netlist.n_flops)}
            cyc = loc_launch_capture(sim, v1, "clka")
            path_nets = set(path.nets(netlist))
            for gi in path.gates:
                gate = netlist.gates[gi]
                ctrl = controlling_value(gate.kind)
                if ctrl is None:
                    continue
                for p in gate.inputs:
                    if p not in path_nets:
                        assert (cyc.frame2[p] & 1) == 1 - ctrl
                        checked += 1
        assert checked > 0
