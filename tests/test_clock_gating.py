"""Tests for the ideal clock-gating power model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pgrid import GridModel, dynamic_ir_for_pattern
from repro.power import (
    ScapCalculator,
    active_clock_buffers,
    clock_tree_cycle_energy_fj,
    gated_clock_buffer_energies_fj,
)
from repro.soc import build_turbo_eagle


@pytest.fixture(scope="module")
def env():
    design = build_turbo_eagle("tiny", seed=127)
    model = GridModel.build(design, nx=12, ny=12, seg_res_ohm=120.0)
    calc = ScapCalculator(design, "clka")
    return design, model, calc


class TestActiveBuffers:
    def test_no_activity_no_buffers(self, env):
        design, _m, _c = env
        tree = design.clock_trees["clka"]
        assert active_clock_buffers(tree, set()) == set()

    def test_one_flop_activates_its_path(self, env):
        design, _m, _c = env
        tree = design.clock_trees["clka"]
        fi = next(iter(tree.leaf_of_flop))
        active = active_clock_buffers(tree, {fi})
        path = set(tree.path_to_root(tree.leaf_of_flop[fi]))
        assert active == path
        assert 0 in active  # root always on the path

    def test_all_flops_activate_everything_reachable(self, env):
        design, _m, _c = env
        tree = design.clock_trees["clka"]
        active = active_clock_buffers(tree, set(tree.leaf_of_flop))
        # Every leaf path is covered; spine buffers included.
        for fi, leaf in tree.leaf_of_flop.items():
            assert set(tree.path_to_root(leaf)) <= active

    def test_gated_energy_bounded_by_ungated(self, env):
        design, _m, _c = env
        tree = design.clock_trees["clka"]
        some = list(tree.leaf_of_flop)[:3]
        gated = gated_clock_buffer_energies_fj(tree, some)
        total_gated = sum(gated.values())
        total_full = clock_tree_cycle_energy_fj(tree, edges=1)
        assert 0 < total_gated < total_full


class TestGatedDynamicIr:
    def test_quiet_pattern_draws_no_clock_current(self, env):
        design, model, calc = env
        quiet = {fi: 0 for fi in range(design.netlist.n_flops)}
        timing = calc.simulate_pattern(quiet)
        ungated = dynamic_ir_for_pattern(model, timing)
        gated = dynamic_ir_for_pattern(model, timing, clock_gating=True)
        # Only the two ungated bus registers launch, so almost the whole
        # tree gates off and the drop falls measurably.  (The residual
        # drop comes from those launches' own logic + live clock path.)
        assert gated.worst_vdd_v < 0.9 * ungated.worst_vdd_v

    def test_active_pattern_similar_either_way(self, env):
        design, model, calc = env
        rng = np.random.default_rng(0)
        noisy = {fi: int(rng.integers(2))
                 for fi in range(design.netlist.n_flops)}
        timing = calc.simulate_pattern(noisy)
        ungated = dynamic_ir_for_pattern(model, timing)
        gated = dynamic_ir_for_pattern(model, timing, clock_gating=True)
        assert gated.worst_vdd_v <= ungated.worst_vdd_v + 1e-12
        assert gated.worst_vdd_v > 0.5 * ungated.worst_vdd_v
