#!/usr/bin/env python
"""Mypy strictness ratchet lint.

Packages that have been brought up to strict mypy must never silently
fall back to the permissive global gate: once a package earns a strict
override block in ``pyproject.toml``, removing (or watering down) that
block is a CI failure, not a quiet regression.

The floor below lists every module pattern that is currently strict.
For each one this script checks that ``pyproject.toml`` still carries a
``[[tool.mypy.overrides]]`` block naming it with ``ignore_errors =
false`` and all of the strictness settings in :data:`STRICT_SETTINGS`
set to ``true``.  Growing the floor is encouraged (add the new package
here *and* in pyproject); shrinking it requires editing this file,
which is the point — the ratchet only turns one way.

The file is parsed textually because the repo supports Python 3.9,
which has no ``tomllib``.  The parser only understands the subset of
TOML that mypy override blocks actually use (``[[...]]`` array headers,
``key = value`` lines, single-line string arrays), which is all it
needs.

Usage: ``python tools/strict_ratchet.py`` — exits 0 when the floor
holds, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List

#: Module patterns that must stay under strict mypy.  Append-only.
STRICT_FLOOR = [
    "repro.drc.*",
    "repro.obs.*",
    "repro.core.scheduling.*",
    "repro.context",
    "repro.service.*",
    "repro.timing.*",
]

#: Settings every strict override block must carry, with the value the
#: ratchet demands.
STRICT_SETTINGS = {
    "ignore_errors": False,
    "disallow_untyped_defs": True,
    "disallow_incomplete_defs": True,
    "check_untyped_defs": True,
    "no_implicit_optional": True,
    "warn_return_any": True,
    "warn_unused_ignores": True,
}

_HEADER = re.compile(r"^\[\[tool\.mypy\.overrides\]\]\s*$")
_ANY_HEADER = re.compile(r"^\[")
_KEY_VALUE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*=\s*(.+?)\s*$")


def _parse_value(raw: str) -> object:
    """Decode the few TOML value shapes override blocks use."""
    raw = raw.strip()
    if raw == "true":
        return True
    if raw == "false":
        return False
    if raw.startswith("[") and raw.endswith("]"):
        inner = raw[1:-1].strip()
        if not inner:
            return []
        return [
            part.strip().strip("\"'")
            for part in inner.split(",")
            if part.strip()
        ]
    return raw.strip("\"'")


def parse_override_blocks(text: str) -> List[Dict[str, object]]:
    """All ``[[tool.mypy.overrides]]`` blocks as key/value dicts."""
    blocks: List[Dict[str, object]] = []
    current: Dict[str, object] = {}
    in_block = False
    for line in text.splitlines():
        stripped = line.split("#", 1)[0].rstrip()
        if not stripped:
            continue
        if _HEADER.match(stripped):
            if in_block:
                blocks.append(current)
            current, in_block = {}, True
            continue
        if _ANY_HEADER.match(stripped):
            if in_block:
                blocks.append(current)
            current, in_block = {}, False
            continue
        if in_block:
            match = _KEY_VALUE.match(stripped)
            if match:
                current[match.group(1)] = _parse_value(match.group(2))
    if in_block:
        blocks.append(current)
    return blocks


def _modules_of(block: Dict[str, object]) -> List[str]:
    module = block.get("module")
    if isinstance(module, str):
        return [module]
    if isinstance(module, list):
        return [str(m) for m in module]
    return []


def check_floor(text: str) -> List[str]:
    """Return one message per floor violation (empty when clean)."""
    blocks = parse_override_blocks(text)
    by_module: Dict[str, Dict[str, object]] = {}
    for block in blocks:
        for module in _modules_of(block):
            by_module[module] = block
    problems: List[str] = []
    for pattern in STRICT_FLOOR:
        block = by_module.get(pattern)
        if block is None:
            problems.append(
                f"{pattern}: no [[tool.mypy.overrides]] block names it "
                "— the package fell back to the permissive global gate"
            )
            continue
        for key, required in STRICT_SETTINGS.items():
            actual = block.get(key)
            if actual != required:
                problems.append(
                    f"{pattern}: {key} is {actual!r}, the strict floor "
                    f"requires {required!r}"
                )
    return problems


def main(argv: List[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    pyproject = root / "pyproject.toml"
    if len(argv) > 1:
        pyproject = Path(argv[1])
    problems = check_floor(pyproject.read_text())
    if problems:
        for problem in problems:
            print(f"strict-ratchet: {problem}", file=sys.stderr)
        print(
            f"strict-ratchet: FAIL — {len(problems)} violation(s); "
            "strict mypy coverage only ratchets up "
            "(see tools/strict_ratchet.py)",
            file=sys.stderr,
        )
        return 1
    print(
        "strict-ratchet: OK — "
        f"{len(STRICT_FLOOR)} package pattern(s) held strict"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
