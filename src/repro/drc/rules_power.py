"""Power rule family: static SCAP pre-screen and grid hot spots.

=========  =========  ===================================================
rule id    severity   checks
=========  =========  ===================================================
PWR-SCAP   WARN/INFO  static per-block SCAP upper bound vs the per-block
                      thresholds — WARN when a block *could* exceed its
                      limit (needs the full noise-aware treatment), INFO
                      when it provably cannot (power simulation can be
                      skipped for it)
PWR-HOT    WARN/INFO  power-density hot spots far from the pad ring,
                      with the floorplan adjacency that compounds the
                      droop (statistical vectorless power, no
                      simulation)
=========  =========  ===================================================

Both rules are WARN-at-worst by design: power findings steer the flow
(which blocks to watch, which to skip) rather than reject the netlist.
Neither runs a timing simulation — PWR-SCAP uses the structural bound
of :class:`~repro.power.static_bound.StaticScapBound`, PWR-HOT the
vectorless statistical model.
"""

from __future__ import annotations

from typing import List

from .context import DrcContext
from .registry import DrcRule
from .violation import INFO, WARN, Violation

#: A block is "hot" when its power density exceeds the chip average by
#: this factor (B5 in the paper sits around 1.4x).
HOT_DENSITY_FACTOR = 1.25

#: ... and "deep" when its centre is farther than this fraction of the
#: short chip edge from the pad ring (IR drop grows with pad distance).
DEEP_FRACTION = 0.2


def rule_pwr_scap(ctx: DrcContext) -> List[Violation]:
    from ..power.static_bound import StaticScapBound

    assert ctx.design is not None and ctx.thresholds_mw is not None
    bound = StaticScapBound(ctx.design, domain=ctx.domain)
    screen = bound.screen_blocks(ctx.thresholds_mw)
    out: List[Violation] = []
    for block in sorted(screen):
        row = screen[block]
        if row["provably_safe"]:
            out.append(
                Violation(
                    rule_id="PWR-SCAP",
                    severity=INFO,
                    message=(
                        f"block {block}: static SCAP upper bound "
                        f"{row['bound_mw']:.3f} mW is below the "
                        f"{row['threshold_mw']:.3f} mW threshold — no "
                        f"pattern can violate it; power simulation can "
                        f"be skipped for this block"
                    ),
                    location={
                        "block": block,
                        "bound_mw": round(row["bound_mw"], 6),
                        "threshold_mw": round(row["threshold_mw"], 6),
                    },
                )
            )
        else:
            out.append(
                Violation(
                    rule_id="PWR-SCAP",
                    severity=WARN,
                    message=(
                        f"block {block}: static SCAP upper bound "
                        f"{row['bound_mw']:.3f} mW exceeds the "
                        f"{row['threshold_mw']:.3f} mW threshold — "
                        f"patterns can overdrive this block; route them "
                        f"through the noise-aware screen"
                    ),
                    location={
                        "block": block,
                        "bound_mw": round(row["bound_mw"], 6),
                        "threshold_mw": round(row["threshold_mw"], 6),
                    },
                    fix_hint=(
                        "use power-aware fill (0-fill/adjacent) and "
                        "per-pattern SCAP grading for patterns touching "
                        "this block"
                    ),
                )
            )
    return out


def rule_pwr_hot(ctx: DrcContext) -> List[Violation]:
    from ..power.statistical import statistical_block_power

    assert ctx.design is not None
    design = ctx.design
    floorplan = design.floorplan
    stats = statistical_block_power(
        design, domain=ctx.domain, window_fraction=0.5
    )
    densities = {}
    total_power = 0.0
    total_area = 0.0
    for block, stat in stats.items():
        area = floorplan.region(block).area
        densities[block] = stat.avg_power_mw / area if area else 0.0
        total_power += stat.avg_power_mw
        total_area += area
    if total_area <= 0.0 or total_power <= 0.0:
        return []
    chip_density = total_power / total_area
    deep_limit = DEEP_FRACTION * min(floorplan.width, floorplan.height)
    adjacency = floorplan.adjacency()
    out: List[Violation] = []
    for block in sorted(densities):
        density = densities[block]
        if density <= HOT_DENSITY_FACTOR * chip_density:
            continue
        cx, cy = floorplan.region(block).center
        depth = floorplan.distance_to_periphery(cx, cy)
        hot_neighbors = [
            n
            for n in adjacency.get(block, [])
            if densities.get(n, 0.0) > chip_density
        ]
        deep = depth > deep_limit
        neighbor_note = (
            f"; adjacent above-average blocks {hot_neighbors} compound "
            f"the droop"
            if hot_neighbors
            else ""
        )
        out.append(
            Violation(
                rule_id="PWR-HOT",
                severity=WARN if deep else INFO,
                message=(
                    f"block {block} is a power-grid hot spot: density "
                    f"{density / chip_density:.2f}x the chip average, "
                    f"centre {depth:.0f} um from the pad ring"
                    + neighbor_note
                ),
                location={
                    "block": block,
                    "density_ratio": round(density / chip_density, 3),
                    "depth_um": round(depth, 1),
                    "hot_neighbors": hot_neighbors,
                },
                fix_hint=(
                    "expect the worst IR drop here (the paper's B5); "
                    "tighten this block's SCAP threshold or add grid "
                    "straps"
                ),
            )
        )
    return out


RULES = [
    DrcRule(
        "PWR-SCAP",
        "power",
        WARN,
        "static SCAP upper-bound pre-screen",
        rule_pwr_scap,
        requires=("design", "thresholds"),
    ),
    DrcRule(
        "PWR-HOT",
        "power",
        WARN,
        "power-grid hot-spot adjacency",
        rule_pwr_hot,
        requires=("design",),
    ),
]
