"""Scan/DFT rule family: chain integrity and shiftability.

==========  ========  ===================================================
rule id     severity  checks
==========  ========  ===================================================
SCN-FIELD   ERROR     flop chain/chain_pos metadata self-consistency
SCN-CHAIN   ERROR     broken / non-traversable chains (bad refs,
                      duplicates, shift-order gaps, metadata mismatch)
SCN-ORPHAN  WARN      scan cells outside every chain (untestable)
SCN-EDGE    ERROR     mixed or mislabelled shift-clock edges in a chain
SCN-LOCKUP  WARN      domain crossings inside a chain needing lockup
                      latches
SCN-STIL    WARN      STIL/protocol export consistency (chain index
                      density, edge tokens, membership map)
==========  ========  ===================================================

SCN-FIELD needs only flop metadata; the rest need a scan configuration
(from the design, or reconstructed from chain fields) and are skipped
without one.
"""

from __future__ import annotations

from typing import Dict, List

from .context import DrcContext
from .registry import DrcRule
from .violation import ERROR, WARN, Violation


def rule_scn_field(ctx: DrcContext) -> List[Violation]:
    out: List[Violation] = []
    for flop in ctx.netlist.flops:
        if (flop.chain is None) != (flop.chain_pos is None):
            out.append(
                Violation(
                    rule_id="SCN-FIELD",
                    severity=ERROR,
                    message=(
                        f"flop {flop.name!r} has inconsistent chain "
                        f"assignment (chain={flop.chain}, "
                        f"chain_pos={flop.chain_pos})"
                    ),
                    location={"instance": flop.name, "block": flop.block},
                    fix_hint="set both chain and chain_pos, or neither",
                )
            )
        if flop.chain is not None and not flop.is_scan:
            out.append(
                Violation(
                    rule_id="SCN-FIELD",
                    severity=ERROR,
                    message=(
                        f"flop {flop.name!r} is on chain {flop.chain} but "
                        f"is not a scan cell"
                    ),
                    location={
                        "instance": flop.name,
                        "chain": flop.chain,
                        "block": flop.block,
                    },
                    fix_hint=(
                        "swap the cell for its scan variant or drop it "
                        "from the chain"
                    ),
                )
            )
    return out


def rule_scn_chain(ctx: DrcContext) -> List[Violation]:
    out: List[Violation] = []
    nl = ctx.netlist
    assert ctx.scan is not None  # guaranteed by requires=("scan",)
    seen_in: Dict[int, int] = {}
    for chain in ctx.scan.chains:
        if not chain.flops:
            out.append(
                Violation(
                    rule_id="SCN-CHAIN",
                    severity=ERROR,
                    message=f"chain {chain.index} is empty",
                    location={"chain": chain.index},
                    fix_hint="remove the chain or assign cells to it",
                )
            )
            continue
        positions: List[int] = []
        for pos, fi in enumerate(chain.flops):
            if not 0 <= fi < nl.n_flops:
                out.append(
                    Violation(
                        rule_id="SCN-CHAIN",
                        severity=ERROR,
                        message=(
                            f"chain {chain.index} position {pos} references "
                            f"missing flop {fi}: chain is not traversable"
                        ),
                        location={"chain": chain.index, "position": pos},
                        fix_hint="rebuild the chain from existing cells",
                    )
                )
                continue
            if fi in seen_in:
                out.append(
                    Violation(
                        rule_id="SCN-CHAIN",
                        severity=ERROR,
                        message=(
                            f"flop {nl.flops[fi].name!r} appears in chain "
                            f"{seen_in[fi]} and chain {chain.index}: shift "
                            f"paths collide"
                        ),
                        location={
                            "instance": nl.flops[fi].name,
                            "chains": [seen_in[fi], chain.index],
                        },
                        fix_hint="a cell belongs to exactly one chain",
                    )
                )
            else:
                seen_in[fi] = chain.index
            flop = nl.flops[fi]
            if flop.chain is not None and flop.chain != chain.index:
                out.append(
                    Violation(
                        rule_id="SCN-CHAIN",
                        severity=ERROR,
                        message=(
                            f"flop {flop.name!r} metadata says chain "
                            f"{flop.chain} but the scan config places it "
                            f"on chain {chain.index}"
                        ),
                        location={
                            "instance": flop.name,
                            "chain": chain.index,
                        },
                        fix_hint=(
                            "re-run chain insertion so metadata and "
                            "config agree"
                        ),
                    )
                )
            if flop.chain_pos is not None:
                positions.append(flop.chain_pos)
        expected = list(range(len(positions)))
        if positions and positions != expected:
            out.append(
                Violation(
                    rule_id="SCN-CHAIN",
                    severity=ERROR,
                    message=(
                        f"chain {chain.index} shift order is broken: "
                        f"positions {positions[:10]} do not form "
                        f"0..{len(positions) - 1} along the chain"
                    ),
                    location={"chain": chain.index},
                    fix_hint=(
                        "chain positions must be the consecutive shift "
                        "order starting at the scan-in cell"
                    ),
                )
            )
    return out


def rule_scn_orphan(ctx: DrcContext) -> List[Violation]:
    out: List[Violation] = []
    assert ctx.scan is not None
    in_chain = set(ctx.scan.chain_of_flop)
    for chain in ctx.scan.chains:
        in_chain.update(chain.flops)
    for fi in ctx.netlist.scan_flops:
        if fi in in_chain:
            continue
        flop = ctx.netlist.flops[fi]
        out.append(
            Violation(
                rule_id="SCN-ORPHAN",
                severity=WARN,
                message=(
                    f"scan cell {flop.name!r} is not on any chain: it can "
                    f"be neither loaded nor observed"
                ),
                location={"instance": flop.name, "block": flop.block},
                fix_hint="assign the cell to a chain or unscan it",
            )
        )
    return out


def rule_scn_edge(ctx: DrcContext) -> List[Violation]:
    out: List[Violation] = []
    nl = ctx.netlist
    assert ctx.scan is not None
    for chain in ctx.scan.chains:
        edges = {
            nl.flops[fi].edge
            for fi in chain.flops
            if 0 <= fi < nl.n_flops
        }
        if not edges:
            continue
        if len(edges) > 1:
            out.append(
                Violation(
                    rule_id="SCN-EDGE",
                    severity=ERROR,
                    message=(
                        f"chain {chain.index} mixes clock edges "
                        f"{sorted(edges)}: shifting races through the "
                        f"inverted segment"
                    ),
                    location={"chain": chain.index, "edges": sorted(edges)},
                    fix_hint=(
                        "keep negative-edge cells on their own chain "
                        "(or order them ahead of the positive-edge "
                        "segment)"
                    ),
                )
            )
        elif chain.edge not in edges:
            out.append(
                Violation(
                    rule_id="SCN-EDGE",
                    severity=ERROR,
                    message=(
                        f"chain {chain.index} is declared {chain.edge!r} "
                        f"but its cells clock on {sorted(edges)[0]!r}"
                    ),
                    location={"chain": chain.index, "edge": chain.edge},
                    fix_hint="fix the chain's declared shift edge",
                )
            )
    return out


def rule_scn_lockup(ctx: DrcContext) -> List[Violation]:
    out: List[Violation] = []
    nl = ctx.netlist
    assert ctx.scan is not None
    by_chain: Dict[int, List[int]] = {}
    for chain_index, pos, _up, _dn in ctx.scan.domain_crossings(nl):
        by_chain.setdefault(chain_index, []).append(pos)
    for chain_index, positions in sorted(by_chain.items()):
        shown = positions[:6]
        out.append(
            Violation(
                rule_id="SCN-LOCKUP",
                severity=WARN,
                message=(
                    f"chain {chain_index} crosses clock domains at "
                    f"{len(positions)} shift position(s) "
                    f"(e.g. {shown}): lockup latches needed for safe "
                    f"shifting"
                ),
                location={
                    "chain": chain_index,
                    "n_crossings": len(positions),
                    "positions": shown,
                },
                fix_hint=(
                    "insert a lockup latch at each crossing or "
                    "regroup the chain by clock domain"
                ),
            )
        )
    return out


def rule_scn_stil(ctx: DrcContext) -> List[Violation]:
    out: List[Violation] = []
    assert ctx.scan is not None
    scan = ctx.scan
    indexes = [c.index for c in scan.chains]
    if sorted(indexes) != list(range(len(indexes))):
        out.append(
            Violation(
                rule_id="SCN-STIL",
                severity=WARN,
                message=(
                    f"chain indexes {sorted(indexes)[:10]} are not dense "
                    f"0..{len(indexes) - 1}: STIL ScanStructures export "
                    f"is ambiguous"
                ),
                location={"indexes": sorted(indexes)[:10]},
                fix_hint="renumber chains consecutively from 0",
            )
        )
    for chain in scan.chains:
        if chain.edge not in ("pos", "neg"):
            out.append(
                Violation(
                    rule_id="SCN-STIL",
                    severity=WARN,
                    message=(
                        f"chain {chain.index} has edge token "
                        f"{chain.edge!r}: not a valid protocol edge"
                    ),
                    location={"chain": chain.index, "edge": chain.edge},
                    fix_hint="use 'pos' or 'neg'",
                )
            )
    membership: Dict[int, int] = {}
    for chain in scan.chains:
        for fi in chain.flops:
            membership.setdefault(fi, chain.index)
    for fi, chain_index in sorted(scan.chain_of_flop.items()):
        if membership.get(fi) != chain_index:
            out.append(
                Violation(
                    rule_id="SCN-STIL",
                    severity=WARN,
                    message=(
                        f"chain_of_flop maps flop {fi} to chain "
                        f"{chain_index} but the chain tables say "
                        f"{membership.get(fi)}: protocol tables disagree"
                    ),
                    location={"flop": fi, "chain": chain_index},
                    fix_hint="rebuild chain_of_flop from the chain lists",
                )
            )
    return out


RULES = [
    DrcRule(
        "SCN-FIELD",
        "scan",
        ERROR,
        "chain metadata consistency",
        rule_scn_field,
    ),
    DrcRule(
        "SCN-CHAIN",
        "scan",
        ERROR,
        "broken / non-traversable chain",
        rule_scn_chain,
        requires=("scan",),
    ),
    DrcRule(
        "SCN-ORPHAN",
        "scan",
        WARN,
        "scan cell outside every chain",
        rule_scn_orphan,
        requires=("scan",),
    ),
    DrcRule(
        "SCN-EDGE",
        "scan",
        ERROR,
        "shift-edge inversion in chain",
        rule_scn_edge,
        requires=("scan",),
    ),
    DrcRule(
        "SCN-LOCKUP",
        "scan",
        WARN,
        "lockup latch needed at domain crossing",
        rule_scn_lockup,
        requires=("scan",),
    ),
    DrcRule(
        "SCN-STIL",
        "scan",
        WARN,
        "STIL/protocol consistency",
        rule_scn_stil,
        requires=("scan",),
    ),
]
