"""Waiver files: reviewed exceptions to DRC violations.

A waiver file is JSON::

    {
      "waivers": [
        {"rule": "SCN-LOCKUP", "match": "chain 3", "reason": "lockup
         latches inserted downstream of this netlist snapshot"},
        {"rule": "CLK-*", "reason": "single-domain test mode"}
      ]
    }

``rule`` is an ``fnmatch`` pattern over rule ids; ``match`` (optional)
is a case-sensitive substring applied to the violation's message plus
location values.  A waived violation stays in the report but no longer
gates the flow.  Waivers that match nothing are reported so stale
entries are noticed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterable, List, Sequence

from ..errors import ConfigError
from .violation import Violation


@dataclass(frozen=True)
class Waiver:
    """One reviewed exception: which rule, which locations, and why."""

    rule: str
    match: str = ""
    reason: str = ""

    def covers(self, violation: Violation) -> bool:
        if not fnmatchcase(violation.rule_id, self.rule):
            return False
        return (not self.match) or self.match in violation.matches_text()

    def describe(self) -> str:
        scope = f" match={self.match!r}" if self.match else ""
        return f"{self.rule}{scope}: {self.reason or 'no reason given'}"


class WaiverSet:
    """An ordered collection of waivers plus application bookkeeping."""

    def __init__(self, waivers: Sequence[Waiver] = ()):
        self.waivers: List[Waiver] = list(waivers)

    def __len__(self) -> int:
        return len(self.waivers)

    def __iter__(self) -> "Iterable[Waiver]":
        return iter(self.waivers)

    def apply(self, violations: Iterable[Violation]) -> List[str]:
        """Mark covered violations waived; return used waiver summaries."""
        used: List[str] = []
        for waiver in self.waivers:
            hit = False
            for violation in violations:
                if not violation.waived and waiver.covers(violation):
                    violation.waived = True
                    violation.waived_reason = waiver.reason or waiver.describe()
                    hit = True
            if hit:
                used.append(waiver.describe())
        return used

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WaiverSet":
        entries = payload.get("waivers", payload)
        if not isinstance(entries, list):
            raise ConfigError(
                "waiver file must be a list or contain a 'waivers' list"
            )
        waivers: List[Waiver] = []
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict) or "rule" not in entry:
                raise ConfigError(
                    f"waiver entry {i} must be an object with a 'rule' key"
                )
            waivers.append(
                Waiver(
                    rule=str(entry["rule"]),
                    match=str(entry.get("match", "")),
                    reason=str(entry.get("reason", "")),
                )
            )
        return cls(waivers)


def load_waivers(path: str) -> WaiverSet:
    """Load a waiver JSON file (see module docstring for the format)."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot read waiver file {path!r}: {exc}") from exc
    return WaiverSet.from_dict(payload)
