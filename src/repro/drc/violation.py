"""Violation records and the structured DRC report.

A :class:`Violation` is one rule hit: machine-readable (rule id,
severity, location dict) and human-readable (message, fix hint) at the
same time, so the same record can gate a flow, land in a JSON artifact
and print as a review table.  :class:`DrcReport` aggregates a whole
run: every violation, which rules ran, which were skipped (and why),
and the waivers that were applied.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Severity levels, worst first.
ERROR = "ERROR"
WARN = "WARN"
INFO = "INFO"

SEVERITIES = (ERROR, WARN, INFO)

#: Numeric rank used for sorting and ``fail_on`` comparisons.
_SEVERITY_RANK: Dict[str, int] = {ERROR: 2, WARN: 1, INFO: 0}

#: ``fail_on`` values accepted by :meth:`DrcReport.gating_violations`.
FAIL_ON_CHOICES = ("error", "warn", "info", "never")


def severity_rank(severity: str) -> int:
    """Rank of a severity string (higher = worse); unknown ranks lowest."""
    return _SEVERITY_RANK.get(severity, -1)


@dataclass
class Violation:
    """One design-rule hit at one location.

    ``location`` is a small free-form dict (net/instance/chain/block
    names and similar) so downstream tools can filter without parsing
    the message; ``fix_hint`` tells a human what a passing design looks
    like.  A waived violation stays in the report (auditable) but never
    gates.
    """

    rule_id: str
    severity: str
    message: str
    location: Dict[str, Any] = field(default_factory=dict)
    fix_hint: str = ""
    waived: bool = False
    waived_reason: Optional[str] = None

    def matches_text(self) -> str:
        """The text waiver ``match`` patterns are applied against."""
        loc = " ".join(str(v) for v in self.location.values())
        return f"{self.message} {loc}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "location": dict(self.location),
            "fix_hint": self.fix_hint,
            "waived": self.waived,
            "waived_reason": self.waived_reason,
        }

    def __str__(self) -> str:
        flag = " (waived)" if self.waived else ""
        return f"[{self.rule_id}] {self.severity}{flag}: {self.message}"


@dataclass
class DrcReport:
    """Outcome of one DRC run over one design."""

    design_name: str
    violations: List[Violation] = field(default_factory=list)
    #: Rule ids that executed, in execution order.
    rules_run: List[str] = field(default_factory=list)
    #: Rule id -> reason it was skipped (missing scan config, etc.).
    rules_skipped: Dict[str, str] = field(default_factory=dict)
    #: Waiver descriptions that matched at least one violation.
    waivers_applied: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def by_severity(
        self, severity: str, include_waived: bool = False
    ) -> List[Violation]:
        return [
            v
            for v in self.violations
            if v.severity == severity and (include_waived or not v.waived)
        ]

    def errors(self, include_waived: bool = False) -> List[Violation]:
        return self.by_severity(ERROR, include_waived)

    def warnings(self, include_waived: bool = False) -> List[Violation]:
        return self.by_severity(WARN, include_waived)

    def infos(self, include_waived: bool = False) -> List[Violation]:
        return self.by_severity(INFO, include_waived)

    def by_rule(self, rule_id: str) -> List[Violation]:
        return [v for v in self.violations if v.rule_id == rule_id]

    def rule_ids_hit(self) -> List[str]:
        """Sorted ids of every rule with at least one violation."""
        return sorted({v.rule_id for v in self.violations})

    def counts(self) -> Dict[str, int]:
        """Unwaived violation count per severity."""
        out = {s: 0 for s in SEVERITIES}
        for v in self.violations:
            if not v.waived:
                out[v.severity] = out.get(v.severity, 0) + 1
        return out

    def gating_violations(self, fail_on: str = "error") -> List[Violation]:
        """Unwaived violations at or above the *fail_on* severity."""
        if fail_on == "never":
            return []
        floor = severity_rank(fail_on.upper())
        if floor < 0:
            raise ValueError(
                f"fail_on must be one of {FAIL_ON_CHOICES}, got {fail_on!r}"
            )
        return [
            v
            for v in self.violations
            if not v.waived and severity_rank(v.severity) >= floor
        ]

    def is_clean(self, fail_on: str = "error") -> bool:
        """True when nothing unwaived reaches the *fail_on* severity."""
        return not self.gating_violations(fail_on)

    # ------------------------------------------------------------------
    # serialisation / rendering
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        ordered = sorted(
            self.violations,
            key=lambda v: (-severity_rank(v.severity), v.rule_id),
        )
        return {
            "design": self.design_name,
            "clean": self.is_clean(),
            "counts": self.counts(),
            "violations": [v.to_dict() for v in ordered],
            "rules_run": list(self.rules_run),
            "rules_skipped": dict(self.rules_skipped),
            "waivers_applied": list(self.waivers_applied),
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(
            self.to_dict(), indent=indent, sort_keys=True, default=str
        )

    def save(self, path: str) -> str:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")
        return path

    def summary(self) -> Dict[str, Any]:
        """The compact record embedded in a flow's RunReport."""
        return {
            "design": self.design_name,
            "clean": self.is_clean(),
            "counts": self.counts(),
            "rules_hit": self.rule_ids_hit(),
            "n_waived": sum(1 for v in self.violations if v.waived),
        }

    def format_text(self, limit: int = 40) -> str:
        """Human-readable multi-line rendering (CLI output)."""
        counts = self.counts()
        lines = [
            f"DRC report for {self.design_name!r}: "
            f"{counts[ERROR]} error(s), {counts[WARN]} warning(s), "
            f"{counts[INFO]} info(s)"
            + (
                f", {sum(1 for v in self.violations if v.waived)} waived"
                if any(v.waived for v in self.violations)
                else ""
            )
        ]
        ordered = sorted(
            self.violations,
            key=lambda v: (-severity_rank(v.severity), v.rule_id),
        )
        for v in ordered[:limit]:
            lines.append(f"  {v}")
            if v.fix_hint and not v.waived:
                lines.append(f"      fix: {v.fix_hint}")
        if len(ordered) > limit:
            lines.append(f"  ... {len(ordered) - limit} more")
        if self.rules_skipped:
            skipped = ", ".join(
                f"{rid} ({why})" for rid, why in sorted(self.rules_skipped.items())
            )
            lines.append(f"  skipped: {skipped}")
        return "\n".join(lines)


def worst_severity(violations: Iterable[Violation]) -> Optional[str]:
    """Worst unwaived severity present, or None when all clean/waived."""
    worst: Optional[str] = None
    for v in violations:
        if v.waived:
            continue
        if worst is None or severity_rank(v.severity) > severity_rank(worst):
            worst = v.severity
    return worst
