"""Structural rule family: netlist graph integrity.

=========  ========  ====================================================
rule id    severity  checks
=========  ========  ====================================================
STR-LOOP   ERROR     combinational loops (with a concrete cycle)
STR-FLOAT  ERROR     floating gate inputs / flop D pins, undriven POs
STR-DRIVE  ERROR     multi-driver contention on a net
STR-DANGLE WARN      gate outputs that drive nothing
STR-CELL   ERROR     instances referencing cells missing from the library
=========  ========  ====================================================

All five work from the raw instance lists via the context's freeze-free
analyses, so they still fire on netlists too broken to levelise.
"""

from __future__ import annotations

from typing import List

from .context import DrcContext
from .registry import DrcRule
from .violation import ERROR, WARN, Violation


def rule_str_loop(ctx: DrcContext) -> List[Violation]:
    cycle = ctx.combinational_cycle()
    if cycle is None:
        return []
    stuck = ctx.stuck_gates()
    shown = " -> ".join(cycle[:8]) + (" -> ..." if len(cycle) > 8 else "")
    return [
        Violation(
            rule_id="STR-LOOP",
            severity=ERROR,
            message=(
                f"combinational loop through {shown} "
                f"({len(stuck)} gate(s) unplaceable)"
            ),
            location={"gates": cycle, "n_stuck": len(stuck)},
            fix_hint=(
                "break the cycle with a flop or remove the feedback "
                "path; ATPG and timing simulation need an acyclic "
                "combinational core"
            ),
        )
    ]


def rule_str_float(ctx: DrcContext) -> List[Violation]:
    out: List[Violation] = []
    nl = ctx.netlist
    driven = ctx.driven_nets()
    hint = "connect the net to a driver or tie cell"
    for gate in nl.gates:
        for pin, net in enumerate(gate.inputs):
            if net not in driven:
                out.append(
                    Violation(
                        rule_id="STR-FLOAT",
                        severity=ERROR,
                        message=(
                            f"gate {gate.name!r} pin {pin} reads floating "
                            f"net {ctx.net_name(net)!r}"
                        ),
                        location={
                            "instance": gate.name,
                            "pin": pin,
                            "net": ctx.net_name(net),
                            "block": gate.block,
                        },
                        fix_hint=hint,
                    )
                )
    for flop in nl.flops:
        if flop.d not in driven:
            out.append(
                Violation(
                    rule_id="STR-FLOAT",
                    severity=ERROR,
                    message=(
                        f"flop {flop.name!r} D pin reads floating net "
                        f"{ctx.net_name(flop.d)!r}"
                    ),
                    location={
                        "instance": flop.name,
                        "net": ctx.net_name(flop.d),
                        "block": flop.block,
                    },
                    fix_hint=hint,
                )
            )
    for net in nl.primary_outputs:
        if net not in driven:
            out.append(
                Violation(
                    rule_id="STR-FLOAT",
                    severity=ERROR,
                    message=(
                        f"primary output {ctx.net_name(net)!r} is undriven"
                    ),
                    location={"net": ctx.net_name(net)},
                    fix_hint=hint,
                )
            )
    return out


def rule_str_drive(ctx: DrcContext) -> List[Violation]:
    out: List[Violation] = []
    for net, drivers in sorted(ctx.driver_census().items()):
        if len(drivers) <= 1:
            continue
        out.append(
            Violation(
                rule_id="STR-DRIVE",
                severity=ERROR,
                message=(
                    f"net {ctx.net_name(net)!r} has {len(drivers)} drivers "
                    f"({', '.join(drivers)}): bus contention"
                ),
                location={
                    "net": ctx.net_name(net),
                    "drivers": list(drivers),
                },
                fix_hint="keep exactly one driver per net",
            )
        )
    return out


def rule_str_dangle(ctx: DrcContext) -> List[Violation]:
    out: List[Violation] = []
    loaded = ctx.loaded_nets()
    for gate in ctx.netlist.gates:
        if gate.output in loaded:
            continue
        out.append(
            Violation(
                rule_id="STR-DANGLE",
                severity=WARN,
                message=(
                    f"gate {gate.name!r} output {ctx.net_name(gate.output)!r} "
                    f"drives nothing (dangling)"
                ),
                location={
                    "instance": gate.name,
                    "net": ctx.net_name(gate.output),
                    "block": gate.block,
                },
                fix_hint=(
                    "remove the dead gate or route its output; dangling "
                    "logic wastes area and hides intent"
                ),
            )
        )
    return out


def rule_str_cell(ctx: DrcContext) -> List[Violation]:
    out: List[Violation] = []
    library = ctx.netlist.library
    hint = "use a library cell or extend the library"
    for gate in ctx.netlist.gates:
        if gate.cell not in library:
            out.append(
                Violation(
                    rule_id="STR-CELL",
                    severity=ERROR,
                    message=(
                        f"gate {gate.name!r} references unknown cell "
                        f"{gate.cell!r}"
                    ),
                    location={"instance": gate.name, "cell": gate.cell},
                    fix_hint=hint,
                )
            )
    for flop in ctx.netlist.flops:
        if flop.cell not in library:
            out.append(
                Violation(
                    rule_id="STR-CELL",
                    severity=ERROR,
                    message=(
                        f"flop {flop.name!r} references unknown cell "
                        f"{flop.cell!r}"
                    ),
                    location={"instance": flop.name, "cell": flop.cell},
                    fix_hint=hint,
                )
            )
    return out


RULES = [
    DrcRule(
        "STR-LOOP", "structural", ERROR, "combinational loop", rule_str_loop
    ),
    DrcRule(
        "STR-FLOAT",
        "structural",
        ERROR,
        "floating input / undriven output",
        rule_str_float,
    ),
    DrcRule(
        "STR-DRIVE",
        "structural",
        ERROR,
        "multi-driver contention",
        rule_str_drive,
    ),
    DrcRule(
        "STR-DANGLE",
        "structural",
        WARN,
        "dangling gate output",
        rule_str_dangle,
    ),
    DrcRule(
        "STR-CELL",
        "structural",
        ERROR,
        "unresolved cell reference",
        rule_str_cell,
    ),
]
