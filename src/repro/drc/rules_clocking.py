"""Clocking rule family: launch/capture clock hygiene.

=========  ========  ====================================================
rule id    severity  checks
=========  ========  ====================================================
CLK-CDC    WARN      flop D pins fed combinationally from another clock
                     domain (unconstrained crossings corrupt at-speed
                     launch/capture)
CLK-GATE   INFO      load-enable / clock-gate enables driven by scan
                     cells (shift-controllable gating — intentional in
                     this flow, but must be accounted for)
CLK-CHAIN  WARN      chains spanning several capture-clock domains, and
                     chain cells clocked by domains the design does not
                     declare (ERROR)
=========  ========  ====================================================

CLK-CDC aggregates per (source domain, destination domain) pair —
reporting every crossing flop individually would swamp the report on
real designs.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .context import DrcContext
from .registry import DrcRule
from .violation import ERROR, INFO, WARN, Violation


def rule_clk_cdc(ctx: DrcContext) -> List[Violation]:
    sources = ctx.net_domain_sources()
    if sources is None:  # defensive; propagation covers partial orders
        return []
    nl = ctx.netlist
    crossings: Dict[Tuple[str, str], List[str]] = {}
    for flop in nl.flops:
        feeding = sources[flop.d]
        for src in feeding:
            if src != flop.clock_domain:
                crossings.setdefault(
                    (src, flop.clock_domain), []
                ).append(flop.name)
    out: List[Violation] = []
    for (src, dst), names in sorted(crossings.items()):
        out.append(
            Violation(
                rule_id="CLK-CDC",
                severity=WARN,
                message=(
                    f"{len(names)} flop(s) in domain {dst!r} capture data "
                    f"launched from domain {src!r} (e.g. {names[:4]}): "
                    f"unconstrained crossing for at-speed launch/capture"
                ),
                location={
                    "from_domain": src,
                    "to_domain": dst,
                    "n_flops": len(names),
                    "examples": names[:4],
                },
                fix_hint=(
                    "declare the crossing false-path for delay test or "
                    "mask the capturing cells during inter-domain "
                    "patterns"
                ),
            )
        )
    return out


def rule_clk_gate(ctx: DrcContext) -> List[Violation]:
    """Load-enable registers driven through the scan path.

    The SOC generator emits each block's gating configuration registers
    as ``<block>_enf<k>`` (see
    :meth:`~repro.soc.design.SocDesign.enable_flops_in_block`); when
    such a register is a scan cell on a chain, every shift cycle
    rewrites the block's gating — the classic "clock-gate enable fed by
    scan cell" situation a commercial DRC flags.  In this flow it is
    the *intended* power-control knob, so the finding is informational.
    """
    by_block: Dict[str, List[str]] = {}
    for flop in ctx.netlist.flops:
        if "_enf" not in flop.name or not flop.is_scan:
            continue
        if flop.chain is None:
            continue
        by_block.setdefault(flop.block or "?", []).append(flop.name)
    out: List[Violation] = []
    for block, names in sorted(by_block.items()):
        out.append(
            Violation(
                rule_id="CLK-GATE",
                severity=INFO,
                message=(
                    f"block {block}: {len(names)} gating enable "
                    f"register(s) (e.g. {names[:3]}) sit on scan chains; "
                    f"their captured/shifted values control the block's "
                    f"activity"
                ),
                location={
                    "block": block,
                    "n_enables": len(names),
                    "examples": names[:3],
                },
                fix_hint=(
                    "keep the enables scan-controllable only if the "
                    "fill strategy accounts for them (the noise-aware "
                    "flow does)"
                ),
            )
        )
    return out


def rule_clk_chain(ctx: DrcContext) -> List[Violation]:
    out: List[Violation] = []
    nl = ctx.netlist
    assert ctx.scan is not None
    declared: Set[str] = (
        set(ctx.design.domains) if ctx.design is not None else set()
    )
    for chain in ctx.scan.chains:
        domains = sorted(
            {
                nl.flops[fi].clock_domain
                for fi in chain.flops
                if 0 <= fi < nl.n_flops
            }
        )
        if len(domains) > 1:
            out.append(
                Violation(
                    rule_id="CLK-CHAIN",
                    severity=WARN,
                    message=(
                        f"chain {chain.index} spans clock domains "
                        f"{domains}: the capture clock during "
                        f"launch/capture is ambiguous for part of the "
                        f"chain"
                    ),
                    location={"chain": chain.index, "domains": domains},
                    fix_hint=(
                        "group chains by capture domain, or mask "
                        "off-domain cells during capture"
                    ),
                )
            )
        if declared:
            unknown = [d for d in domains if d not in declared]
            if unknown:
                out.append(
                    Violation(
                        rule_id="CLK-CHAIN",
                        severity=ERROR,
                        message=(
                            f"chain {chain.index} contains cells clocked "
                            f"by undeclared domain(s) {unknown}: no "
                            f"launch/capture clock exists for them"
                        ),
                        location={
                            "chain": chain.index,
                            "domains": unknown,
                        },
                        fix_hint=(
                            "declare the domain (with a clock tree) or "
                            "reclock the cells"
                        ),
                    )
                )
    return out


RULES = [
    DrcRule(
        "CLK-CDC",
        "clocking",
        WARN,
        "unconstrained clock-domain crossing",
        rule_clk_cdc,
    ),
    DrcRule(
        "CLK-GATE",
        "clocking",
        INFO,
        "gating enable driven by scan cell",
        rule_clk_gate,
    ),
    DrcRule(
        "CLK-CHAIN",
        "clocking",
        WARN,
        "chain / capture-clock domain mismatch",
        rule_clk_chain,
        requires=("scan",),
    ),
]
