"""Timing rule family: static slack checks and the droop bound.

==========  =========  ==================================================
rule id     severity   checks
==========  =========  ==================================================
TIM-SLACK   ERROR/INFO nominal static timing closure per clock domain —
                       ERROR per endpoint whose worst arrival misses its
                       required time, INFO per domain that closes
TIM-MARGIN  WARN       endpoints that close but sit inside the guard
                       band (``DrcContext.timing_guard_band_ns``,
                       default 0.5 ns) — first to fail under any noise
TIM-UNCON   WARN       capture flops whose data input no launch flop of
                       any domain can reach combinationally — a delay
                       test can never be launched through them
TIM-DROOP   WARN/INFO  endpoints that close nominally but whose
                       worst-case droop-derated delay bound
                       (:mod:`repro.timing.bound`) misses the cycle —
                       supply noise *could* open them; route their
                       patterns through the noise-aware pre-screen
==========  =========  ==================================================

TIM-SLACK is the only ERROR of the family: negative nominal slack is a
broken design regardless of patterns.  TIM-DROOP is a steering WARN
like the power family — its bound is conservative by design, so a flag
means "cannot be proven safe statically", not "will fail".
"""

from __future__ import annotations

from typing import List

from .context import DrcContext
from .registry import DrcRule
from .violation import ERROR, INFO, WARN, Violation

#: Default TIM-MARGIN guard band (ns) when the context sets none.
GUARD_BAND_NS = 0.5


def rule_tim_slack(ctx: DrcContext) -> List[Violation]:
    assert ctx.design is not None
    out: List[Violation] = []
    for domain, report in sorted(ctx.sta_reports().items()):
        failing = report.failing_endpoints()
        if not failing:
            out.append(
                Violation(
                    rule_id="TIM-SLACK",
                    severity=INFO,
                    message=(
                        f"domain {domain}: timing closed — worst slack "
                        f"{report.worst_slack_ns:.3f} ns over "
                        f"{len(report.endpoints)} endpoints at "
                        f"{report.period_ns:.1f} ns period"
                    ),
                    location={
                        "domain": domain,
                        "worst_slack_ns": round(report.worst_slack_ns, 6),
                        "endpoints": len(report.endpoints),
                    },
                )
            )
            continue
        for ep in sorted(failing, key=lambda e: e.slack_ns):
            out.append(
                Violation(
                    rule_id="TIM-SLACK",
                    severity=ERROR,
                    message=(
                        f"endpoint {ep.flop_name} ({domain}): worst "
                        f"arrival {ep.arrival_ns:.3f} ns misses the "
                        f"required {ep.required_ns:.3f} ns by "
                        f"{-ep.slack_ns:.3f} ns"
                    ),
                    location={
                        "domain": domain,
                        "flop": ep.flop,
                        "flop_name": ep.flop_name,
                        "slack_ns": round(ep.slack_ns, 6),
                    },
                    fix_hint=(
                        "the path misses the cycle even without noise — "
                        "slow the clock or restructure the logic cone"
                    ),
                )
            )
    return out


def rule_tim_margin(ctx: DrcContext) -> List[Violation]:
    assert ctx.design is not None
    guard = (
        ctx.timing_guard_band_ns
        if ctx.timing_guard_band_ns is not None
        else GUARD_BAND_NS
    )
    out: List[Violation] = []
    for domain, report in sorted(ctx.sta_reports().items()):
        tight = [
            ep
            for ep in report.endpoints
            if 0.0 <= ep.slack_ns < guard
        ]
        for ep in sorted(tight, key=lambda e: e.slack_ns):
            out.append(
                Violation(
                    rule_id="TIM-MARGIN",
                    severity=WARN,
                    message=(
                        f"endpoint {ep.flop_name} ({domain}): closes "
                        f"with only {ep.slack_ns:.3f} ns slack — inside "
                        f"the {guard:.3f} ns guard band; first to fail "
                        f"under supply noise"
                    ),
                    location={
                        "domain": domain,
                        "flop": ep.flop,
                        "flop_name": ep.flop_name,
                        "slack_ns": round(ep.slack_ns, 6),
                        "guard_band_ns": round(guard, 6),
                    },
                    fix_hint=(
                        "prioritise this endpoint in the noise-aware "
                        "screen; a small droop-induced derate eats the "
                        "margin"
                    ),
                )
            )
    return out


def rule_tim_uncon(ctx: DrcContext) -> List[Violation]:
    sources = ctx.net_domain_sources()
    if sources is None:
        return []
    out: List[Violation] = []
    for fi, flop in enumerate(ctx.netlist.flops):
        if not sources[flop.d]:
            out.append(
                Violation(
                    rule_id="TIM-UNCON",
                    severity=WARN,
                    message=(
                        f"flop {flop.name!r}: data input "
                        f"{ctx.net_name(flop.d)!r} is reachable from no "
                        f"launch flop of any clock domain — no "
                        f"transition-delay test can be launched through "
                        f"this endpoint"
                    ),
                    location={
                        "flop": fi,
                        "flop_name": flop.name,
                        "d_net": flop.d,
                        "d_net_name": ctx.net_name(flop.d),
                    },
                    fix_hint=(
                        "the cone is fed only by primary inputs (or a "
                        "combinational loop); exclude the endpoint from "
                        "delay-fault coverage accounting or add a "
                        "launch point"
                    ),
                )
            )
    return out


def rule_tim_droop(ctx: DrcContext) -> List[Violation]:
    import numpy as np

    from ..config import ElectricalEnv
    from ..timing.bound import DroopBoundAnalyzer

    assert ctx.design is not None and ctx.grid is not None
    env = ElectricalEnv()
    out: List[Violation] = []
    for domain, report in sorted(ctx.sta_reports().items()):
        nominal_slack = {ep.flop: ep.slack_ns for ep in report.endpoints}
        analyzer = DroopBoundAnalyzer(
            ctx.design, domain, model=ctx.grid, env=env
        )
        gate_droop, flop_droop, _total = analyzer.droop_bounds_v()
        gate_derate = 1.0 + env.k_volt * np.clip(gate_droop, 0.0, None)
        flop_derate = 1.0 + env.k_volt * np.clip(flop_droop, 0.0, None)
        bound = analyzer.derated_bounds(
            set(analyzer.scap.launch_time_ns), gate_derate, flop_derate
        )
        opened = [
            ep
            for ep in bound.endpoints.values()
            if ep.bound_slack_ns < 0.0
            and nominal_slack.get(ep.flop, -1.0) >= 0.0
        ]
        if not opened:
            out.append(
                Violation(
                    rule_id="TIM-DROOP",
                    severity=INFO,
                    message=(
                        f"domain {domain}: worst-case droop cannot open "
                        f"any nominally-closed endpoint — bound slack "
                        f"stays >= "
                        f"{bound.worst_bound_slack_ns():.3f} ns"
                    ),
                    location={
                        "domain": domain,
                        "worst_bound_slack_ns": _finite_round(
                            bound.worst_bound_slack_ns()
                        ),
                    },
                )
            )
            continue
        worst = min(opened, key=lambda ep: ep.bound_slack_ns)
        out.append(
            Violation(
                rule_id="TIM-DROOP",
                severity=WARN,
                message=(
                    f"domain {domain}: {len(opened)} nominally-closed "
                    f"endpoint(s) cannot be proven safe under "
                    f"worst-case supply droop — worst is "
                    f"{worst.flop_name!r} with bound slack "
                    f"{worst.bound_slack_ns:.3f} ns"
                ),
                location={
                    "domain": domain,
                    "endpoints_at_risk": len(opened),
                    "worst_flop": worst.flop,
                    "worst_flop_name": worst.flop_name,
                    "worst_bound_slack_ns": round(
                        worst.bound_slack_ns, 6
                    ),
                },
                fix_hint=(
                    "run these patterns through the noise-aware "
                    "pre-screen (repro flow --timing-prescreen) so only "
                    "genuinely risky ones pay the IR-scaled "
                    "re-simulation"
                ),
            )
        )
    return out


def _finite_round(value: float, digits: int = 6) -> float:
    return round(value, digits) if value != float("inf") else float("inf")


RULES = [
    DrcRule(
        "TIM-SLACK",
        "timing",
        ERROR,
        "nominal static timing closure",
        rule_tim_slack,
        requires=("design",),
    ),
    DrcRule(
        "TIM-MARGIN",
        "timing",
        WARN,
        "guard-band slack margin",
        rule_tim_margin,
        requires=("design",),
    ),
    DrcRule(
        "TIM-UNCON",
        "timing",
        WARN,
        "unconstrained delay-test endpoints",
        rule_tim_uncon,
    ),
    DrcRule(
        "TIM-DROOP",
        "timing",
        WARN,
        "droop-derated bound vs nominal closure",
        rule_tim_droop,
        requires=("design", "grid"),
    ),
]
