"""Static design-rule check (DRC) and testability lint.

The commercial-flow stage our reproduction was missing: before any
pattern generation or timing simulation, walk the netlist, scan and
floorplan metadata and reject (or annotate) designs that would corrupt
the downstream results — plus a zero-simulation SCAP upper-bound
pre-screen that tells the noise-aware flow which blocks can never
violate their power thresholds.

Typical use::

    from repro.drc import DrcContext, run_drc

    report = run_drc(DrcContext.for_design(design, thresholds_mw=thr))
    if not report.is_clean():
        raise DrcError(report.format_text())

or, from the command line, ``repro drc --json report.json``.
"""

from .context import DrcContext
from .registry import (
    FAMILIES,
    DrcRule,
    RuleRegistry,
    check_design,
    check_netlist_drc,
    default_registry,
    run_drc,
)
from .violation import (
    ERROR,
    FAIL_ON_CHOICES,
    INFO,
    SEVERITIES,
    WARN,
    DrcReport,
    Violation,
    severity_rank,
    worst_severity,
)
from .waivers import Waiver, WaiverSet, load_waivers

__all__ = [
    "DrcContext",
    "DrcReport",
    "DrcRule",
    "ERROR",
    "FAIL_ON_CHOICES",
    "FAMILIES",
    "INFO",
    "RuleRegistry",
    "SEVERITIES",
    "Violation",
    "WARN",
    "Waiver",
    "WaiverSet",
    "check_design",
    "check_netlist_drc",
    "default_registry",
    "load_waivers",
    "run_drc",
    "severity_rank",
    "worst_severity",
]
