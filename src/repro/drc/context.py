"""The shared state a DRC run hands to every rule.

:class:`DrcContext` wraps the design under check plus lazily computed,
cached structural analyses (driver census, topological order, per-net
clock-domain sources) so that a dozen rules can share one traversal
each.  Everything here is simulation-free: the context only walks
netlist/scan/floorplan metadata.

The context degrades gracefully on broken designs: it never calls
:meth:`Netlist.freeze` (which raises on contention), building its own
driver/fanout maps from the raw instance lists instead, so loop and
clock-domain analyses keep working on netlists that are themselves
under indictment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from ..dft.scan import ScanConfig, scan_config_from_flops
from ..netlist.netlist import Netlist
from ..soc.design import SocDesign

if TYPE_CHECKING:  # heavy imports stay lazy for bare-netlist checks
    from ..pgrid.grid import GridModel
    from ..sim.sta import StaReport

#: One driver of a net: a human-readable descriptor such as
#: ``"gate 'u3'"``, ``"flop 'f0'"`` or ``"primary input 2"``.
DriverDesc = str


@dataclass
class DrcContext:
    """Everything the rules may look at, with memoised traversals.

    ``netlist`` is mandatory; ``design``/``scan``/``thresholds_mw`` are
    optional — rules that need them are skipped (and recorded as
    skipped) when absent.  ``domain`` is the launch/capture clock domain
    the power rules reason about; it defaults to the design's dominant
    domain.
    """

    netlist: Netlist
    design: Optional[SocDesign] = None
    scan: Optional[ScanConfig] = None
    thresholds_mw: Optional[Dict[str, float]] = None
    domain: Optional[str] = None
    #: Power-grid model for the droop-bound rule (TIM-DROOP); optional —
    #: rules requiring it are skipped with "no power-grid model".
    grid: Optional["GridModel"] = None
    #: Slack below which TIM-MARGIN flags an endpoint; None = default.
    timing_guard_band_ns: Optional[float] = None

    _driver_census: Optional[Dict[int, List[DriverDesc]]] = field(
        default=None, repr=False
    )
    _driven: Optional[Set[int]] = field(default=None, repr=False)
    _loaded: Optional[Set[int]] = field(default=None, repr=False)
    _gate_driver: Optional[Dict[int, int]] = field(default=None, repr=False)
    _topo: Optional[Tuple[List[int], List[int]]] = field(
        default=None, repr=False
    )
    _partial_order: Optional[List[int]] = field(default=None, repr=False)
    _topo_tried: bool = field(default=False, repr=False)
    _stuck_gates: Optional[List[int]] = field(default=None, repr=False)
    _domain_sources: Optional[List[FrozenSet[str]]] = field(
        default=None, repr=False
    )
    _sta_reports: Optional[Dict[str, "StaReport"]] = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.design is not None:
            if self.scan is None:
                self.scan = self.design.scan
            if self.domain is None:
                self.domain = self.design.dominant_domain()
        if self.scan is None:
            self.scan = scan_config_from_flops(self.netlist)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_netlist(cls, netlist: Netlist) -> "DrcContext":
        """Context for a bare netlist (structural + metadata rules)."""
        return cls(netlist=netlist)

    @classmethod
    def for_design(
        cls,
        design: SocDesign,
        thresholds_mw: Optional[Dict[str, float]] = None,
        domain: Optional[str] = None,
        grid: Optional["GridModel"] = None,
        timing_guard_band_ns: Optional[float] = None,
    ) -> "DrcContext":
        """Context for a full SOC design (all rule families)."""
        return cls(
            netlist=design.netlist,
            design=design,
            thresholds_mw=thresholds_mw,
            domain=domain,
            grid=grid,
            timing_guard_band_ns=timing_guard_band_ns,
        )

    # ------------------------------------------------------------------
    # raw-list analyses (never require a consistent netlist)
    # ------------------------------------------------------------------
    def driver_census(self) -> Dict[int, List[DriverDesc]]:
        """Every net's drivers, recomputed from the raw instance lists.

        Unlike :meth:`Netlist.freeze` this never raises on contention —
        multi-driven nets simply list several drivers.
        """
        if self._driver_census is None:
            census: Dict[int, List[DriverDesc]] = {}
            nl = self.netlist
            for pos, net in enumerate(nl.primary_inputs):
                census.setdefault(net, []).append(f"primary input {pos}")
            for g in nl.gates:
                census.setdefault(g.output, []).append(f"gate {g.name!r}")
            for f in nl.flops:
                census.setdefault(f.q, []).append(f"flop {f.name!r}")
            self._driver_census = census
        return self._driver_census

    def driven_nets(self) -> Set[int]:
        """Net ids with at least one driver."""
        if self._driven is None:
            self._driven = set(self.driver_census())
        return self._driven

    def loaded_nets(self) -> Set[int]:
        """Net ids with at least one reader (gate pin, flop D or PO)."""
        if self._loaded is None:
            nl = self.netlist
            loads: Set[int] = set(nl.primary_outputs)
            for g in nl.gates:
                loads.update(g.inputs)
            loads.update(f.d for f in nl.flops)
            self._loaded = loads
        return self._loaded

    def gate_driver_map(self) -> Dict[int, int]:
        """net -> index of its first gate driver (for graph traversal).

        On a multi-driven net the first gate wins; STR-DRIVE reports
        the contention itself, this map only keeps traversals sane.
        """
        if self._gate_driver is None:
            gate_driver: Dict[int, int] = {}
            for gi, g in enumerate(self.netlist.gates):
                gate_driver.setdefault(g.output, gi)
            self._gate_driver = gate_driver
        return self._gate_driver

    # ------------------------------------------------------------------
    # combinational graph analyses (freeze-free)
    # ------------------------------------------------------------------
    def topo(self) -> Optional[Tuple[List[int], List[int]]]:
        """``(order, level)`` of the combinational gates, or None when
        the netlist has a combinational loop (reported by STR-LOOP)."""
        if not self._topo_tried:
            self._topo_tried = True
            order, level, stuck = self._kahn()
            self._stuck_gates = stuck
            self._partial_order = order
            if not stuck:
                self._topo = (order, level)
        return self._topo

    def stuck_gates(self) -> List[int]:
        """Gate indexes on (or fed by) a combinational cycle."""
        self.topo()
        return list(self._stuck_gates or [])

    def _kahn(self) -> Tuple[List[int], List[int], List[int]]:
        """Loop-tolerant levelisation over the raw gate lists.

        Edges follow :meth:`gate_driver_map` (one driver per net), so
        the sweep works even on netlists :meth:`Netlist.freeze` rejects.
        Returns ``(order, level, stuck)``; *stuck* gates sit on or
        behind a combinational cycle.
        """
        nl = self.netlist
        n_gates = nl.n_gates
        gate_driver = self.gate_driver_map()
        pending = [0] * n_gates
        level = [0] * n_gates
        consumers: Dict[int, List[int]] = {}
        for gi, gate in enumerate(nl.gates):
            for net in gate.inputs:
                if net in gate_driver:
                    pending[gi] += 1
                    consumers.setdefault(net, []).append(gi)
        ready = [gi for gi in range(n_gates) if pending[gi] == 0]
        order: List[int] = []
        head = 0
        while head < len(ready):
            gi = ready[head]
            head += 1
            order.append(gi)
            out = nl.gates[gi].output
            if gate_driver.get(out) != gi:
                continue  # secondary driver of a contended net
            for lgi in consumers.get(out, ()):
                pending[lgi] -= 1
                if level[gi] + 1 > level[lgi]:
                    level[lgi] = level[gi] + 1
                if pending[lgi] == 0:
                    ready.append(lgi)
        stuck = [gi for gi in range(n_gates) if pending[gi] > 0]
        return order, level, stuck

    def combinational_cycle(self) -> Optional[List[str]]:
        """Gate names along one combinational cycle, or None.

        Walks the stuck-gate subgraph until a gate repeats, then
        returns the closed walk — a concrete cycle to show the user,
        not just "a loop exists".
        """
        stuck = set(self.stuck_gates())
        if not stuck:
            return None
        nl = self.netlist
        gate_driver = self.gate_driver_map()
        path: List[int] = []
        seen_at: Dict[int, int] = {}
        gi = min(stuck)
        while gi not in seen_at:
            seen_at[gi] = len(path)
            path.append(gi)
            pred = None
            for net in nl.gates[gi].inputs:
                cand = gate_driver.get(net)
                if cand is not None and cand in stuck:
                    pred = cand
                    break
            if pred is None:  # no stuck predecessor: dead end
                return [nl.gates[g].name for g in path]
            gi = pred
        return [nl.gates[g].name for g in path[seen_at[gi]:]]

    # ------------------------------------------------------------------
    # clock-domain flow analysis
    # ------------------------------------------------------------------
    def net_domain_sources(self) -> Optional[List[FrozenSet[str]]]:
        """Per net: the clock domains whose flops can reach it
        combinationally.

        On a looping netlist the propagation runs over the acyclic part
        of the graph only (gates on or behind the cycle keep empty
        source sets), so clock-domain rules still report crossings that
        do not involve the loop instead of going silent."""
        if self._domain_sources is None:
            self.topo()
            order = self._partial_order or []
            nl = self.netlist
            sources: List[FrozenSet[str]] = [frozenset()] * nl.n_nets
            for f in nl.flops:
                sources[f.q] = frozenset((f.clock_domain,))
            for gi in order:
                gate = nl.gates[gi]
                acc: FrozenSet[str] = frozenset()
                for net in gate.inputs:
                    acc = acc | sources[net]
                sources[gate.output] = acc
            self._domain_sources = sources
        return self._domain_sources

    # ------------------------------------------------------------------
    # static timing analysis (simulation-free, like everything here)
    # ------------------------------------------------------------------
    def sta_reports(self) -> Dict[str, "StaReport"]:
        """Nominal per-domain STA of the design, memoised.

        One levelised arrival sweep per clock domain with launch-capable
        flops — static analysis, consistent with the context's
        simulation-free contract.  Requires ``design`` (the timing rules
        declare that requirement, so they are skipped on bare netlists).
        """
        if self._sta_reports is None:
            from ..sim.delays import DelayModel
            from ..sim.sta import StaticTimingAnalyzer

            assert self.design is not None
            design = self.design
            delays = DelayModel(design.netlist, design.parasitics)
            launch_domains = {
                f.clock_domain
                for f in design.netlist.flops
                if f.edge == "pos"
            }
            reports: Dict[str, "StaReport"] = {}
            for name in sorted(design.domains):
                if name not in launch_domains:
                    continue
                sta = StaticTimingAnalyzer(
                    design.netlist,
                    delays,
                    design.clock_trees[name],
                    design.domains[name].period_ns,
                    name,
                )
                reports[name] = sta.analyze()
            self._sta_reports = reports
        return self._sta_reports

    # ------------------------------------------------------------------
    def net_name(self, net: int) -> str:
        """Safe net-name lookup (ids can be out of range on bad input)."""
        if 0 <= net < self.netlist.n_nets:
            return self.netlist.net_names[net]
        return f"<invalid net {net}>"
