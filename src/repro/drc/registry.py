"""The DRC rule registry and the engine that runs it.

A rule is a pure function ``DrcContext -> List[Violation]`` wrapped in
a :class:`DrcRule` record carrying its identity, family, default
severity and data requirements.  :func:`run_drc` executes a registry
against a context, skips rules whose requirements the context cannot
satisfy (recording why), applies waivers and returns a
:class:`~repro.drc.violation.DrcReport`.

The default registry assembles the shipped rule catalog from the five
family modules; callers can build restricted registries (e.g. the flow
gate skips the power family) or register project-specific rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..obs import current_telemetry
from .context import DrcContext
from .violation import DrcReport, Violation
from .waivers import WaiverSet

#: The rule families shipped with the default registry.
FAMILIES = ("structural", "scan", "clocking", "power", "timing")

RuleFn = Callable[[DrcContext], List[Violation]]


@dataclass(frozen=True)
class DrcRule:
    """One registered design rule.

    ``requires`` names the optional context pieces the rule needs:
    ``"scan"`` (a scan configuration), ``"design"`` (a full
    :class:`~repro.soc.design.SocDesign`), ``"thresholds"`` (per-block
    SCAP limits) or ``"grid"`` (a power-grid model for the droop
    bound).  A rule whose requirements are unmet is skipped and
    recorded, never silently dropped.
    """

    rule_id: str
    family: str
    severity: str
    title: str
    fn: RuleFn
    requires: Tuple[str, ...] = ()

    def missing_requirement(self, ctx: DrcContext) -> Optional[str]:
        """Why this rule cannot run on *ctx*, or None when it can."""
        for req in self.requires:
            if req == "scan" and ctx.scan is None:
                return "no scan configuration"
            if req == "design" and ctx.design is None:
                return "bare netlist (no SOC design)"
            if req == "thresholds" and ctx.thresholds_mw is None:
                return "no SCAP thresholds supplied"
            if req == "grid" and ctx.grid is None:
                return "no power-grid model"
        return None


class RuleRegistry:
    """Ordered collection of :class:`DrcRule` records, unique by id."""

    def __init__(self) -> None:
        self._rules: Dict[str, DrcRule] = {}

    def register(self, rule: DrcRule) -> DrcRule:
        if rule.rule_id in self._rules:
            raise ConfigError(f"duplicate DRC rule id {rule.rule_id!r}")
        if rule.family not in FAMILIES:
            raise ConfigError(
                f"rule {rule.rule_id!r} has unknown family {rule.family!r}"
            )
        self._rules[rule.rule_id] = rule
        return rule

    def rules(
        self, families: Optional[Sequence[str]] = None
    ) -> List[DrcRule]:
        """Registered rules in registration order, optionally filtered."""
        if families is None:
            return list(self._rules.values())
        wanted = set(families)
        unknown = wanted - set(FAMILIES)
        if unknown:
            raise ConfigError(f"unknown DRC families: {sorted(unknown)}")
        return [r for r in self._rules.values() if r.family in wanted]

    def get(self, rule_id: str) -> DrcRule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise ConfigError(f"no DRC rule {rule_id!r}") from None

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: object) -> bool:
        return rule_id in self._rules

    def rule_ids(self) -> List[str]:
        return list(self._rules)


def default_registry() -> RuleRegistry:
    """A fresh registry holding the full shipped rule catalog."""
    from . import (
        rules_clocking,
        rules_power,
        rules_scan,
        rules_structural,
        rules_timing,
    )

    registry = RuleRegistry()
    for module in (
        rules_structural,
        rules_scan,
        rules_clocking,
        rules_power,
        rules_timing,
    ):
        for rule in module.RULES:
            registry.register(rule)
    return registry


def run_drc(
    ctx: DrcContext,
    registry: Optional[RuleRegistry] = None,
    waivers: Optional[WaiverSet] = None,
    families: Optional[Sequence[str]] = None,
    design_name: Optional[str] = None,
) -> DrcReport:
    """Execute a rule registry against a context.

    Parameters
    ----------
    ctx:
        What to check (see :class:`DrcContext` constructors).
    registry:
        Defaults to the full shipped catalog.
    waivers:
        Reviewed exceptions; matched violations are marked waived and
        stop gating.
    families:
        Restrict to the given rule families (e.g. the flow gate runs
        without ``"power"``).
    design_name:
        Report label; defaults to the design's/netlist's own name.
    """
    if registry is None:
        registry = default_registry()
    if design_name is None:
        if ctx.design is not None:
            design_name = ctx.design.name
        else:
            design_name = ctx.netlist.name or "netlist"
    tel = current_telemetry()
    report = DrcReport(design_name=design_name)
    with tel.span("drc.run", design=design_name):
        for rule in registry.rules(families):
            why_not = rule.missing_requirement(ctx)
            if why_not is not None:
                report.rules_skipped[rule.rule_id] = why_not
                continue
            report.rules_run.append(rule.rule_id)
            with tel.span("drc.rule", rule=rule.rule_id):
                found = rule.fn(ctx)
            report.violations.extend(found)
            tel.count("drc.rules_run")
            if found:
                tel.count(
                    "drc.violations", len(found), family=rule.family
                )
        if waivers is not None and len(waivers):
            report.waivers_applied = waivers.apply(report.violations)
    return report


def check_design(
    design: "object",
    thresholds_mw: Optional[Dict[str, float]] = None,
    waivers: Optional[WaiverSet] = None,
    families: Optional[Sequence[str]] = None,
) -> DrcReport:
    """Run the full catalog on a :class:`~repro.soc.design.SocDesign`."""
    from ..soc.design import SocDesign

    if not isinstance(design, SocDesign):
        raise ConfigError("check_design expects a SocDesign")
    ctx = DrcContext.for_design(design, thresholds_mw=thresholds_mw)
    return run_drc(ctx, waivers=waivers, families=families)


def check_netlist_drc(
    netlist: "object",
    waivers: Optional[WaiverSet] = None,
    families: Optional[Sequence[str]] = None,
) -> DrcReport:
    """Run the catalog on a bare :class:`~repro.netlist.netlist.Netlist`.

    Rules needing design/threshold context are recorded as skipped.
    """
    from ..netlist.netlist import Netlist

    if not isinstance(netlist, Netlist):
        raise ConfigError("check_netlist_drc expects a Netlist")
    ctx = DrcContext.for_netlist(netlist)
    return run_drc(ctx, waivers=waivers, families=families)
