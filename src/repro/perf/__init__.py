"""Parallel/batched execution layer (the throughput subsystem).

The paper's flow is re-grading-bound: every candidate pattern set is
fault-simulated against the undetected universe and SCAP-graded per
block, and the staged noise-aware procedure repeats both per stage per
clock domain.  This package supplies the shared machinery that makes
those hot paths cheap:

* :mod:`~repro.perf.pool` — a fork/spawn-safe process-pool map with
  per-worker one-time initialisation (rebuild the netlist/simulator
  once per worker, not once per task), chunk helpers, ordered result
  merge and a graceful serial fallback,
* :mod:`~repro.perf.resilient` — the fault-tolerant execution layer
  under :func:`~repro.perf.pool.pool_map`: per-chunk futures, bounded
  retries with backoff, per-task timeouts with hung-worker
  cancellation, crash isolation onto rebuilt pools, and a structured
  :class:`~repro.perf.resilient.ExecutionReport` of what was survived,
* :mod:`~repro.perf.chaos` — deterministic fault injection (kill /
  hang / transient-fail chosen workers on chosen chunks) so every
  recovery path above is exercised by tests rather than trusted,
* :mod:`~repro.perf.cache` — a digest-keyed pattern-profile cache so
  staged flows never re-simulate an identical launch state,
* :mod:`~repro.perf.kernel_cache` — a persistent on-disk store of the
  fault simulator's compiled cone kernels, keyed by a structural
  netlist fingerprint, so the per-netlist compile tax is paid once per
  machine instead of once per run per worker,
* :mod:`~repro.perf.shm` — zero-copy pattern transport: packed bit
  matrices in named shared-memory segments that pool workers attach by
  handle instead of unpickling,
* :mod:`~repro.perf.dispatch` — the work-size-aware dispatcher behind
  ``n_workers="auto"``: estimates serial cost, counts the cores this
  process may actually use, and picks batch or pool (and the shm
  transport) instead of hoping the pool wins.

The consumers are :meth:`repro.atpg.fsim.FaultSimulator.run_batch`
(multi-word fault simulation with chunked fault partitions) and
:meth:`repro.power.calculator.ScapCalculator.profile_patterns`
(batched SCAP grading).
"""

from . import chaos
from .cache import PatternProfileCache, digest_key
from .dispatch import (
    Decision,
    DispatchPolicy,
    current_dispatch,
    decide_fsim,
    decide_scap,
    dispatch_policy,
    usable_cpus,
)
from .kernel_cache import (
    KernelCache,
    current_kernel_cache,
    netlist_fingerprint,
    use_kernel_cache,
)
from .pool import (
    available_workers,
    chunk_slices,
    chunked,
    pool_map,
    resolve_workers,
)
from .shm import (
    SharedPatternMatrix,
    ShmHandle,
    active_segments,
    resolve_matrix,
    shared_matrix,
    shm_available,
)
from .resilient import (
    ChunkFailure,
    ExecutionReport,
    RetryPolicy,
    collect_reports,
    default_policy,
    execution_policy,
    last_report,
    resilient_map,
)

__all__ = [
    "ChunkFailure",
    "Decision",
    "DispatchPolicy",
    "ExecutionReport",
    "KernelCache",
    "PatternProfileCache",
    "RetryPolicy",
    "SharedPatternMatrix",
    "ShmHandle",
    "active_segments",
    "available_workers",
    "chaos",
    "chunk_slices",
    "chunked",
    "collect_reports",
    "current_dispatch",
    "current_kernel_cache",
    "decide_fsim",
    "decide_scap",
    "default_policy",
    "digest_key",
    "dispatch_policy",
    "execution_policy",
    "last_report",
    "netlist_fingerprint",
    "pool_map",
    "resilient_map",
    "resolve_matrix",
    "resolve_workers",
    "shared_matrix",
    "shm_available",
    "usable_cpus",
    "use_kernel_cache",
]
