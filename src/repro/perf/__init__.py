"""Parallel/batched execution layer (the throughput subsystem).

The paper's flow is re-grading-bound: every candidate pattern set is
fault-simulated against the undetected universe and SCAP-graded per
block, and the staged noise-aware procedure repeats both per stage per
clock domain.  This package supplies the shared machinery that makes
those hot paths cheap:

* :mod:`~repro.perf.pool` — a fork/spawn-safe process-pool map with
  per-worker one-time initialisation (rebuild the netlist/simulator
  once per worker, not once per task), chunk helpers, ordered result
  merge and a graceful serial fallback,
* :mod:`~repro.perf.cache` — a digest-keyed pattern-profile cache so
  staged flows never re-simulate an identical launch state.

The consumers are :meth:`repro.atpg.fsim.FaultSimulator.run_batch`
(multi-word fault simulation with chunked fault partitions) and
:meth:`repro.power.calculator.ScapCalculator.profile_patterns`
(batched SCAP grading).
"""

from .cache import PatternProfileCache, digest_key
from .pool import (
    available_workers,
    chunk_slices,
    chunked,
    pool_map,
    resolve_workers,
)

__all__ = [
    "PatternProfileCache",
    "available_workers",
    "chunk_slices",
    "chunked",
    "digest_key",
    "pool_map",
    "resolve_workers",
]
