"""Fault-tolerant per-chunk execution on a worker pool.

:func:`resilient_map` replaces the all-or-nothing ``pool.map`` path:
every work item is its own future, so one crashed, hung, or flaky
worker costs exactly the chunks it was holding — never the completed
results of its neighbours.  The recovery ladder, in order:

1. **Retry with backoff** — a task raising
   :class:`~repro.errors.TransientError` (or anything in the policy's
   ``retry_on``) is requeued up to ``max_attempts`` times, with
   exponential backoff and deterministic jitter.
2. **Crash isolation** — a dead worker breaks the whole
   ``ProcessPoolExecutor``; the chunks that were in flight are requeued
   onto a rebuilt pool (bounded by ``max_pool_rebuilds``) and the chunk
   charged with the crash burns one attempt.  Completed results are
   kept.
3. **Timeout cancellation** — a chunk past its per-task deadline has
   its worker killed (a hung worker cannot be cancelled politely), the
   pool is rebuilt, and the chunk retries; innocent chunks that were
   in flight are requeued without being charged an attempt.
4. **Serial fallback** — reserved for genuine infrastructure failure:
   an unpicklable task/initializer, a pool that cannot be created, or
   a pool that keeps dying past the rebuild cap.  Only the *remaining*
   chunks run serially.

Task exceptions outside ``retry_on`` are real bugs: they propagate
immediately as :class:`~repro.errors.ExecutionError` with the original
exception chained — they never trigger retries or the serial fallback
(see ``pool_map``'s history for why that matters).

Every call fills an :class:`ExecutionReport` (per-chunk attempt counts,
failure log, rebuild/timeout tallies); the most recent report is
available from :func:`last_report` so layered callers (fault
simulation, SCAP grading, flows) can surface it without threading a
handle through every signature.  Deterministic fault injection for all
of these paths lives in :mod:`repro.perf.chaos`.
"""

from __future__ import annotations

import dataclasses
import pickle
import random
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from ..errors import (
    ExecutionError,
    TaskTimeoutError,
    TransientError,
    WorkerCrashError,
)
from ..obs import current_telemetry, worker_event
from . import chaos as _chaos


def backoff_delay_s(
    base_s: float,
    factor: float,
    max_s: float,
    jitter: float,
    seed: int,
    index: int,
    attempt: int,
) -> float:
    """Exponential backoff with deterministic jitter, shared math.

    Delay before retry *attempt* (0-based) of work unit *index*:
    ``base * factor**attempt`` capped at *max_s*, plus up to
    ``jitter`` fraction extra derived from ``(seed, index, attempt)``
    so every layer that backs off — chunk retries here, shard retries
    in :mod:`repro.service` — is reproducible run to run.
    """
    base = min(max_s, base_s * (factor ** attempt))
    rng = random.Random((seed * 1_000_003) ^ (index * 7_919 + attempt))
    return base * (1.0 + jitter * rng.random())


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the recovery ladder.  Immutable; share freely."""

    #: Tries per chunk, first try included.
    max_attempts: int = 3
    #: Per-chunk wall-clock limit (None = no timeout enforcement).
    timeout_s: Optional[float] = None
    #: Backoff before retry *n* is ``base * factor**n`` capped at
    #: ``backoff_max_s``, plus deterministic jitter.
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    #: Jitter fraction: the delay gains up to ``jitter * delay`` extra,
    #: derived from (seed, chunk, attempt) so runs are reproducible.
    jitter: float = 0.25
    seed: int = 0
    #: Pool rebuilds tolerated before declaring the infrastructure dead.
    max_pool_rebuilds: int = 3
    #: Task exception types that are retried instead of propagated.
    retry_on: Tuple[Type[BaseException], ...] = (TransientError,)
    #: Run remaining chunks serially once the rebuild cap is exhausted
    #: (False raises :class:`WorkerCrashError` instead).
    serial_fallback: bool = True

    def backoff_s(self, chunk_index: int, attempt: int) -> float:
        """Deterministic backoff before retrying *attempt* (0-based)."""
        return backoff_delay_s(
            self.backoff_base_s, self.backoff_factor, self.backoff_max_s,
            self.jitter, self.seed, chunk_index, attempt,
        )


#: Module default; override per call or via :func:`execution_policy`.
DEFAULT_POLICY = RetryPolicy()

_policy_stack: List[RetryPolicy] = [DEFAULT_POLICY]


def default_policy() -> RetryPolicy:
    """The policy used when a call site does not pass one."""
    return _policy_stack[-1]


@contextmanager
def execution_policy(policy: Optional[RetryPolicy] = None, **overrides):
    """Scope a default policy: ``with execution_policy(timeout_s=5):``.

    *overrides* are applied on top of *policy* (or the current
    default), so nested scopes compose.
    """
    base = policy if policy is not None else default_policy()
    scoped = dataclasses.replace(base, **overrides) if overrides else base
    _policy_stack.append(scoped)
    try:
        yield scoped
    finally:
        _policy_stack.pop()


@dataclass
class ChunkFailure:
    """One failed attempt of one chunk (the per-chunk failure log)."""

    chunk_index: int
    attempt: int
    kind: str  # "crash" | "timeout" | "transient" | "error"
    error: str

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class ExecutionReport:
    """What one :func:`resilient_map` call went through."""

    n_chunks: int = 0
    n_workers: int = 0
    #: chunk index -> attempts consumed (1 = clean first try).
    chunk_attempts: Dict[int, int] = field(default_factory=dict)
    failures: List[ChunkFailure] = field(default_factory=list)
    pool_rebuilds: int = 0
    n_timeouts: int = 0
    serial_fallback: bool = False
    elapsed_s: float = 0.0

    @property
    def total_retries(self) -> int:
        return sum(max(0, a - 1) for a in self.chunk_attempts.values())

    @property
    def retried_chunks(self) -> List[int]:
        return sorted(
            ci for ci, a in self.chunk_attempts.items() if a > 1
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_chunks": self.n_chunks,
            "n_workers": self.n_workers,
            "chunk_attempts": dict(self.chunk_attempts),
            "failures": [f.to_dict() for f in self.failures],
            "pool_rebuilds": self.pool_rebuilds,
            "n_timeouts": self.n_timeouts,
            "serial_fallback": self.serial_fallback,
            "total_retries": self.total_retries,
            "elapsed_s": self.elapsed_s,
        }


_LAST_REPORT: Optional[ExecutionReport] = None

_COLLECTOR: Optional[List[ExecutionReport]] = None


def last_report() -> Optional[ExecutionReport]:
    """The report of the most recent resilient map in this process."""
    return _LAST_REPORT


@contextmanager
def collect_reports():
    """Gather the report of every resilient map run inside the block.

    Lets a flow stage absorb the execution stats of all its pool calls
    (fault-simulation grading, SCAP profiling, …) into one
    :class:`~repro.reporting.runreport.RunReport` without threading a
    handle through every layer::

        with collect_reports() as reports:
            ...  # any number of pool_map/resilient_map calls
        retries = sum(r.total_retries for r in reports)
    """
    global _COLLECTOR
    previous = _COLLECTOR
    _COLLECTOR = []
    try:
        yield _COLLECTOR
    finally:
        _COLLECTOR = previous


# ----------------------------------------------------------------------
# worker-side entry point
# ----------------------------------------------------------------------
@dataclass
class _WorkerEnvelope:
    """A chunk result plus the worker's span events for it.

    When the parent run is tracing, workers wrap their result in this
    envelope so span timing rides home on the existing chunk-result
    channel (no side channel, works under fork and spawn); the parent
    unwraps it and feeds the events to its tracer.
    """

    value: Any
    events: List[Dict[str, Any]]


def _invoke_chunk(
    task: Callable[[Any], Any],
    item: Any,
    chunk_index: int,
    attempt: int,
    spec,
    collect_spans: bool = False,
) -> Any:
    """Run one chunk in a worker, applying any armed chaos first."""
    _chaos.apply(spec, chunk_index, attempt)
    if not collect_spans:
        return task(item)
    started = time.time()
    value = task(item)
    return _WorkerEnvelope(
        value,
        [
            worker_event(
                "exec.chunk",
                started,
                time.time() - started,
                chunk=chunk_index,
                attempt=attempt,
            )
        ],
    )


def _run_initializer(initializer, initargs) -> None:
    if initializer is not None:
        initializer(*initargs)


def _kill_pool(pool: Optional[ProcessPoolExecutor]) -> None:
    """Tear a pool down even if its workers are hung.

    ``shutdown`` alone never returns workers stuck in a task, so the
    worker processes are terminated explicitly (``_processes`` is a
    private but long-stable attribute; if it moves, shutdown still
    prevents new work and the leaked sleeper dies with the session).
    """
    if pool is None:
        return
    procs = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for proc in procs:
        try:
            proc.terminate()
        except Exception:
            pass


def resilient_map(
    task: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    n_workers: Optional[int] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    policy: Optional[RetryPolicy] = None,
    report: Optional[ExecutionReport] = None,
) -> List[Any]:
    """Map *task* over *items* with per-chunk fault tolerance.

    Results are returned in input order and are bit-identical to a
    serial ``[task(i) for i in items]`` whatever failures were survived
    along the way.  *task* and *initializer* must be module-level
    callables (picklable by reference).  See the module docstring for
    the recovery ladder; see :class:`ExecutionReport` for what is
    recorded about it.

    Raises :class:`ExecutionError` (task bug), :class:`WorkerCrashError`
    or :class:`TaskTimeoutError` (retries exhausted) — each carrying
    ``chunk_index``, ``attempts`` and the chained cause.
    """
    from .pool import _mp_context, resolve_workers  # circular-safe

    global _LAST_REPORT
    items = list(items)
    policy = policy if policy is not None else default_policy()
    if report is None:
        report = ExecutionReport()
    report.n_chunks = len(items)
    _LAST_REPORT = report
    if _COLLECTOR is not None:
        _COLLECTOR.append(report)
    tel = current_telemetry()
    tel.count("exec.chunks", len(items))
    started = time.monotonic()
    try:
        if not items:
            return []
        eff = resolve_workers(n_workers, len(items))
        report.n_workers = eff
        if eff <= 1:
            return _serial_with_retries(
                task, items, initializer, initargs, policy, report
            )

        # Infrastructure preflight: a task that cannot cross the
        # process boundary is a platform limitation, not a task bug —
        # the one case that degrades to plain serial up front.  Only
        # the callables are checked (pickled by reference, cheap);
        # initargs may be huge and are inherited wholesale under fork.
        try:
            pickle.dumps((task, initializer))
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            warnings.warn(
                f"task/initializer not picklable ({exc!r}); "
                "running serially",
                RuntimeWarning,
                stacklevel=2,
            )
            report.serial_fallback = True
            return _serial_with_retries(
                task, items, initializer, initargs, policy, report
            )

        return _pooled_map(
            task, items, eff, initializer, initargs, policy, report,
            _mp_context(),
        )
    finally:
        report.elapsed_s = time.monotonic() - started
        tel.count("exec.retries", report.total_retries)
        tel.observe("exec.map_s", report.elapsed_s)


def _serial_with_retries(
    task, items, initializer, initargs, policy, report
) -> List[Any]:
    """The serial path: same retry semantics, no pool, no chaos."""
    tel = current_telemetry()
    _run_initializer(initializer, initargs)
    out: List[Any] = []
    for ci, item in enumerate(items):
        attempt = 0
        while True:
            try:
                with tel.span("exec.chunk", chunk=ci, attempt=attempt):
                    out.append(task(item))
                break
            except policy.retry_on as exc:
                report.failures.append(
                    ChunkFailure(ci, attempt, "transient", repr(exc))
                )
                tel.count("exec.failures", kind="transient")
                attempt += 1
                if attempt >= policy.max_attempts:
                    report.chunk_attempts[ci] = attempt
                    raise ExecutionError(
                        f"chunk {ci} failed after {attempt} attempts",
                        chunk_index=ci,
                        attempts=attempt,
                        cause=exc,
                    ) from exc
                time.sleep(policy.backoff_s(ci, attempt - 1))
            except Exception as exc:
                # Same contract as the pooled path: a task bug is
                # wrapped (with the original chained), never retried.
                report.chunk_attempts[ci] = attempt + 1
                report.failures.append(
                    ChunkFailure(ci, attempt, "error", repr(exc))
                )
                tel.count("exec.failures", kind="error")
                raise ExecutionError(
                    f"task failed on chunk {ci} "
                    f"(attempt {attempt + 1}): {exc!r}",
                    chunk_index=ci,
                    attempts=attempt + 1,
                    cause=exc,
                ) from exc
        report.chunk_attempts[ci] = attempt + 1
    return out


def _pooled_map(
    task, items, eff, initializer, initargs, policy, report, mp_context
) -> List[Any]:
    spec = _chaos.active_spec()
    if spec is not None and spec.is_empty():
        spec = None
    tel = current_telemetry()
    collect_spans = tel.wants_worker_spans

    results: Dict[int, Any] = {}
    attempts: Dict[int, int] = {ci: 0 for ci in range(len(items))}
    pending = deque(range(len(items)))
    inflight: Dict[Any, Tuple[int, int, Optional[float]]] = {}
    pool: Optional[ProcessPoolExecutor] = None

    def new_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=eff,
            mp_context=mp_context,
            initializer=initializer,
            initargs=initargs,
        )

    def charge(ci: int, att: int, kind: str, error: str) -> None:
        """Log a failed attempt and burn it; raise when exhausted."""
        report.failures.append(ChunkFailure(ci, att, kind, error))
        tel.count("exec.failures", kind=kind)
        if kind == "crash":
            tel.count("exec.worker_crashes")
        attempts[ci] = att + 1
        if att + 1 >= policy.max_attempts:
            _kill_pool(pool)
            exc_type = {
                "crash": WorkerCrashError,
                "timeout": TaskTimeoutError,
            }.get(kind, ExecutionError)
            kw: Dict[str, Any] = dict(chunk_index=ci, attempts=att + 1)
            if exc_type is TaskTimeoutError:
                kw["timeout_s"] = policy.timeout_s
            raise exc_type(
                f"chunk {ci} failed after {att + 1} attempts "
                f"(last failure: {kind}: {error})",
                **kw,
            )
        pending.append(ci)

    def drain_requeue_uncharged() -> None:
        """Requeue every in-flight chunk without burning an attempt
        (used when the pool dies for reasons that are not the chunk's
        fault — a neighbour crashed or timed out)."""
        for fut in list(inflight):
            ci, att, _ = inflight.pop(fut)
            pending.append(ci)

    def rebuild_or_fallback() -> Optional[List[Any]]:
        """Replace the dead pool; past the cap, finish serially."""
        nonlocal pool
        _kill_pool(pool)
        pool = None
        report.pool_rebuilds += 1
        tel.count("exec.pool_rebuilds")
        if report.pool_rebuilds <= policy.max_pool_rebuilds:
            try:
                pool = new_pool()
                return None
            except OSError as exc:
                report.failures.append(
                    ChunkFailure(-1, 0, "crash", f"pool rebuild: {exc!r}")
                )
        if not policy.serial_fallback:
            raise WorkerCrashError(
                f"worker pool died {report.pool_rebuilds} times "
                f"(rebuild cap {policy.max_pool_rebuilds}); giving up",
                attempts=report.pool_rebuilds,
            )
        warnings.warn(
            f"worker pool died {report.pool_rebuilds} times; running "
            f"{len(pending)} remaining chunk(s) serially",
            RuntimeWarning,
            stacklevel=4,
        )
        report.serial_fallback = True
        tel.count("exec.serial_fallbacks")
        _run_initializer(initializer, initargs)
        remaining = sorted(set(pending))
        for ci in remaining:
            with tel.span("exec.chunk", chunk=ci, fallback=True):
                results[ci] = task(items[ci])
            attempts[ci] += 1
            report.chunk_attempts[ci] = attempts[ci]
        pending.clear()
        return [results[i] for i in range(len(items))]

    try:
        try:
            pool = new_pool()
        except OSError as exc:
            warnings.warn(
                f"process pool unavailable ({exc!r}); running serially",
                RuntimeWarning,
                stacklevel=3,
            )
            report.serial_fallback = True
            return _serial_with_retries(
                task, items, initializer, initargs, policy, report
            )

        while pending or inflight:
            # Keep exactly eff chunks in flight so per-task deadlines
            # start when a task can actually start.
            broken = False
            while pending and len(inflight) < eff:
                ci = pending.popleft()
                att = attempts[ci]
                try:
                    fut = pool.submit(
                        _invoke_chunk, task, items[ci], ci, att, spec,
                        collect_spans,
                    )
                except (BrokenProcessPool, RuntimeError):
                    pending.appendleft(ci)
                    broken = True
                    break
                deadline = (
                    time.monotonic() + policy.timeout_s
                    if policy.timeout_s is not None
                    else None
                )
                inflight[fut] = (ci, att, deadline)

            if not broken and inflight:
                timeout = None
                if policy.timeout_s is not None:
                    now = time.monotonic()
                    timeout = max(
                        0.0,
                        min(
                            d for (_, _, d) in inflight.values()
                            if d is not None
                        )
                        - now,
                    )
                done, _ = wait(
                    set(inflight), timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
                for fut in done:
                    ci, att, _ = inflight.pop(fut)
                    try:
                        value = fut.result()
                        if isinstance(value, _WorkerEnvelope):
                            tel.absorb_worker_events(value.events)
                            value = value.value
                        results[ci] = value
                        attempts[ci] = att + 1
                        report.chunk_attempts[ci] = att + 1
                    except BrokenProcessPool:
                        broken = True
                        charge(ci, att, "crash", "worker process died")
                    except policy.retry_on as exc:
                        charge(ci, att, "transient", repr(exc))
                        time.sleep(policy.backoff_s(ci, att))
                    except Exception as exc:
                        # A genuine task bug: propagate, never degrade.
                        attempts[ci] = att + 1
                        report.chunk_attempts[ci] = att + 1
                        report.failures.append(
                            ChunkFailure(ci, att, "error", repr(exc))
                        )
                        _kill_pool(pool)
                        raise ExecutionError(
                            f"task failed on chunk {ci} "
                            f"(attempt {att + 1}): {exc!r}",
                            chunk_index=ci,
                            attempts=att + 1,
                            cause=exc,
                        ) from exc

                # Hung chunks: past-deadline futures still in flight.
                if policy.timeout_s is not None:
                    now = time.monotonic()
                    overdue = [
                        fut
                        for fut, (_, _, dl) in inflight.items()
                        if dl is not None and now >= dl
                    ]
                    if overdue:
                        for fut in overdue:
                            ci, att, _ = inflight.pop(fut)
                            report.n_timeouts += 1
                            charge(
                                ci, att, "timeout",
                                f"exceeded {policy.timeout_s}s",
                            )
                        # The hung workers must die; innocents in
                        # flight are requeued uncharged.
                        drain_requeue_uncharged()
                        fallback = rebuild_or_fallback()
                        if fallback is not None:
                            return fallback
                        continue

            if broken:
                drain_requeue_uncharged()
                fallback = rebuild_or_fallback()
                if fallback is not None:
                    return fallback

        return [results[i] for i in range(len(items))]
    finally:
        _kill_pool(pool)
