"""Process-pool map with per-worker initialisation and serial fallback.

The workloads this serves (fault-simulating a fault partition, SCAP-
grading a pattern chunk) all share one shape: an expensive read-only
context (netlist, simulators, delay model) plus many small independent
work items.  Rebuilding the context per item would drown the pool in
setup cost, so :func:`pool_map` takes an *initializer* that runs once
per worker process and stashes the rebuilt context in a module-level
slot; tasks then only ship their small work item.

Execution is delegated to :func:`repro.perf.resilient.resilient_map`:
per-chunk futures with bounded retries, per-task timeouts, crash
isolation onto rebuilt pools, and a last-resort serial fallback that is
reserved for genuine infrastructure failures —

* ``n_workers <= 1`` (or one work item, or zero) runs serially in the
  calling process, invoking the initializer locally first;
* platforms whose best start method cannot ship the *callables*
  (pickling failures, missing ``fork``/``spawn`` support, a pool that
  cannot be created or keeps dying) degrade to the same serial path
  with a warning instead of raising.

Exceptions raised *by the task itself* are real bugs: they propagate as
:class:`~repro.errors.ExecutionError` with the original exception
chained, and never trigger a silent serial re-run.

Results are always returned in input order.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence, Tuple


def available_workers() -> int:
    """CPUs visible to this process (the natural worker-count ceiling)."""
    return os.cpu_count() or 1


def resolve_workers(n_workers: Optional[int], n_items: int) -> int:
    """Effective worker count for *n_items* work items.

    ``None`` means "use every core"; explicit counts are honoured as
    given (oversubscription is the caller's choice) but never exceed the
    number of work items — an idle worker is pure fork cost.
    """
    if n_workers is None:
        n_workers = available_workers()
    return max(1, min(int(n_workers), max(1, n_items)))


def chunk_slices(n_items: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal ``(start, stop)`` slices covering *n_items*."""
    n_chunks = max(1, min(n_chunks, n_items)) if n_items else 0
    slices: List[Tuple[int, int]] = []
    base, extra = divmod(n_items, n_chunks) if n_chunks else (0, 0)
    start = 0
    for i in range(n_chunks):
        stop = start + base + (1 if i < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


def chunked(items: Sequence[Any], n_chunks: int) -> List[List[Any]]:
    """Split *items* into at most *n_chunks* contiguous near-equal runs."""
    return [
        list(items[start:stop])
        for start, stop in chunk_slices(len(items), n_chunks)
    ]


def _mp_context():
    """Prefer fork (cheap copy-on-write context inheritance); fall back
    to spawn where fork is unavailable (Windows, some macOS setups)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def pool_map(
    task: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    n_workers: Optional[int] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    policy=None,
    report=None,
) -> List[Any]:
    """Map *task* over *items* across worker processes, in order.

    *task* and *initializer* must be module-level callables (picklable
    by reference); the initializer runs once per worker before any task
    and typically rebuilds simulators into a module global.

    This is a thin front door onto
    :func:`repro.perf.resilient.resilient_map`: crashed workers requeue
    only their in-flight chunks, hung chunks are cancelled after the
    policy's ``timeout_s``, transient task failures retry with backoff,
    and only genuine infrastructure failure degrades to serial.  A task
    exception (``TypeError`` in your kernel, a malformed item) is *not*
    infrastructure: it propagates as
    :class:`~repro.errors.ExecutionError` with the original exception
    chained, instead of silently doubling runtime on a serial re-run.

    *policy* (a :class:`~repro.perf.resilient.RetryPolicy`) and
    *report* (an :class:`~repro.perf.resilient.ExecutionReport` filled
    in place) are optional; the ambient default policy is used when
    *policy* is None.
    """
    from .resilient import resilient_map

    return resilient_map(
        task,
        items,
        n_workers=n_workers,
        initializer=initializer,
        initargs=initargs,
        policy=policy,
        report=report,
    )
