"""Zero-copy pattern transport over named shared memory.

The pool paths ship a read-only ``(n_patterns, n_flops)`` 0/1 matrix to
every worker.  Under a ``spawn`` start method that means pickling the
matrix once per worker (and once per chunk for the SCAP path, whose
work items used to carry their own matrix slices); under ``fork`` it
means a private copy-on-write page set per worker.  This module packs
the matrix with :func:`numpy.packbits` (8 patterns per byte) into one
named :class:`multiprocessing.shared_memory.SharedMemory` segment:
workers *attach* by name and unpack, so the bits cross the process
boundary zero-copy and work items shrink to ``(start, stop)`` row
ranges.

Lifecycle contract: the **creator** unlinks.  Workers attach/close;
a worker SIGKILLed mid-chunk leaves only its (auto-reaped) mapping, so
as long as the parent's ``unlink`` runs — :class:`shared_matrix` is a
context manager precisely so it always does — no segment outlives the
run.  Every create/attach/unlink bumps an ``shm.*`` telemetry counter
and a process-local registry, which tests use to assert leak-freedom
after chaos runs (:func:`active_segments`).
"""

from __future__ import annotations

import secrets
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..obs import current_telemetry

try:  # pragma: no cover - always present on supported platforms
    from multiprocessing import shared_memory as _shm_mod
except ImportError:  # pragma: no cover
    _shm_mod = None


def shm_available() -> bool:
    """Whether named shared memory is supported on this platform."""
    return _shm_mod is not None


#: Segments created (not yet unlinked) by this process, by name.
_ACTIVE: Dict[str, "SharedPatternMatrix"] = {}
_ACTIVE_LOCK = threading.Lock()


def active_segments() -> List[str]:
    """Names of segments this process created and has not unlinked."""
    with _ACTIVE_LOCK:
        return sorted(_ACTIVE)


@dataclass(frozen=True)
class ShmHandle:
    """Everything a worker needs to attach: name + logical shape.

    Plain data, cheap to pickle — this is what rides in ``initargs``
    instead of the matrix itself.
    """

    name: str
    n_rows: int
    n_cols: int


class SharedPatternMatrix:
    """A packed bit matrix living in a named shared-memory segment."""

    def __init__(self, shm, handle: ShmHandle, owner: bool):
        self._shm = shm
        self.handle = handle
        self.owner = owner
        self._unlinked = False

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, matrix: np.ndarray) -> "SharedPatternMatrix":
        """Pack *matrix* (0/1, 2-D) into a fresh named segment."""
        if _shm_mod is None:  # pragma: no cover
            raise RuntimeError("shared memory is not available on this platform")
        m = np.asarray(matrix)
        if m.ndim != 2:
            raise ValueError("shared matrix must be 2-D")
        bits = (m != 0).astype(np.uint8, copy=False)
        packed = np.packbits(bits, axis=1, bitorder="little")
        name = f"repro_shm_{secrets.token_hex(6)}"
        shm = _shm_mod.SharedMemory(name=name, create=True, size=max(1, packed.nbytes))
        buf = np.ndarray(packed.shape, dtype=np.uint8, buffer=shm.buf)
        buf[:] = packed
        handle = ShmHandle(name=shm.name, n_rows=m.shape[0], n_cols=m.shape[1])
        seg = cls(shm, handle, owner=True)
        with _ACTIVE_LOCK:
            _ACTIVE[shm.name] = seg
        current_telemetry().count("shm.created")
        return seg

    @classmethod
    def attach(cls, handle: ShmHandle) -> "SharedPatternMatrix":
        """Attach to an existing segment (worker side)."""
        if _shm_mod is None:  # pragma: no cover
            raise RuntimeError("shared memory is not available on this platform")
        # Attaching re-registers the name with the resource tracker, but
        # pool workers share the parent's tracker process, so that is a
        # set no-op — the one registration is cleared by the creator's
        # unlink.  (Do NOT unregister here: with a shared tracker that
        # would also cancel the creator's registration.)
        shm = _shm_mod.SharedMemory(name=handle.name)
        current_telemetry().count("shm.attached")
        return cls(shm, handle, owner=False)

    # ------------------------------------------------------------------
    def matrix(self) -> np.ndarray:
        """Unpack back to the original ``(n_rows, n_cols)`` 0/1 matrix."""
        h = self.handle
        row_bytes = (h.n_cols + 7) // 8
        packed = np.ndarray(
            (h.n_rows, row_bytes), dtype=np.uint8, buffer=self._shm.buf
        )
        if h.n_rows == 0 or h.n_cols == 0:
            return np.zeros((h.n_rows, h.n_cols), dtype=np.uint8)
        return np.unpackbits(
            packed, axis=1, count=h.n_cols, bitorder="little"
        )

    def close(self) -> None:
        """Drop this process's mapping (segment itself survives)."""
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        if not self.owner or self._unlinked:
            return
        self._unlinked = True
        self.close()
        try:
            self._shm.unlink()
        except (OSError, FileNotFoundError):
            pass
        with _ACTIVE_LOCK:
            _ACTIVE.pop(self.handle.name, None)
        current_telemetry().count("shm.unlinked")


@contextmanager
def shared_matrix(
    matrix: Optional[np.ndarray],
) -> Iterator[Optional[ShmHandle]]:
    """Create a segment for *matrix* and guarantee the unlink.

    ``None`` passes through (callers can keep one code path for the
    optional V2 matrix).
    """
    if matrix is None:
        yield None
        return
    seg = SharedPatternMatrix.create(matrix)
    try:
        yield seg.handle
    finally:
        seg.unlink()


def resolve_matrix(source: "np.ndarray | ShmHandle | None"):
    """Worker-side: a usable matrix from either transport.

    ``ShmHandle`` attaches, unpacks (the unpacked matrix is a private
    copy) and detaches immediately; anything else passes through
    :func:`numpy.asarray`; ``None`` stays ``None``.
    """
    if source is None:
        return None
    if isinstance(source, ShmHandle):
        seg = SharedPatternMatrix.attach(source)
        try:
            return seg.matrix()
        finally:
            seg.close()
    return np.asarray(source)
