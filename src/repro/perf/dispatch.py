"""Work-size-aware execution dispatch (serial / batch / pool / shm).

``BENCH_perf.json`` taught us the hard lesson: a process pool is not a
speedup, it is a *bet* — pool spin-up, per-worker initialisation and
result pickling are paid up front, and only enough work wins them back.
On a small batch the single-process batched path beats the pool by an
order of magnitude; at SOC scale (thousands of per-block sessions) the
pool wins.  This module makes that call from the work size instead of
hoping:

* :func:`decide_fsim` / :func:`decide_scap` estimate the serial cost of
  a grading call from design size and pattern/fault counts and pick
  in-process batch or the worker pool, sized to the *usable* cores;
* :class:`DispatchPolicy` + :func:`dispatch_policy` scope the knobs
  ambiently (the :func:`repro.perf.resilient.execution_policy`
  pattern), so ``n_workers="auto"`` at any call site —
  :meth:`~repro.atpg.fsim.FaultSimulator.run_batch`,
  :meth:`~repro.power.calculator.ScapCalculator.profile_patterns`, the
  flows — resolves against one policy without threading knobs through
  every signature;
* transport selection: pool work ships its pattern matrix zero-copy
  over :mod:`repro.perf.shm` when the matrix is big enough to matter.

Decision tree (documented in docs/architecture.md)::

    n_workers explicit int        -> honour it (back-compat)
    n_workers "auto":
      forced mode in policy       -> that mode
      usable_cpus() < 2           -> batch
      est_serial_s * (1 - 1/w)
         <= pool_overhead_s       -> batch (pool cannot win back setup)
      else                        -> pool(w), shm transport if the
                                     matrix >= shm_min_bytes
"""

from __future__ import annotations

import dataclasses
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

from ..errors import ConfigError
from ..obs import current_telemetry
from .shm import shm_available

#: Accepted ``mode`` values for a :class:`DispatchPolicy`.
MODES = ("auto", "batch", "pool")
#: Accepted ``transport`` values.
TRANSPORTS = ("auto", "inherit", "shm")


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.cpu_count()`` reports the machine; a container or cgroup cpuset
    often grants far fewer.  Dispatch (and honest benchmark reporting)
    must use the usable number.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class DispatchPolicy:
    """Knobs of the serial/batch/pool decision.  Immutable; share freely."""

    #: "auto" decides from work size; "batch"/"pool" force a mode.
    mode: str = "auto"
    #: Worker-count ceiling for pool decisions (None = usable cores).
    n_workers: Optional[int] = None
    #: "auto" ships matrices over shared memory when big enough;
    #: "inherit"/"shm" force the transport.
    transport: str = "auto"
    #: Estimated fixed cost of going parallel: pool creation plus
    #: per-worker context rebuild (with a warm kernel cache).
    pool_overhead_s: float = 0.25
    #: Throughput estimates feeding the serial-cost model.  They only
    #: need to be right within ~an order of magnitude — the decision is
    #: a step function, not a regression.
    fsim_fault_patterns_per_s: float = 10e6
    scap_s_per_pattern: float = 1.5e-3
    #: Matrices below this many packed bytes ride initargs; above, shm.
    shm_min_bytes: int = 1 << 14

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigError(f"dispatch mode must be one of {MODES}")
        if self.transport not in TRANSPORTS:
            raise ConfigError(
                f"dispatch transport must be one of {TRANSPORTS}"
            )


DEFAULT_DISPATCH = DispatchPolicy()

_dispatch_stack: List[DispatchPolicy] = [DEFAULT_DISPATCH]


def current_dispatch() -> DispatchPolicy:
    """The policy ``n_workers="auto"`` call sites resolve against."""
    return _dispatch_stack[-1]


@contextmanager
def dispatch_policy(
    policy: Optional[DispatchPolicy] = None, **overrides
) -> Iterator[DispatchPolicy]:
    """Scope a dispatch policy: ``with dispatch_policy(mode="pool"):``.

    *overrides* apply on top of *policy* (or the current default), so
    nested scopes compose — same contract as
    :func:`repro.perf.resilient.execution_policy`.
    """
    base = policy if policy is not None else current_dispatch()
    scoped = dataclasses.replace(base, **overrides) if overrides else base
    _dispatch_stack.append(scoped)
    try:
        yield scoped
    finally:
        _dispatch_stack.pop()


@dataclass(frozen=True)
class Decision:
    """One resolved dispatch: what to run and why."""

    mode: str  # "batch" | "pool"
    n_workers: int  # 1 for batch
    use_shm: bool
    est_serial_s: float
    reason: str


def _workers(policy: DispatchPolicy, n_items: int) -> int:
    cap = policy.n_workers if policy.n_workers is not None else usable_cpus()
    return max(1, min(int(cap), max(1, n_items)))


def _transport(
    policy: DispatchPolicy, matrix_bytes: int, n_workers: int
) -> bool:
    if n_workers <= 1 or not shm_available():
        return False
    if policy.transport == "shm":
        return True
    if policy.transport == "inherit":
        return False
    return matrix_bytes // 8 >= policy.shm_min_bytes  # packed size

def _decide(
    kind: str,
    est_serial_s: float,
    n_items: int,
    matrix_bytes: int,
    policy: Optional[DispatchPolicy],
) -> Decision:
    policy = policy if policy is not None else current_dispatch()
    w = _workers(policy, n_items)
    if policy.mode == "batch" or w <= 1:
        decision = Decision(
            "batch", 1, False, est_serial_s,
            "forced batch" if policy.mode == "batch" else "single core",
        )
    elif policy.mode == "pool":
        decision = Decision(
            "pool", w, _transport(policy, matrix_bytes, w),
            est_serial_s, "forced pool",
        )
    else:
        # The pool saves at most est * (1 - 1/w) of wall clock and
        # costs ~pool_overhead_s to stand up.
        saving = est_serial_s * (1.0 - 1.0 / w)
        if saving > policy.pool_overhead_s:
            decision = Decision(
                "pool", w, _transport(policy, matrix_bytes, w),
                est_serial_s,
                f"saving {saving:.2f}s > overhead {policy.pool_overhead_s}s",
            )
        else:
            decision = Decision(
                "batch", 1, False, est_serial_s,
                f"saving {saving:.2f}s <= overhead {policy.pool_overhead_s}s",
            )
    current_telemetry().count(
        f"dispatch.{kind}", mode=decision.mode
    )
    return decision


def decide_fsim(
    n_patterns: int,
    n_faults: int,
    matrix_bytes: int = 0,
    policy: Optional[DispatchPolicy] = None,
) -> Decision:
    """Batch or pool for a fault-simulation grading call."""
    policy = policy if policy is not None else current_dispatch()
    est = (n_patterns * n_faults) / policy.fsim_fault_patterns_per_s
    return _decide("fsim", est, n_faults, matrix_bytes, policy)


def decide_scap(
    n_patterns: int,
    matrix_bytes: int = 0,
    policy: Optional[DispatchPolicy] = None,
) -> Decision:
    """Batch or pool for a SCAP pattern-grading call."""
    policy = policy if policy is not None else current_dispatch()
    est = n_patterns * policy.scap_s_per_pattern
    return _decide("scap", est, n_patterns, matrix_bytes, policy)


#: Sentinel accepted by ``n_workers=`` at grading call sites.
AUTO = "auto"


def wants_auto(n_workers: Union[int, str, None]) -> bool:
    """True when a call site asked the dispatcher to choose."""
    return isinstance(n_workers, str) and n_workers == AUTO
