"""Deterministic fault injection for the resilient execution layer.

Every recovery path in :mod:`repro.perf.resilient` — worker-crash
requeue, hang cancellation, transient retry — is exercised by tests
through this harness instead of being trusted.  A :class:`ChaosSpec`
names, per *chunk index* and *attempt number*, which misfortune to
inflict on the worker that picks the chunk up:

* ``kill`` — ``os.kill(getpid(), SIGKILL)``: the worker dies without
  cleanup, breaking the process pool exactly like an OOM kill;
* ``hang`` — sleep far past any reasonable per-task timeout, so the
  executor must cancel and replace the worker;
* ``fail`` — raise :class:`~repro.errors.TransientError` (or another
  configured exception type), exercising backoff-and-retry.

Keying on ``(chunk_index, attempt)`` makes every scenario fully
deterministic and cross-process consistent: "kill chunk 2 on its first
attempt" injects exactly once, and the retry of chunk 2 runs clean.
The spec travels to workers alongside each submitted chunk, so it works
under both fork and spawn start methods.

Usage::

    from repro.perf import chaos

    with chaos.inject(chaos.ChaosSpec(kill={2: (0,)})):
        out = fsim.run_batch(matrix, faults, n_workers=2)

Injection applies only to the pooled execution path; serial runs (and
the last-resort serial fallback) execute the bare task.
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Type

from ..errors import TransientError

#: How long a ``hang`` injection sleeps.  Long enough that only timeout
#: cancellation (never patience) can get past it, short enough that a
#: leaked worker cannot outlive a CI job.
HANG_SLEEP_S = 600.0


@dataclass(frozen=True)
class ChaosSpec:
    """Which chunks, on which attempts, suffer which failure.

    Each mapping is ``chunk_index -> attempts`` (attempt numbers are
    0-based; the first try is attempt 0).  An empty spec injects
    nothing.
    """

    kill: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    hang: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    fail: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    #: Exception type raised by ``fail`` injections; must be a
    #: module-level class (it crosses the process boundary).
    fail_with: Type[BaseException] = TransientError
    hang_s: float = HANG_SLEEP_S

    def is_empty(self) -> bool:
        return not (self.kill or self.hang or self.fail)


def apply(spec: Optional[ChaosSpec], chunk_index: int, attempt: int) -> None:
    """Inflict the spec's misfortune for ``(chunk_index, attempt)``.

    Runs *inside the worker process*, before the real task.  Order is
    kill > hang > fail, though a sane spec assigns at most one per key.
    """
    if spec is None:
        return
    if attempt in spec.kill.get(chunk_index, ()):
        os.kill(os.getpid(), signal.SIGKILL)
    if attempt in spec.hang.get(chunk_index, ()):
        time.sleep(spec.hang_s)
    if attempt in spec.fail.get(chunk_index, ()):
        raise spec.fail_with(
            f"chaos: injected failure on chunk {chunk_index} "
            f"attempt {attempt}"
        )


#: The spec currently armed by :func:`inject` (``None`` = no chaos).
_ACTIVE: Optional[ChaosSpec] = None


def active_spec() -> Optional[ChaosSpec]:
    """The armed spec, consulted by ``resilient_map`` at submit time."""
    return _ACTIVE


@contextmanager
def inject(spec: ChaosSpec):
    """Arm *spec* for every resilient map started inside the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = spec
    try:
        yield spec
    finally:
        _ACTIVE = previous
