"""Digest-keyed pattern-profile cache.

The staged flow grades the same launch states repeatedly: every stage
re-screens the accumulated pattern set, the figure/table reproductions
re-profile patterns the validation already simulated, and quiet fill-0
patterns are frequently byte-identical.  A gate-level timing simulation
costs milliseconds; a digest lookup costs microseconds.

Keys are SHA-1 digests of the pattern's V1 bytes plus a *context*
tuple (design token, domain, engine, VDD, period, protocol), so one
cache can safely serve several calculators.  Values are whatever the
caller stores — by convention a
:class:`~repro.power.scap.PatternPowerProfile`, whose ``pattern_index``
the caller re-stamps on hit (the profile of a launch state does not
depend on where the pattern sits in the set).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple


def digest_key(payload: bytes, context: Tuple = ()) -> str:
    """SHA-1 digest of *payload* under a hashable *context* tuple."""
    h = hashlib.sha1(payload)
    h.update(repr(context).encode("utf-8"))
    return h.hexdigest()


class PatternProfileCache:
    """Bounded LRU cache mapping digest keys to pattern profiles."""

    def __init__(self, max_entries: Optional[int] = 65536):
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive or None")
        self.max_entries = max_entries
        self._store: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def get(self, key: str) -> Optional[Any]:
        """Cached value for *key*, bumping it to most-recently-used."""
        value = self._store.get(key)
        if value is None and key not in self._store:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        self._store[key] = value
        self._store.move_to_end(key)
        if self.max_entries is not None:
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Hit/miss counters for reporting and benchmarks."""
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
        }
