"""Persistent on-disk compiled-kernel cache.

Fault simulation code-generates one straight-line Python kernel per
fault-site fanout cone (see :meth:`repro.atpg.fsim.FaultSimulator`).
Generating and ``compile()``-ing ~2 000 of them costs seconds — paid
once per :class:`FaultSimulator`, which under a process pool means once
per *worker* per run.  This cache makes that cost once per *netlist*:
compiled kernels are stored on disk as :mod:`marshal`-serialised code
objects keyed by a structural netlist fingerprint, and a warm load
(``marshal.loads`` + one ``FunctionType`` per site) is ~100x cheaper
than recompiling.

Layout (one file per ``(netlist, domain, kernel schema, Python
bytecode magic)`` combination, name fully derived from the key)::

    <root>/
        <sha1-hex>.kc     # 20-byte sha1 checksum + marshal payload

The payload is ``(schema, magic, {site: (captures, gates, code)})``
with ``code = None`` for cones that reach no capture net.  Every read
verifies the checksum and the embedded schema/magic, so a corrupted or
foreign entry degrades to a miss (recompile), never a failure; writes
go through a temp file + :func:`os.replace`, so concurrent workers
racing on a cold cache at worst overwrite each other with identical
content.  The directory is bounded: past ``max_entries`` files the
oldest (by mtime) are evicted.

The cache is ambient by default (like
:func:`repro.perf.resilient.execution_policy`): simulators pick up
:func:`current_kernel_cache` unless handed an explicit cache or
``None``.  ``REPRO_KERNEL_CACHE=0`` disables it process-wide;
``REPRO_KERNEL_CACHE_DIR`` moves the default root (otherwise
``~/.cache/repro/kernels``).
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from types import CodeType
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..obs import current_telemetry

#: Bump when the kernel code generator changes shape: a schema mismatch
#: invalidates every cached entry (they simply stop matching their key).
KERNEL_SCHEMA_VERSION = 1

#: Python bytecode magic — marshalled code objects are only valid for
#: the interpreter that produced them.
_MAGIC = importlib.util.MAGIC_NUMBER

#: site -> (capture nets, cone gates, compiled kernel code or None).
KernelTable = Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...], Optional[CodeType]]]


def default_cache_root() -> Path:
    """Resolve the default on-disk location for kernel caches."""
    env = os.environ.get("REPRO_KERNEL_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "kernels"


def cache_enabled() -> bool:
    """False when ``REPRO_KERNEL_CACHE`` is set to 0/false/off."""
    return os.environ.get("REPRO_KERNEL_CACHE", "1").lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def netlist_fingerprint(netlist, extra: Tuple = ()) -> str:
    """SHA-1 over the netlist *structure* (plus a context tuple).

    Everything a compiled cone kernel depends on feeds the hash: gate
    kinds and connectivity, flop wiring/edges/domains and net count.  A
    mutated netlist therefore lands on a different cache entry and can
    never be served stale kernels.
    """
    h = hashlib.sha1()
    h.update(netlist.name.encode("utf-8", "replace"))
    h.update(b"|%d|%d|%d" % (netlist.n_nets, netlist.n_gates, netlist.n_flops))
    for g in netlist.gates:
        h.update(g.kind.encode("ascii", "replace"))
        h.update(b",".join(b"%d" % p for p in g.inputs))
        h.update(b">%d;" % g.output)
    for f in netlist.flops:
        h.update(
            b"F%d:%d:%s:%s;"
            % (
                f.d,
                f.q,
                f.clock_domain.encode("utf-8", "replace"),
                f.edge.encode("ascii", "replace"),
            )
        )
    h.update(repr(extra).encode("utf-8"))
    return h.hexdigest()


class KernelCache:
    """Digest-keyed persistent store of compiled cone kernels."""

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        max_entries: int = 128,
    ):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.root = Path(root) if root is not None else default_cache_root()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        # In-memory table memo: later simulators in the same process
        # skip the read+checksum+marshal entirely.  Safe because an
        # entry's content is a pure function of its key.
        self._mem: Dict[str, KernelTable] = {}

    # ------------------------------------------------------------------
    def entry_key(self, fingerprint: str, domain: str) -> str:
        """Fully-resolved entry key: design + domain + schema + magic."""
        h = hashlib.sha1(fingerprint.encode("ascii"))
        h.update(domain.encode("utf-8", "replace"))
        h.update(b"|v%d|" % KERNEL_SCHEMA_VERSION)
        h.update(_MAGIC)
        return h.hexdigest()

    def entry_path(self, key: str) -> Path:
        return self.root / f"{key}.kc"

    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[KernelTable]:
        """The cached kernel table for *key*, or None on any miss.

        A checksum failure, truncated file, marshal error or
        schema/magic mismatch all count as a miss — the corrupt file is
        removed so the next store starts clean.

        Loads are memoized per instance: the second simulator for the
        same netlist in one process never touches the disk (so on-disk
        damage after a successful load goes unnoticed until a fresh
        process / cache instance reads the file again).
        """
        tel = current_telemetry()
        mem = self._mem.get(key)
        if mem is not None:
            self.hits += 1
            tel.count("kcache.hits")
            return mem
        path = self.entry_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            tel.count("kcache.misses")
            return None
        table = self._decode(raw)
        if table is None:
            self.misses += 1
            tel.count("kcache.misses")
            tel.count("kcache.corrupt_entries")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        tel.count("kcache.hits")
        self._mem[key] = table
        try:  # LRU touch for eviction ordering
            os.utime(path, None)
        except OSError:
            pass
        return table

    def store(self, key: str, table: KernelTable) -> None:
        """Atomically persist *table* under *key*, evicting past the cap."""
        payload = marshal.dumps((KERNEL_SCHEMA_VERSION, _MAGIC, table))
        blob = hashlib.sha1(payload).digest() + payload
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".kc.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, self.entry_path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return  # a read-only cache dir disables persistence, not the run
        self._mem[key] = table
        self.stores += 1
        current_telemetry().count("kcache.stores")
        self._evict()

    @staticmethod
    def _decode(raw: bytes) -> Optional[KernelTable]:
        if len(raw) < 20:
            return None
        digest, payload = raw[:20], raw[20:]
        if hashlib.sha1(payload).digest() != digest:
            return None
        try:
            schema, magic, table = marshal.loads(payload)
        except (ValueError, EOFError, TypeError):
            return None
        if schema != KERNEL_SCHEMA_VERSION or magic != _MAGIC:
            return None
        if not isinstance(table, dict):
            return None
        return table

    def _evict(self) -> None:
        try:
            entries = sorted(
                self.root.glob("*.kc"), key=lambda p: p.stat().st_mtime
            )
        except OSError:
            return
        excess = len(entries) - self.max_entries
        for path in entries[:max(0, excess)]:
            try:
                path.unlink()
            except OSError:
                continue
            self.evictions += 1
            current_telemetry().count("kcache.evictions")

    # ------------------------------------------------------------------
    def entries(self) -> List[Path]:
        try:
            return sorted(self.root.glob("*.kc"))
        except OSError:
            return []

    def stats(self) -> Dict[str, Any]:
        return {
            "root": str(self.root),
            "entries": len(self.entries()),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }


# ----------------------------------------------------------------------
# ambient default (execution_policy pattern)
# ----------------------------------------------------------------------
_UNSET = object()
_cache_stack: List[Optional[KernelCache]] = [_UNSET]  # type: ignore[list-item]


def current_kernel_cache() -> Optional[KernelCache]:
    """The ambient cache simulators use by default (None = disabled)."""
    top = _cache_stack[-1]
    if top is _UNSET:
        top = KernelCache() if cache_enabled() else None
        _cache_stack[-1] = top
    return top


@contextmanager
def use_kernel_cache(cache: Optional[KernelCache]) -> Iterator[Optional[KernelCache]]:
    """Scope the ambient kernel cache (``None`` disables caching)::

        with use_kernel_cache(KernelCache(tmp_path)):
            FaultSimulator(netlist, domain)  # compiles into tmp_path
    """
    _cache_stack.append(cache)
    try:
        yield cache
    finally:
        _cache_stack.pop()
