"""EDT-style test-data compression (LFSR decompressor + seed solving).

Industrial test compression (TestKompress/EDT) feeds the scan chains
from a small on-chip LFSR-based decompressor: the tester stores only a
*seed* per pattern, and the decompressor's pseudo-random expansion fills
the chains.  Because every scan bit is a GF(2)-linear function of the
seed, a cube's care bits become a linear system — solvable whenever the
care count is comfortably below the seed width.

Relevance to the paper: the expansion is pseudo-random, so compressed
patterns inherit *random-fill switching behaviour* — compression and
supply-noise-aware fill pull in opposite directions, which the
compression benchmark quantifies.

Model
-----
* one ``n_seed_bits``-wide Fibonacci LFSR, seeded per pattern, clocked
  once per shift cycle;
* a phase shifter: each chain's input is the XOR of three fixed LFSR
  taps (decorrelates adjacent chains);
* chains shift exactly as in :mod:`repro.dft.shift`: all finish
  together, a chain of length ``L`` starts at cycle ``L_max - L``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ScanError
from .scan import ScanConfig

#: Fibonacci taps by LFSR width (primitive polynomials).
_LFSR_TAPS: Dict[int, Sequence[int]] = {
    24: (24, 23, 22, 17),
    32: (32, 22, 2, 1),
    48: (48, 47, 21, 20),
    64: (64, 63, 61, 60),
}


@dataclass
class CompressionResult:
    """Outcome of compressing a pattern set."""

    seeds: List[Optional[int]]  # None = unsolvable (fallback pattern)
    n_seed_bits: int
    n_flops: int

    @property
    def n_compressed(self) -> int:
        """Cubes successfully turned into seeds."""
        return sum(1 for s in self.seeds if s is not None)

    @property
    def fallback_fraction(self) -> float:
        """Share of cubes that must ship uncompressed."""
        if not self.seeds:
            return 0.0
        return 1.0 - self.n_compressed / len(self.seeds)

    @property
    def compression_ratio(self) -> float:
        """Tester-data ratio: chain bits vs seed bits per pattern
        (fallback patterns ship uncompressed)."""
        if not self.seeds:
            return 1.0
        full = self.n_flops * len(self.seeds)
        stored = sum(
            self.n_seed_bits if s is not None else self.n_flops
            for s in self.seeds
        )
        return full / max(1, stored)


class EdtCompressor:
    """Seed solver + expander for one design's scan configuration."""

    def __init__(self, scan: ScanConfig, n_seed_bits: int = 64):
        if n_seed_bits not in _LFSR_TAPS:
            raise ScanError(
                f"unsupported seed width {n_seed_bits}; choose from "
                f"{sorted(_LFSR_TAPS)}"
            )
        self.scan = scan
        self.n_seed_bits = n_seed_bits
        self._taps = _LFSR_TAPS[n_seed_bits]
        self.n_flops = scan.total_cells
        self._max_len = max(c.length for c in scan.chains)

        # Symbolic LFSR: state[i] is the GF(2) mask (over seed bits) of
        # register position i.  Initial state: position i = seed bit i.
        state: List[int] = [1 << i for i in range(n_seed_bits)]
        n_chains = len(scan.chains)

        def phase_taps(chain_idx: int) -> List[int]:
            # Chain-dependent spacing: tap triples must not be pure
            # translations of one another, or a time shift of the LFSR
            # aliases one chain's stream onto another's (identical
            # rows -> unsolvable cubes).
            taps: List[int] = []
            pos = (chain_idx * 7) % n_seed_bits
            step = 11 + 2 * chain_idx
            while len(taps) < 3:
                if pos not in taps:
                    taps.append(pos)
                pos = (pos + step) % n_seed_bits
                step += 1
            return taps

        tap_table = [phase_taps(ci) for ci in range(n_chains)]

        def phase_shift(chain_idx: int) -> int:
            mask = 0
            for tap in tap_table[chain_idx]:
                mask ^= state[tap]
            return mask

        # Row mask per flop: which seed bits XOR into its loaded value.
        self.row_of_flop: Dict[int, int] = {}
        for cycle in range(self._max_len):
            for ci, chain in enumerate(scan.chains):
                start = self._max_len - chain.length
                if cycle < start:
                    continue
                k = cycle - start  # k-th bit shifted into this chain
                # The bit entering at shift k lands at position L-1-k.
                fi = chain.flops[chain.length - 1 - k]
                self.row_of_flop[fi] = phase_shift(ci)
            # Clock the LFSR (Fibonacci: new bit = XOR of taps).
            fb = 0
            for tap in self._taps:
                fb ^= state[tap - 1]
            state = [fb] + state[:-1]

    # ------------------------------------------------------------------
    def expand(self, seed: int) -> np.ndarray:
        """Full scan vector produced by a seed."""
        v1 = np.zeros(self.n_flops, dtype=np.uint8)
        for fi, row in self.row_of_flop.items():
            v1[fi] = bin(row & seed).count("1") & 1
        return v1

    def compress_cube(self, cube: Dict[int, int]) -> Optional[int]:
        """Solve for a seed reproducing the cube's care bits.

        Returns None when the linear system is inconsistent (too many /
        conflicting care bits for the seed width).
        """
        rows: List[int] = []
        rhs: List[int] = []
        for fi, bit in cube.items():
            row = self.row_of_flop.get(fi)
            if row is None:
                if bit & 1:
                    return None  # cell not fed by the decompressor
                continue
            rows.append(row)
            rhs.append(bit & 1)
        return _solve_gf2(rows, rhs, self.n_seed_bits)

    def compress_pattern_set(self, pattern_set) -> CompressionResult:
        """Compress every pattern's care bits; None entries fall back."""
        seeds: List[Optional[int]] = []
        for pattern in pattern_set:
            cube = {
                fi: int(pattern.v1[fi])
                for fi in range(pattern.n_flops)
                if pattern.care[fi]
            }
            seeds.append(self.compress_cube(cube))
        return CompressionResult(
            seeds=seeds,
            n_seed_bits=self.n_seed_bits,
            n_flops=self.n_flops,
        )


def _solve_gf2(
    rows: List[int], rhs: List[int], n_bits: int
) -> Optional[int]:
    """Gaussian elimination over GF(2); any consistent solution."""
    # Augment: bit n_bits holds the RHS.  Gauss-Jordan: every stored
    # pivot row is kept clear of all other pivot columns, so reading a
    # particular solution (free variables = 0) is direct.
    col_mask = (1 << n_bits) - 1
    pivots: Dict[int, int] = {}  # column -> fully-reduced row
    for value in (row | (b << n_bits) for row, b in zip(rows, rhs)):
        cur = value
        # Eliminate every existing pivot column from the new row (a
        # stored pivot row never contains another pivot column, so one
        # sweep per remaining pivot suffices).
        while True:
            hit = False
            for col, row_val in pivots.items():
                if (cur >> col) & 1:
                    cur ^= row_val
                    hit = True
            if not hit:
                break
        cols = cur & col_mask
        if cols == 0:
            if (cur >> n_bits) & 1:
                return None  # 0 = 1: inconsistent
            continue  # redundant equation
        col = cols.bit_length() - 1
        # Keep the Jordan invariant: clear the new column everywhere.
        for other_col in list(pivots):
            if (pivots[other_col] >> col) & 1:
                pivots[other_col] ^= cur
        pivots[col] = cur
    seed = 0
    for col, row in pivots.items():
        if (row >> n_bits) & 1:
            seed |= 1 << col
    return seed
