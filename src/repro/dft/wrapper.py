"""Test wrappers: block scan cells repartitioned into TAM-width chains.

A block tested through a *w*-line TAM gets its scan cells regrouped
into *w* balanced wrapper chains, one per TAM line; shifting then takes
``ceil(cells / w)`` cycles per pattern instead of ``cells``.  This is
the wrapper side of wrapper/TAM co-optimisation: the discrete width
options and the ``t(w) ~ t(1)/w`` time model the scheduler trades over
both come from here.

Width options are derived from the design's scan structure: a block
cannot usefully spread across more wrapper chains than it has scan
cells, and the natural upper bound is the number of existing scan
chains crossing the block (each chain is an independent shift path the
wrapper can tap).  Options are the powers of two up to that bound,
plus the bound itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, TYPE_CHECKING, Tuple

from ..errors import ConfigError, ScanError

if TYPE_CHECKING:  # pragma: no cover
    from ..soc.design import SocDesign


@dataclass(frozen=True)
class WrapperPlan:
    """One block's wrapper configuration at a given TAM width."""

    block: str
    width: int
    #: Wrapper chains as flop-index tuples, in TAM-line order.
    chains: Tuple[Tuple[int, ...], ...]

    @property
    def max_chain_length(self) -> int:
        """Shift cycles per pattern at this width."""
        return max((len(c) for c in self.chains), default=0)

    @property
    def n_cells(self) -> int:
        return sum(len(c) for c in self.chains)


def partition_wrapper_chains(
    cells: Sequence[int], width: int
) -> List[List[int]]:
    """Split scan cells into *width* balanced wrapper chains.

    Cells are dealt round-robin in the given order, so chain lengths
    differ by at most one and the longest chain is ``ceil(n/width)`` —
    the best achievable shift depth for equal-length cells.
    """
    if width < 1:
        raise ConfigError("wrapper width must be >= 1")
    if not cells:
        raise ScanError("no scan cells to wrap")
    chains: List[List[int]] = [[] for _ in range(min(width, len(cells)))]
    for i, cell in enumerate(cells):
        chains[i % len(chains)].append(cell)
    return chains


def wrapper_widths_for_block(
    design: "SocDesign",
    block: str,
    max_width: Optional[int] = None,
) -> List[int]:
    """Discrete wrapper width options for *block*.

    The ceiling is the number of scan chains crossing the block (capped
    by *max_width* and by the block's cell count); the options are the
    powers of two up to the ceiling, plus the ceiling itself.  Returns
    ``[1]`` for blocks with scan cells on a single chain and ``[]`` for
    blocks with no scan cells at all.
    """
    cells = design.flops_in_block(block)
    scan_cells = [
        fi for fi in cells if design.netlist.flops[fi].is_scan
    ]
    if not scan_cells:
        return []
    ceiling = len(design.chains_in_block(block))
    ceiling = min(ceiling, len(scan_cells))
    if max_width is not None:
        ceiling = min(ceiling, max_width)
    ceiling = max(1, ceiling)
    widths = {w for w in (1, 2, 4, 8, 16, 32, 64) if w <= ceiling}
    widths.add(ceiling)
    return sorted(widths)


def wrapper_plan(
    design: "SocDesign", block: str, width: int
) -> WrapperPlan:
    """Build the *block*'s wrapper chains at *width* TAM lines.

    Cells are taken in existing (chain, position) shift order, so the
    partition is deterministic and reconstructible from the netlist's
    scan metadata alone.
    """
    cells = [
        fi
        for fi in design.flops_in_block(block)
        if design.netlist.flops[fi].is_scan
    ]
    if not cells:
        raise ScanError(f"block {block!r} has no scan cells to wrap")

    def shift_key(fi: int) -> Tuple[int, int, int]:
        flop = design.netlist.flops[fi]
        chain = flop.chain if flop.chain is not None else 1 << 30
        pos = flop.chain_pos if flop.chain_pos is not None else 1 << 30
        return (chain, pos, fi)

    ordered = sorted(cells, key=shift_key)
    chains = partition_wrapper_chains(ordered, width)
    return WrapperPlan(
        block=block,
        width=len(chains),
        chains=tuple(tuple(c) for c in chains),
    )
