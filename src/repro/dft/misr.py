"""MISR response compaction.

Testers rarely shift every captured response off-chip; a multiple-input
signature register (MISR) folds all responses into one signature that
is compared against the good-machine value.  This module provides the
software model: a standard LFSR-based MISR over the captured scan
states, signature computation for whole pattern sets, and the classic
aliasing-probability estimate ``2^-n``.

Used here to (a) complete the DFT substrate and (b) let tests assert
that a fault's effect survives compaction (signature differs from the
good signature).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import ScanError

#: Primitive polynomial taps (Fibonacci form) by register width.
_PRIMITIVE_TAPS: Dict[int, Sequence[int]] = {
    16: (16, 15, 13, 4),
    24: (24, 23, 22, 17),
    32: (32, 22, 2, 1),
}


class Misr:
    """A multiple-input signature register of width ``n_bits``."""

    def __init__(self, n_bits: int = 32, seed: int = 0):
        if n_bits not in _PRIMITIVE_TAPS:
            raise ScanError(
                f"unsupported MISR width {n_bits}; choose from "
                f"{sorted(_PRIMITIVE_TAPS)}"
            )
        self.n_bits = n_bits
        self._mask = (1 << n_bits) - 1
        self._taps = _PRIMITIVE_TAPS[n_bits]
        self.state = seed & self._mask

    def reset(self, seed: int = 0) -> None:
        """Reload the register with a seed."""
        self.state = seed & self._mask

    def _feedback(self) -> int:
        fb = 0
        for tap in self._taps:
            fb ^= (self.state >> (tap - 1)) & 1
        return fb

    def clock(self, parallel_in: int) -> None:
        """One MISR cycle: shift with feedback, XOR the input word in."""
        fb = self._feedback()
        self.state = ((self.state << 1) | fb) & self._mask
        self.state ^= parallel_in & self._mask

    def absorb_response(self, bits: Iterable[int]) -> None:
        """Feed a captured scan state, ``n_bits`` bits per cycle."""
        word = 0
        count = 0
        for bit in bits:
            word = (word << 1) | (bit & 1)
            count += 1
            if count == self.n_bits:
                self.clock(word)
                word = 0
                count = 0
        if count:
            self.clock(word)

    @property
    def signature(self) -> int:
        """Current register contents (the compacted signature)."""
        return self.state

    @property
    def aliasing_probability(self) -> float:
        """Classic steady-state estimate: 2^-n."""
        """Classic steady-state estimate: 2^-n."""
        return 2.0 ** -self.n_bits


def signature_of_responses(
    responses: Sequence[Dict[int, int]],
    flop_order: Sequence[int],
    n_bits: int = 32,
    seed: int = 0,
) -> int:
    """MISR signature over a sequence of captured responses.

    ``responses`` are per-pattern flop->bit capture maps (e.g. the
    ``captured`` field of :func:`repro.sim.logic.loc_launch_capture`);
    ``flop_order`` fixes the bit ordering (use the scan-out order).
    """
    misr = Misr(n_bits=n_bits, seed=seed)
    for response in responses:
        misr.absorb_response(
            response.get(fi, 0) & 1 for fi in flop_order
        )
    return misr.signature


def capture_responses(
    netlist,
    pattern_set,
    domain: str,
) -> List[Dict[int, int]]:
    """Good-machine captured responses for every pattern (LOC)."""
    from ..sim.logic import LogicSim, loc_launch_capture

    sim = LogicSim(netlist)
    out: List[Dict[int, int]] = []
    for pattern in pattern_set:
        cyc = loc_launch_capture(sim, pattern.v1_dict(), domain)
        out.append({fi: v & 1 for fi, v in cyc.captured.items()})
    return out
