"""At-speed scan test protocols: launch-off-capture, launch-off-shift,
enhanced scan.

A protocol defines *how the launch state V2 is derived from the shifted
state V1* (paper Section 1.1) and the clocking of the launch-to-capture
cycle.  The actual state computation needs a logic simulator and lives
in :mod:`repro.sim.logic`; this module holds the protocol descriptors
and the pure-data transformations (e.g. the shift-by-one of LOS).

Only the launch-to-capture window matters for supply noise here — shift
power is explicitly out of scope (slow 10 MHz shift clock), matching the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence

from ..errors import ScanError

if TYPE_CHECKING:  # pragma: no cover
    from .scan import ScanConfig


@dataclass(frozen=True)
class AtSpeedProtocol:
    """Descriptor of one launch mechanism.

    ``style`` is one of ``"loc"`` (launch-off-capture, a.k.a. broadside:
    V2 is the functional response to V1), ``"los"`` (launch-off-shift,
    a.k.a. skewed-load: V2 is V1 shifted one position along each chain)
    or ``"es"`` (enhanced scan: V2 arbitrary, needs hold-scan cells).
    """

    style: str
    description: str

    def __post_init__(self) -> None:
        if self.style not in ("loc", "los", "es"):
            raise ScanError(f"unknown protocol style {self.style!r}")

    @property
    def v2_is_functional(self) -> bool:
        """True when V2 is computed by the circuit itself (LOC)."""
        return self.style == "loc"

    def shift_state(
        self,
        v1: Dict[int, int],
        scan: "ScanConfig",
        scan_in_bits: Dict[int, int] | None = None,
    ) -> Dict[int, int]:
        """The LOS launch state: each cell takes its upstream neighbour.

        ``v1`` maps flop index -> bit.  The scan-in end of each chain
        takes the corresponding bit of *scan_in_bits* (keyed by chain
        index; defaults to 0), mimicking the final shift-in bit.

        Raises
        ------
        ScanError
            If called on a protocol other than LOS.
        """
        if self.style != "los":
            raise ScanError(f"shift_state is LOS-only, not {self.style!r}")
        out: Dict[int, int] = {}
        for chain in scan.chains:
            for pos, fi in enumerate(chain.flops):
                if pos == 0:
                    bit = 0
                    if scan_in_bits is not None:
                        bit = scan_in_bits.get(chain.index, 0)
                    out[fi] = bit
                else:
                    out[fi] = v1[chain.flops[pos - 1]]
        return out


#: The paper's protocol: V2 = functional response (broadside).
LAUNCH_OFF_CAPTURE = AtSpeedProtocol(
    "loc",
    "launch-off-capture / broadside: V2 is the functional response to V1",
)

#: Related-work baseline: V2 = one-bit shift of V1 (skewed-load).
LAUNCH_OFF_SHIFT = AtSpeedProtocol(
    "los",
    "launch-off-shift / skewed-load: V2 is V1 shifted by one chain position",
)

#: Related-work baseline: arbitrary (V1, V2) pairs via hold-scan cells.
ENHANCED_SCAN = AtSpeedProtocol(
    "es",
    "enhanced scan: V1 and V2 are both fully controllable",
)
