"""STIL-flavoured pattern interchange (writer and reader).

Commercial flows hand patterns between ATPG, simulation and ATE as STIL
(IEEE 1450).  This module writes a pattern set in a compact STIL-like
dialect — enough structure for diffing, archiving and reloading — and
reads it back:

```
STIL 1.0;
Header { Title "..."; Domain clka; Fill random; }
ScanStructures { Chain 0 { Length 12; Cells f0 f1 ...; } ... }
Pattern 0 { Targets 2; Care 17; Load 0101...; Mask 0011...; }
```

``Load`` is the V1 vector over all flops in *flop index order*; ``Mask``
marks ATPG care bits.  A round-trip preserves everything a
:class:`~repro.atpg.patterns.PatternSet` carries.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, TextIO

import numpy as np

from ..atpg.patterns import Pattern, PatternSet
from ..errors import ScanError
from .scan import ScanConfig


def write_stil(
    pattern_set: PatternSet,
    stream: TextIO,
    scan: Optional[ScanConfig] = None,
    title: str = "repro pattern set",
) -> None:
    """Write a pattern set in the STIL-like dialect."""
    stream.write("STIL 1.0;\n")
    stream.write("Header {\n")
    stream.write(f'  Title "{title}";\n')
    stream.write(f"  Domain {pattern_set.domain};\n")
    stream.write(f"  Fill {pattern_set.fill};\n")
    stream.write(f"  Patterns {len(pattern_set)};\n")
    stream.write("}\n")
    if scan is not None:
        stream.write("ScanStructures {\n")
        for chain in scan.chains:
            stream.write(
                f"  Chain {chain.index} {{ Length {chain.length}; "
                f"Edge {chain.edge}; }}\n"
            )
        stream.write("}\n")
    for pattern in pattern_set:
        load = "".join(str(int(b)) for b in pattern.v1)
        mask = "".join("1" if c else "0" for c in pattern.care)
        targets = ",".join(str(t) for t in pattern.targeted_faults)
        stream.write(f"Pattern {pattern.index} {{\n")
        stream.write(f"  Targets {targets or '-'};\n")
        stream.write(f"  Care {pattern.care_count};\n")
        stream.write(f"  Load {load};\n")
        stream.write(f"  Mask {mask};\n")
        stream.write("}\n")


_HEADER_FIELD = re.compile(r"^\s*(\w+)\s+(.+?);\s*$")
_PATTERN_OPEN = re.compile(r"^\s*Pattern\s+(\d+)\s*\{\s*$")


def read_stil(stream: TextIO) -> PatternSet:
    """Read a pattern set written by :func:`write_stil`.

    Raises
    ------
    ScanError
        On malformed content (wrong magic, truncated pattern blocks,
        inconsistent vector lengths).
    """
    lines = stream.read().splitlines()
    if not lines or not lines[0].startswith("STIL"):
        raise ScanError("not a STIL pattern file")

    domain = "clka"
    fill = "random"
    patterns: List[Pattern] = []
    i = 1
    n_flops: Optional[int] = None

    while i < len(lines):
        line = lines[i].strip()
        if line.startswith("Header"):
            i += 1
            while i < len(lines) and "}" not in lines[i]:
                m = _HEADER_FIELD.match(lines[i])
                if m:
                    key, value = m.group(1), m.group(2).strip()
                    if key == "Domain":
                        domain = value
                    elif key == "Fill":
                        fill = value
                i += 1
        elif line.startswith("ScanStructures"):
            while i < len(lines) and not lines[i].strip() == "}":
                i += 1
        elif _PATTERN_OPEN.match(line):
            index = int(_PATTERN_OPEN.match(line).group(1))
            fields: Dict[str, str] = {}
            i += 1
            while i < len(lines) and "}" not in lines[i]:
                m = _HEADER_FIELD.match(lines[i])
                if m:
                    fields[m.group(1)] = m.group(2).strip()
                i += 1
            if "Load" not in fields or "Mask" not in fields:
                raise ScanError(f"pattern {index} missing Load/Mask")
            load = fields["Load"]
            mask = fields["Mask"]
            if len(load) != len(mask):
                raise ScanError(f"pattern {index}: Load/Mask length differ")
            if n_flops is None:
                n_flops = len(load)
            elif len(load) != n_flops:
                raise ScanError(
                    f"pattern {index}: vector length {len(load)} != "
                    f"{n_flops}"
                )
            targets: List[int] = []
            raw = fields.get("Targets", "-")
            if raw != "-":
                targets = [int(t) for t in raw.split(",") if t]
            patterns.append(
                Pattern(
                    index=index,
                    v1=np.array([int(c) for c in load], dtype=np.uint8),
                    care=np.array([c == "1" for c in mask], dtype=bool),
                    domain=domain,
                    fill=fill,
                    targeted_faults=targets,
                )
            )
        i += 1

    out = PatternSet(domain, fill=fill)
    for p in patterns:
        out.append(p)
    return out
