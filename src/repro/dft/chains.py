"""Placement-aware scan-chain ordering.

The paper's physical implementation performs "scan cell ordering to
minimize scan chain wirelength"; we reproduce that with a serpentine
(boustrophedon) ordering: flops are binned into horizontal bands and
traversed left-to-right / right-to-left in alternating bands, the
standard row-based ordering heuristic.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..netlist.netlist import Netlist


def order_flops_serpentine(
    netlist: Netlist, flop_indices: Sequence[int], n_bands: int = 0
) -> List[int]:
    """Order *flop_indices* to roughly minimise chain wirelength.

    Parameters
    ----------
    netlist:
        The design (for flop positions; unplaced flops sort last in
        input order).
    flop_indices:
        The flops to order (one chain's membership).
    n_bands:
        Number of horizontal bands; 0 picks ``sqrt(n)`` automatically.
    """
    placed = [fi for fi in flop_indices if netlist.flops[fi].pos is not None]
    unplaced = [fi for fi in flop_indices if netlist.flops[fi].pos is None]
    if not placed:
        return list(flop_indices)

    if n_bands <= 0:
        n_bands = max(1, int(math.sqrt(len(placed))))
    ys = [netlist.flops[fi].pos[1] for fi in placed]
    y_min, y_max = min(ys), max(ys)
    span = max(y_max - y_min, 1e-9)

    bands: Dict[int, List[int]] = {}
    for fi in placed:
        y = netlist.flops[fi].pos[1]
        band = min(n_bands - 1, int((y - y_min) / span * n_bands))
        bands.setdefault(band, []).append(fi)

    ordered: List[int] = []
    for band in sorted(bands):
        row = sorted(bands[band], key=lambda fi: netlist.flops[fi].pos[0])
        if band % 2 == 1:
            row.reverse()
        ordered.extend(row)
    return ordered + unplaced


def chain_wirelength(
    netlist: Netlist, ordered_flops: Sequence[int]
) -> float:
    """Total Manhattan length of the scan routing along a chain order."""
    total = 0.0
    prev: Tuple[float, float] | None = None
    for fi in ordered_flops:
        pos = netlist.flops[fi].pos
        if pos is None:
            continue
        if prev is not None:
            total += abs(pos[0] - prev[0]) + abs(pos[1] - prev[1])
        prev = pos
    return total
