"""Design-for-test substrate: scan chains and at-speed test protocols.

Mirrors the paper's DFT setup: full scan with 16 placement-ordered
chains, negative-edge flops on a dedicated chain, and launch-off-capture
at-speed testing (launch-off-shift and enhanced scan are provided as the
related-work baselines).
"""

from .scan import ScanChain, ScanConfig, insert_scan_chains
from .chains import order_flops_serpentine, chain_wirelength
from .protocol import AtSpeedProtocol, LAUNCH_OFF_CAPTURE, LAUNCH_OFF_SHIFT, ENHANCED_SCAN
from .compression import CompressionResult, EdtCompressor
from .misr import Misr, capture_responses, signature_of_responses
from .shift import ShiftActivity, shift_activity_summary, simulate_shift_in
from .stil import read_stil, write_stil
from .testpoints import insert_observation_points
from .wrapper import (
    WrapperPlan,
    partition_wrapper_chains,
    wrapper_plan,
    wrapper_widths_for_block,
)

__all__ = [
    "AtSpeedProtocol",
    "ENHANCED_SCAN",
    "LAUNCH_OFF_CAPTURE",
    "LAUNCH_OFF_SHIFT",
    "CompressionResult",
    "EdtCompressor",
    "Misr",
    "ScanChain",
    "ScanConfig",
    "ShiftActivity",
    "capture_responses",
    "chain_wirelength",
    "signature_of_responses",
    "insert_observation_points",
    "insert_scan_chains",
    "order_flops_serpentine",
    "read_stil",
    "shift_activity_summary",
    "simulate_shift_in",
    "write_stil",
    "WrapperPlan",
    "partition_wrapper_chains",
    "wrapper_plan",
    "wrapper_widths_for_block",
]
