"""Scan shift simulation and shift-power estimation.

The paper deliberately scopes shift IR-drop out (10 MHz shift clock),
but the *fill choice* still changes shift power dramatically — that is
why TetraMAX's ``fill-adjacent`` exists ("mostly useful to minimize
power usage during scan shifting by reducing signal switching").  This
module makes that trade-off measurable:

* :func:`simulate_shift_in` walks a pattern into the chains cycle by
  cycle and reports the scan-cell transition count per shift cycle (the
  standard weighted-switching-activity proxy for shift power),
* :func:`shift_activity_summary` compares whole pattern sets.

The model counts scan-cell output toggles during shifting; the
combinational cloud ripples with them, so cell toggles are the accepted
first-order proxy (used by the WSA literature).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ScanError
from .scan import ScanConfig


@dataclass(frozen=True)
class ShiftActivity:
    """Transition statistics for shifting one pattern in."""

    n_cycles: int
    transitions_per_cycle: np.ndarray  # scan-cell toggles each cycle
    total_transitions: int

    @property
    def mean_transitions_per_cycle(self) -> float:
        """Average scan-cell toggles per shift cycle."""
        if self.n_cycles == 0:
            return 0.0
        return float(self.transitions_per_cycle.mean())

    @property
    def peak_transitions_per_cycle(self) -> int:
        """Worst single shift cycle (peak shift power proxy)."""
        if self.n_cycles == 0:
            return 0
        return int(self.transitions_per_cycle.max())


def simulate_shift_in(
    pattern_v1: np.ndarray,
    scan: ScanConfig,
    initial_state: Optional[np.ndarray] = None,
) -> ShiftActivity:
    """Shift a pattern into all chains and count cell transitions.

    All chains shift simultaneously; the number of cycles is the longest
    chain's length.  Each chain's scan-in stream is chosen so that after
    shifting, the chain holds its slice of ``pattern_v1`` (cell at chain
    position p receives the bit destined for it).

    Parameters
    ----------
    pattern_v1:
        Target scan state, indexed by flop.
    scan:
        The scan configuration.
    initial_state:
        Pre-shift state (defaults to all zeros — e.g. after reset).
    """
    n_flops = pattern_v1.shape[0]
    state = (
        np.zeros(n_flops, dtype=np.uint8)
        if initial_state is None
        else np.array(initial_state, dtype=np.uint8).copy()
    )
    if state.shape[0] != n_flops:
        raise ScanError("initial_state length mismatch")

    n_cycles = max(c.length for c in scan.chains)
    transitions = np.zeros(n_cycles, dtype=np.int64)

    # Per-chain scan-in streams, first-shifted bit first.  After L
    # shifts the bit shifted in at cycle k sits at position L-1-k... we
    # instead construct directly: to end with chain.flops[p] == v1[p],
    # the stream (entering position 0 each cycle) must present the
    # deepest cell's bit first.
    streams: Dict[int, List[int]] = {}
    for chain in scan.chains:
        bits = [int(pattern_v1[fi]) for fi in chain.flops]
        streams[chain.index] = bits[::-1]

    for cycle in range(n_cycles):
        toggles = 0
        for chain in scan.chains:
            length = chain.length
            remaining = n_cycles - cycle
            if remaining > length:
                continue  # shorter chain starts late so all finish together
            stream = streams[chain.index]
            incoming = stream[length - remaining]
            # Shift: each cell takes its upstream neighbour's value.
            prev_vals = [state[fi] for fi in chain.flops]
            new_vals = [incoming] + prev_vals[:-1]
            for pos, fi in enumerate(chain.flops):
                if state[fi] != new_vals[pos]:
                    toggles += 1
                state[fi] = new_vals[pos]
        transitions[cycle] = toggles

    # Verify the shift landed the pattern (internal consistency check).
    for chain in scan.chains:
        for pos, fi in enumerate(chain.flops):
            if state[fi] != pattern_v1[fi]:
                raise ScanError(
                    f"shift model error: chain {chain.index} pos {pos}"
                )
    return ShiftActivity(
        n_cycles=n_cycles,
        transitions_per_cycle=transitions,
        total_transitions=int(transitions.sum()),
    )


def shift_activity_summary(
    pattern_set,
    scan: ScanConfig,
) -> Dict[str, float]:
    """Aggregate shift activity for a pattern set.

    Successive patterns shift in over the previous pattern's *response*;
    as a fill-comparison proxy we shift each pattern over the previous
    pattern's load state, which captures the stream-structure effect the
    fill policies differ in.
    """
    totals: List[int] = []
    peaks: List[int] = []
    prev: Optional[np.ndarray] = None
    for pattern in pattern_set:
        activity = simulate_shift_in(pattern.v1, scan, initial_state=prev)
        totals.append(activity.total_transitions)
        peaks.append(activity.peak_transitions_per_cycle)
        prev = pattern.v1
    if not totals:
        return {"patterns": 0.0, "mean_total": 0.0, "mean_peak": 0.0}
    return {
        "patterns": float(len(totals)),
        "mean_total": float(np.mean(totals)),
        "mean_peak": float(np.mean(peaks)),
    }
