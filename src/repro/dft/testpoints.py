"""Observation test-point insertion.

The generated SOC (like any real design) carries fault mass that the
launch-off-capture flow cannot observe — reconvergent stems, logic
feeding only other domains, deep masked cones.  The classic fix is
test-point insertion; the *observation-only* flavour is functionally
transparent: a new scan flop simply watches a poorly-observable net.

`insert_observation_points` picks the worst nets by the SCOAP-style
observability estimate (:mod:`repro.atpg.scoap`) and adds an observing
scan flop per net, wiring it into the dominant domain so the existing
LOC machinery captures it.  The new flops extend the scan configuration
in place (appended to the shortest chains).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..atpg.scoap import analyze_testability
from ..errors import ScanError
from ..netlist.netlist import Netlist
from .scan import ScanConfig


def insert_observation_points(
    netlist: Netlist,
    scan: ScanConfig,
    domain: str,
    n_points: int = 8,
    min_observability: float = 0.05,
) -> List[int]:
    """Add observation scan flops on the least-observable nets.

    Returns the new flop indexes.  Nets already observable above
    *min_observability*, nets that are flop D pins (already captured)
    and undriven nets are skipped.
    """
    if n_points < 1:
        raise ScanError("n_points must be >= 1")
    netlist.freeze()
    report = analyze_testability(netlist, domain)

    already_captured = {f.d for f in netlist.flops}
    candidates: List[Tuple[float, int]] = []
    for net in range(netlist.n_nets):
        if netlist.driver_of(net) is None:
            continue
        if net in already_captured:
            continue
        obs = float(report.observability[net])
        if obs < min_observability:
            candidates.append((obs, net))
    candidates.sort()
    chosen = [net for _obs, net in candidates[:n_points]]

    new_flops: List[int] = []
    for k, net in enumerate(chosen):
        drv = netlist.driver_of(net)
        pos = None
        block = None
        if drv is not None and drv[0] == "gate":
            pos = netlist.gates[drv[1]].pos
            block = netlist.gates[drv[1]].block
        elif drv is not None and drv[0] == "flop":
            pos = netlist.flops[drv[1]].pos
            block = netlist.flops[drv[1]].block
        q = netlist.add_net(f"tp_obs_q{k}_{net}")
        fi = netlist.add_flop(
            f"tp_obs_f{k}_{net}",
            "SDFFX1",
            d=net,
            q=q,
            clock_domain=domain,
            edge="pos",
            is_scan=True,
            block=block,
            pos=pos,
        )
        new_flops.append(fi)

    # Extend the scan chains: shortest positive-edge chain first.
    pos_chains = [c for c in scan.chains if c.edge == "pos"]
    if not pos_chains:
        raise ScanError("no positive-edge chains to extend")
    for fi in new_flops:
        chain = min(pos_chains, key=lambda c: c.length)
        chain.flops.append(fi)
        netlist.flops[fi].chain = chain.index
        netlist.flops[fi].chain_pos = chain.length - 1
        scan.chain_of_flop[fi] = chain.index

    netlist._invalidate()
    netlist.freeze()
    return new_flops
