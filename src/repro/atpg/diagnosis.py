"""Transition-fault diagnosis: from tester failures to fault candidates.

When a part fails at-speed test, product engineering needs to know
*where* before physical failure analysis: the input is the syndrome —
which patterns failed at which capturing flops — and the output is a
ranked list of candidate fault sites.

This module implements classic cause-effect diagnosis: every candidate
transition fault is simulated against the pattern set, its predicted
syndrome compared with the observed one, and candidates ranked by match
quality (intersection / union of failing (pattern, endpoint) pairs,
i.e. Jaccard score; exact-match candidates rank first).

Cone filtering keeps it fast: only faults whose fanout cone reaches at
least one failing endpoint can explain the syndrome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import AtpgError
from ..netlist.netlist import Netlist
from ..sim.logic import LogicSim, loc_launch_capture
from .faults import TransitionFault
from .fsim import FaultSimulator

#: A syndrome: set of (pattern index, failing flop index) pairs.
Syndrome = FrozenSet[Tuple[int, int]]


@dataclass(frozen=True)
class DiagnosisCandidate:
    """One ranked explanation of the observed failures."""

    fault: TransitionFault
    score: float  # Jaccard match of predicted vs observed syndrome
    predicted_fails: int
    matched_fails: int

    @property
    def exact(self) -> bool:
        return self.score == 1.0


@dataclass
class DiagnosisResult:
    observed: Syndrome
    candidates: List[DiagnosisCandidate] = field(default_factory=list)

    def best(self) -> Optional[DiagnosisCandidate]:
        return self.candidates[0] if self.candidates else None

    def exact_matches(self) -> List[DiagnosisCandidate]:
        return [c for c in self.candidates if c.exact]


class TransitionFaultDiagnoser:
    """Cause-effect diagnosis engine for one design + domain."""

    def __init__(self, netlist: Netlist, domain: str):
        self.netlist = netlist
        self.domain = domain
        self.fsim = FaultSimulator(netlist, domain)
        self._sim = LogicSim(netlist)
        netlist.freeze()
        # flop index by D net for syndrome construction.
        self._flops_by_dnet: Dict[int, List[int]] = {}
        for fi, f in enumerate(netlist.flops):
            if f.clock_domain == domain and f.edge == "pos":
                self._flops_by_dnet.setdefault(f.d, []).append(fi)

    # ------------------------------------------------------------------
    def predicted_syndrome(
        self, pattern_set, fault: TransitionFault
    ) -> Syndrome:
        """(pattern, flop) failures the fault would produce."""
        fails: Set[Tuple[int, int]] = set()
        matrix = pattern_set.as_matrix()
        n = matrix.shape[0]
        batch = 64
        for lo in range(0, n, batch):
            chunk = matrix[lo:lo + batch]
            per_flop = self._per_flop_detection(chunk, fault)
            for fi, word in per_flop.items():
                w = word
                while w:
                    bit = (w & -w).bit_length() - 1
                    fails.add((lo + bit, fi))
                    w &= w - 1
        return frozenset(fails)

    def _per_flop_detection(
        self, v1_matrix: np.ndarray, fault: TransitionFault
    ) -> Dict[int, int]:
        """Like FaultSimulator.run but resolved per capturing flop."""
        packed, mask = self.fsim.pack(v1_matrix)
        cyc = loc_launch_capture(self._sim, packed, self.domain, mask=mask)
        f1, g2 = cyc.frame1, cyc.frame2
        site = fault.net
        act = f1[site] if fault.initial_value else (~f1[site] & mask)
        if act == 0:
            return {}
        cone_gates, captures = self.fsim.cone_of(site)
        if not captures:
            return {}
        forced = mask if fault.initial_value else 0
        faulty: Dict[int, int] = {site: forced}
        get = faulty.get
        from ..netlist.cells import CELL_FUNCTIONS

        gates = self.netlist.gates
        for gi in cone_gates:
            gate = gates[gi]
            out = CELL_FUNCTIONS[gate.kind](
                [get(p, g2[p]) for p in gate.inputs], mask
            )
            if out != g2[gate.output]:
                faulty[gate.output] = out
        per_flop: Dict[int, int] = {}
        for net in captures:
            diff = (get(net, g2[net]) ^ g2[net]) & act
            if diff:
                for fi in self._flops_by_dnet.get(net, ()):
                    per_flop[fi] = per_flop.get(fi, 0) | diff
        return per_flop

    # ------------------------------------------------------------------
    def diagnose(
        self,
        pattern_set,
        observed: Syndrome,
        candidates: Sequence[TransitionFault],
        top_k: int = 10,
        min_score: float = 0.05,
    ) -> DiagnosisResult:
        """Rank candidate faults against an observed syndrome."""
        if not observed:
            raise AtpgError("empty syndrome: nothing to diagnose")
        failing_flops = {fi for _p, fi in observed}
        failing_dnets = {
            self.netlist.flops[fi].d for fi in failing_flops
        }

        ranked: List[DiagnosisCandidate] = []
        for fault in candidates:
            # Cone filter: the fault must reach a failing endpoint.
            _gates, captures = self.fsim.cone_of(fault.net)
            if not failing_dnets & set(captures):
                continue
            predicted = self.predicted_syndrome(pattern_set, fault)
            if not predicted:
                continue
            inter = len(predicted & observed)
            union = len(predicted | observed)
            score = inter / union if union else 0.0
            if score >= min_score:
                ranked.append(
                    DiagnosisCandidate(
                        fault=fault,
                        score=score,
                        predicted_fails=len(predicted),
                        matched_fails=inter,
                    )
                )
        ranked.sort(key=lambda c: (-c.score, -c.matched_fails))
        return DiagnosisResult(observed=observed,
                               candidates=ranked[:top_k])

    def observe(
        self, pattern_set, fault: TransitionFault
    ) -> Syndrome:
        """Simulate a defective chip: the syndrome the tester would log."""
        return self.predicted_syndrome(pattern_set, fault)
