"""Transition delay fault model, universe construction and collapsing.

A transition fault sits on a *stem* (a driven net): slow-to-rise (STR)
or slow-to-fall (STF).  Under launch-off-capture it is tested by a
pattern pair in which frame 1 sets the stem to the initial value and
frame 2 both drives the opposite value and propagates the (stuck-at-
initial-value) fault effect to a capturing scan flop.

Collapsing folds faults through single-input kinds: a transition at a
BUF/CLKBUF output is equivalent to the same transition at its input
stem, and at an INV output to the opposite transition at the input —
the standard structural equivalence for transition faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import AtpgError
from ..netlist.cells import (
    INVERTING_SINGLE_INPUT_KINDS,
    NONINVERTING_SINGLE_INPUT_KINDS,
)
from ..netlist.netlist import Netlist

#: Slow-to-rise: frame 1 = 0, frame 2 behaves stuck-at-0.
STR = "str"
#: Slow-to-fall: frame 1 = 1, frame 2 behaves stuck-at-1.
STF = "stf"


@dataclass(frozen=True)
class TransitionFault:
    """One transition delay fault on a stem net."""

    net: int
    kind: str  # STR or STF

    def __post_init__(self) -> None:
        if self.kind not in (STR, STF):
            raise AtpgError(f"bad transition fault kind {self.kind!r}")

    @property
    def initial_value(self) -> int:
        """Required frame-1 value at the stem (and the stuck value)."""
        return 0 if self.kind == STR else 1

    @property
    def final_value(self) -> int:
        """The value frame 2 must drive in the good machine."""
        return 1 - self.initial_value

    def describe(self, netlist: Netlist) -> str:
        return f"{self.kind.upper()}@{netlist.net_names[self.net]}"


def build_fault_universe(
    netlist: Netlist,
    blocks: Optional[Iterable[str]] = None,
) -> List[TransitionFault]:
    """All transition faults on gate and flop output stems.

    Parameters
    ----------
    netlist:
        The design.
    blocks:
        Optional block filter; when given, only stems driven by
        instances of these blocks are included (the staged flow of the
        paper targets faults block by block).
    """
    allowed = set(blocks) if blocks is not None else None
    stems: List[int] = []
    for g in netlist.gates:
        if allowed is None or g.block in allowed:
            stems.append(g.output)
    for f in netlist.flops:
        if allowed is None or f.block in allowed:
            stems.append(f.q)
    faults: List[TransitionFault] = []
    for net in stems:
        faults.append(TransitionFault(net, STR))
        faults.append(TransitionFault(net, STF))
    return faults


def collapse_faults(
    netlist: Netlist, faults: Sequence[TransitionFault]
) -> Tuple[List[TransitionFault], Dict[TransitionFault, TransitionFault]]:
    """Structural equivalence collapsing through BUF/INV chains.

    Returns ``(representatives, mapping)`` where every input fault maps
    to its representative (a fault whose stem is not the output of a
    single-input gate, or the chain head if the chain starts at one).
    """
    netlist.freeze()

    def fold(fault: TransitionFault) -> TransitionFault:
        net, kind = fault.net, fault.kind
        seen: Set[int] = set()
        while True:
            drv = netlist.driver_of(net)
            if drv is None or drv[0] != "gate":
                break
            gate = netlist.gates[drv[1]]
            if gate.kind in NONINVERTING_SINGLE_INPUT_KINDS:
                nxt = gate.inputs[0]
            elif gate.kind in INVERTING_SINGLE_INPUT_KINDS:
                nxt = gate.inputs[0]
                kind = STF if kind == STR else STR
            else:
                break
            if nxt in seen:  # defensive: malformed loop
                break
            seen.add(net)
            net = nxt
        return TransitionFault(net, kind)

    mapping: Dict[TransitionFault, TransitionFault] = {}
    reps: Dict[TransitionFault, None] = {}
    for fault in faults:
        rep = fold(fault)
        mapping[fault] = rep
        reps.setdefault(rep, None)
    return list(reps), mapping


def fault_block(netlist: Netlist, fault: TransitionFault) -> Optional[str]:
    """The SOC block owning a fault's stem (via its driver instance)."""
    drv = netlist.driver_of(fault.net)
    if drv is None:
        return None
    kind, idx = drv
    if kind == "gate":
        return netlist.gates[idx].block
    if kind == "flop":
        return netlist.flops[idx].block
    return None
