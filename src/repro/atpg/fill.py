"""Don't-care fill policies for test cubes (paper Section 3.1).

TetraMAX offers four relevant fills and the paper's key lever is
choosing among them:

* ``random`` — conventional: maximises fortuitous fault detection and
  (the paper's point) switching activity,
* ``0`` / ``1`` — force all don't-care cells low / high; ``0`` gave the
  paper its best supply-noise results,
* ``adjacent`` — each don't-care cell copies the nearest preceding care
  value along its scan chain (repeating values minimise shift toggles).

As an extension we also provide ``preferred`` fill (the
signal-probability-guided technique from the later low-power-fill
literature): each don't-care cell takes the value its flop is most
likely to *hold through the launch edge*, minimising expected launch
transitions.  The per-flop preferred bits come from
:func:`preferred_fill_bits`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..dft.scan import ScanConfig
from ..errors import AtpgError

FILL_POLICIES = ("random", "0", "1", "adjacent", "preferred")


def apply_fill(
    cube: Dict[int, int],
    n_flops: int,
    policy: str,
    scan: Optional[ScanConfig] = None,
    rng: Optional[np.random.Generator] = None,
    preferred: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Complete a care-bit cube into a full V1 vector.

    Parameters
    ----------
    cube:
        flop index -> care bit.
    n_flops:
        Total scan cells.
    policy:
        One of :data:`FILL_POLICIES`.
    scan:
        Required for ``adjacent`` (fill follows chain order).
    rng:
        Required for ``random``.
    preferred:
        Required for ``preferred``: per-flop bits from
        :func:`preferred_fill_bits`.

    Returns
    -------
    numpy.ndarray
        uint8 vector of length *n_flops*.
    """
    if policy not in FILL_POLICIES:
        raise AtpgError(
            f"unknown fill policy {policy!r}; choose from {FILL_POLICIES}"
        )
    v1 = np.zeros(n_flops, dtype=np.uint8)
    care = np.zeros(n_flops, dtype=bool)
    for fi, bit in cube.items():
        v1[fi] = bit & 1
        care[fi] = True

    if policy == "0":
        return v1  # don't-cares already zero
    if policy == "1":
        v1[~care] = 1
        return v1
    if policy == "random":
        if rng is None:
            raise AtpgError("random fill needs an rng")
        noise = rng.integers(0, 2, size=n_flops, dtype=np.uint8)
        v1[~care] = noise[~care]
        return v1
    if policy == "preferred":
        if preferred is None or len(preferred) != n_flops:
            raise AtpgError(
                "preferred fill needs a per-flop bit table "
                "(preferred_fill_bits)"
            )
        table = np.asarray(preferred, dtype=np.uint8)
        v1[~care] = table[~care]
        return v1

    # adjacent
    if scan is None:
        raise AtpgError("adjacent fill needs the scan configuration")
    for chain in scan.chains:
        last: Optional[int] = None
        # First pass: propagate the nearest preceding care value.
        for fi in chain.flops:
            if care[fi]:
                last = int(v1[fi])
            elif last is not None:
                v1[fi] = last
        # Leading don't-cares copy the first care value (or stay 0).
        first_care = next((fi for fi in chain.flops if care[fi]), None)
        if first_care is not None:
            lead_val = int(v1[first_care])
            for fi in chain.flops:
                if care[fi]:
                    break
                v1[fi] = lead_val
    return v1


def care_mask(cube: Dict[int, int], n_flops: int) -> np.ndarray:
    """Boolean care-bit mask for a cube."""
    mask = np.zeros(n_flops, dtype=bool)
    for fi in cube:
        mask[fi] = True
    return mask


def apply_per_block_fill(
    cube: Dict[int, int],
    n_flops: int,
    flop_blocks: Sequence[Optional[str]],
    block_policies: Dict[str, str],
    default_policy: str = "0",
    scan: Optional[ScanConfig] = None,
    rng: Optional[np.random.Generator] = None,
    preferred: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Different fill per block — the paper's "more ideal scenario".

    "A more ideal scenario would be that the ATPG tool provides
    different fill options for don't-care bits in different blocks.
    This would allow us to generate patterns in some blocks with random
    options yet keep the switching activity in other blocks to a
    minimum." (Section 3.1.)

    Each block's don't-care cells are filled with its own policy
    (``block_policies``, falling back to *default_policy*); care bits
    are preserved everywhere.
    """
    if len(flop_blocks) != n_flops:
        raise AtpgError("flop_blocks must cover every scan cell")
    policies = set(block_policies.values()) | {default_policy}
    unknown = policies - set(FILL_POLICIES)
    if unknown:
        raise AtpgError(f"unknown fill policies {sorted(unknown)}")

    # Fill the whole vector once per distinct policy, then stitch by
    # block membership (keeps 'adjacent' semantics chain-consistent
    # within each policy's view).
    filled: Dict[str, np.ndarray] = {}
    for policy in policies:
        filled[policy] = apply_fill(
            cube, n_flops, policy, scan=scan, rng=rng,
            preferred=preferred,
        )
    v1 = np.zeros(n_flops, dtype=np.uint8)
    for fi in range(n_flops):
        block = flop_blocks[fi]
        policy = block_policies.get(block, default_policy) \
            if block is not None else default_policy
        v1[fi] = filled[policy][fi]
    for fi, bit in cube.items():
        v1[fi] = bit & 1
    return v1


def preferred_fill_bits(
    netlist,
    domain: str,
    n_samples: int = 64,
    seed: int = 0,
) -> np.ndarray:
    """Per-flop preferred V1 bits minimising expected launch toggles.

    For each pulsed flop, sample random scan states, compute the LOC
    launch state S2 in one bit-parallel pass, and choose the V1 bit the
    flop is most likely to still hold after the launch edge —
    ``round(P(S2 = 1))``.  Held (non-pulsed) flops never toggle at
    launch, so their preferred bit is 0 (quiet shift).
    """
    from ..sim.logic import LogicSim, loc_launch_capture

    rng = np.random.default_rng(seed)
    sim = LogicSim(netlist)
    n_flops = netlist.n_flops
    mask = (1 << n_samples) - 1
    bits = rng.integers(0, 2, size=(n_samples, n_flops))
    packed = {
        fi: int(sum(int(bits[s, fi]) << s for s in range(n_samples)))
        for fi in range(n_flops)
    }
    cyc = loc_launch_capture(sim, packed, domain, mask=mask)
    preferred = np.zeros(n_flops, dtype=np.uint8)
    for fi in cyc.pulsed_flops:
        ones = bin(cyc.launch_state[fi]).count("1")
        preferred[fi] = 1 if ones * 2 > n_samples else 0
    return preferred
