"""The ATPG pattern-generation loop (the TetraMAX-wrapper substitute).

For each primary target fault the engine runs PODEM, then statically
compacts by merging further faults into the same cube (PODEM under the
cube's care bits as constraints) until a run of merge failures, fills
the remaining don't-cares with the configured policy, and finally
fault-simulates pattern batches against the whole undetected universe
with fault dropping.

This reproduces the industrial behaviours the paper leans on:

* early patterns carry many merged targets, so they have *few* don't-care
  bits; later patterns are sparse (paper Section 3.1),
* random fill detects many faults fortuitously (fewer patterns, much
  more switching); fill-0 detects fewer per pattern (the paper's ~8 %
  pattern-count increase) but keeps untargeted logic quiet,
* coverage-vs-pattern-count curves (paper Figure 4) fall out of the
  recorded first-detection indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..context import RunContext, use_run_context
from ..errors import AtpgError
from ..netlist.netlist import Netlist
from ..obs import current_telemetry
from .faults import (
    TransitionFault,
    build_fault_universe,
    collapse_faults,
    fault_block,
)
from .fill import (
    apply_fill,
    apply_per_block_fill,
    care_mask,
    preferred_fill_bits,
)
from .fsim import FaultSimulator, first_detection_index
from .patterns import Pattern, PatternSet
from .podem import PodemStatus, generate_test
from .twoframe import TwoFrameState


@dataclass
class AtpgResult:
    """Everything produced by one ATPG run."""

    pattern_set: PatternSet
    total_faults: int
    detected: Dict[TransitionFault, int]  # fault -> first-detect pattern
    aborted: List[TransitionFault]
    untestable: List[TransitionFault]
    inconsistent: List[TransitionFault] = field(default_factory=list)

    @property
    def n_patterns(self) -> int:
        return len(self.pattern_set)

    @property
    def fault_coverage(self) -> float:
        """Detected / total collapsed faults."""
        return len(self.detected) / max(1, self.total_faults)

    @property
    def test_coverage(self) -> float:
        """Detected / (total - proven untestable), TetraMAX-style."""
        denom = self.total_faults - len(self.untestable)
        return len(self.detected) / max(1, denom)

    def coverage_curve(self) -> List[Tuple[int, float]]:
        """Cumulative test coverage after each pattern (Figure 4 data)."""
        per_pattern = np.zeros(self.n_patterns, dtype=int)
        for first in self.detected.values():
            per_pattern[first] += 1
        denom = max(1, self.total_faults - len(self.untestable))
        cum = np.cumsum(per_pattern)
        return [(i, cum[i] / denom) for i in range(self.n_patterns)]


class AtpgEngine:
    """Reusable transition-fault ATPG bound to one design and domain."""

    def __init__(
        self,
        netlist: Netlist,
        domain: str,
        scan=None,
        protocol: str = "loc",
        backtrack_limit: int = 60,
        merge_backtrack_limit: int = 20,
        merge_fail_limit: int = 8,
        max_merge_per_pattern: int = 64,
        max_targets_per_block: Optional[int] = None,
        batch_size: int = 32,
        seed: int = 1,
        timing_aware: bool = False,
        delays=None,
        n_workers: Union[int, str, None] = 1,
        context: Optional[RunContext] = None,
    ):
        """``max_targets_per_block`` is the option the paper wished its
        ATPG had ("to limit the maximum number of faults targeted by a
        pattern in each block to keep the switching activity lower"):
        when set, cube merging stops accepting faults from a block once
        that block has that many targets in the pattern under
        construction.

        ``timing_aware`` steers PODEM's backtrace through late-arriving
        inputs (per a static delay analysis; pass ``delays`` to reuse a
        :class:`~repro.sim.delays.DelayModel`), so patterns exercise
        longer paths — countering the paper's observation that plain
        ATPG activates "easy-to-find paths rather than longer paths
        through the target fault sites".

        ``n_workers`` fans the per-batch fault simulation out across a
        process pool (chunked fault partitions; results bit-identical
        to serial); ``"auto"`` lets :mod:`repro.perf.dispatch` pick
        batch or pool from the work size and usable cores.

        ``context`` (a :class:`~repro.context.RunContext`) is scoped
        over every :meth:`run` call, so one session object configures
        telemetry, execution/dispatch policy and the kernel cache for
        this engine; the default inherits the ambient configuration."""
        if protocol == "los" and scan is None:
            raise AtpgError("LOS ATPG needs the scan configuration")
        self.netlist = netlist
        self.domain = domain
        self.scan = scan
        self.protocol = protocol
        self.backtrack_limit = backtrack_limit
        self.merge_backtrack_limit = merge_backtrack_limit
        self.merge_fail_limit = merge_fail_limit
        self.max_merge_per_pattern = max_merge_per_pattern
        self.max_targets_per_block = max_targets_per_block
        self.batch_size = batch_size
        self.n_workers = n_workers
        self.context = context if context is not None else RunContext()
        self.rng = np.random.default_rng(seed)
        self.state = TwoFrameState(netlist, domain, protocol=protocol,
                                   scan=scan)
        if timing_aware:
            if delays is None:
                from ..sim.delays import DelayModel

                delays = DelayModel(netlist)
            self.state.arrival = delays.static_arrivals_ns()
        self.fsim = FaultSimulator(netlist, domain)
        self._preferred_bits: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def run(
        self,
        faults: Optional[Sequence[TransitionFault]] = None,
        fill: str = "random",
        max_patterns: Optional[int] = None,
        shuffle: bool = True,
        start_index: int = 0,
        forced_bits: Optional[Dict[int, int]] = None,
        block_fill: Optional[Dict[str, str]] = None,
        n_detect: int = 1,
    ) -> AtpgResult:
        """Instrumented wrapper around :meth:`_run_impl` (see there for
        the parameter reference)."""
        with use_run_context(self.context):
            tel = current_telemetry()
            with tel.span(
                "atpg.run", domain=self.domain, fill=fill, n_detect=n_detect
            ) as span:
                result = self._run_impl(
                    faults=faults,
                    fill=fill,
                    max_patterns=max_patterns,
                    shuffle=shuffle,
                    start_index=start_index,
                    forced_bits=forced_bits,
                    block_fill=block_fill,
                    n_detect=n_detect,
                )
                span.set(
                    n_patterns=len(result.pattern_set),
                    n_detected=len(result.detected),
                )
                tel.count("atpg.patterns_generated", len(result.pattern_set))
                tel.count("atpg.faults_detected", len(result.detected))
                tel.count("atpg.faults_aborted", len(result.aborted))
                tel.count("atpg.faults_untestable", len(result.untestable))
            return result

    def _run_impl(
        self,
        faults: Optional[Sequence[TransitionFault]] = None,
        fill: str = "random",
        max_patterns: Optional[int] = None,
        shuffle: bool = True,
        start_index: int = 0,
        forced_bits: Optional[Dict[int, int]] = None,
        block_fill: Optional[Dict[str, str]] = None,
        n_detect: int = 1,
    ) -> AtpgResult:
        """Generate a pattern set detecting the given fault list.

        Parameters
        ----------
        faults:
            Target faults (uncollapsed is fine); defaults to the full
            design universe.
        fill:
            Don't-care fill policy (see :mod:`repro.atpg.fill`).
        max_patterns:
            Safety cap on pattern count.
        shuffle:
            Randomise target order (reproducible via the engine seed).
        start_index:
            First pattern index (the staged flow concatenates runs).
        forced_bits:
            Scan bits constrained in *every* pattern (ATPG constraints —
            e.g. isolation enables held at 0).  Faults that cannot be
            tested under these constraints classify as untestable.
        block_fill:
            With ``fill="per-block"``, the per-block policy map (blocks
            absent from the map fill with 0) — the paper's "more ideal
            scenario" of mixing random fill in targeted blocks with
            quiet fill elsewhere.
        n_detect:
            Drop a fault only after it has been detected by at least
            this many patterns (N-detect: better collateral coverage of
            un-modelled defects at a pattern-count — and, relevant
            here, switching-activity — cost).
        """
        if n_detect < 1:
            raise AtpgError("n_detect must be >= 1")
        if faults is None:
            faults = build_fault_universe(self.netlist)
        reps, _mapping = collapse_faults(self.netlist, faults)
        if shuffle:
            perm = self.rng.permutation(len(reps))
            reps = [reps[i] for i in perm]

        pending: List[TransitionFault] = list(reps)
        pending_set = set(pending)
        detected: Dict[TransitionFault, int] = {}
        detect_counts: Dict[TransitionFault, int] = {}
        aborted: List[TransitionFault] = []
        untestable: List[TransitionFault] = []
        inconsistent: List[TransitionFault] = []
        pattern_set = PatternSet(self.domain, fill=fill)
        n_flops = self.netlist.n_flops
        next_index = start_index

        cursor = 0
        while pending and (
            max_patterns is None or len(pattern_set) < max_patterns
        ):
            batch: List[Pattern] = []
            batch_primaries: List[TransitionFault] = []
            tentative: set = set()

            while cursor < len(pending) and len(batch) < self.batch_size:
                primary = pending[cursor]
                cursor += 1
                if primary in tentative:
                    continue
                result = generate_test(
                    self.state, primary, forced_bits, self.backtrack_limit
                )
                if result.status is PodemStatus.ABORT:
                    aborted.append(primary)
                    pending_set.discard(primary)
                    continue
                if result.status is PodemStatus.UNTESTABLE:
                    untestable.append(primary)
                    pending_set.discard(primary)
                    continue
                cube = result.cube
                tentative.add(primary)
                cube, merged = self._merge_secondaries(
                    cube, pending, cursor, tentative, primary=primary
                )
                if fill == "per-block":
                    v1 = apply_per_block_fill(
                        cube, n_flops, self._flop_blocks(),
                        block_fill or {}, default_policy="0",
                        scan=self.scan, rng=self.rng,
                    )
                else:
                    v1 = apply_fill(
                        cube, n_flops, fill, self.scan, self.rng,
                        preferred=self._preferred(fill),
                    )
                pattern = Pattern(
                    index=next_index,
                    v1=v1,
                    care=care_mask(cube, n_flops),
                    domain=self.domain,
                    fill=fill,
                    targeted_faults=[f.net for f in [primary] + merged],
                )
                next_index += 1
                batch.append(pattern)
                batch_primaries.append(primary)
                if max_patterns is not None and (
                    len(pattern_set) + len(batch) >= max_patterns
                ):
                    break

            if not batch:
                break

            # Fault-simulate the batch against everything still pending.
            matrix = np.stack([p.v1 for p in batch])
            live = [f for f in pending if f in pending_set]
            words = self.fsim.run_batch(
                matrix, live, protocol=self.protocol, scan=self.scan,
                n_workers=self.n_workers,
            )
            base = len(pattern_set)
            for fault, word in words.items():
                if fault not in detected:
                    detected[fault] = (
                        base + first_detection_index(word) + start_index
                    )
                detect_counts[fault] = (
                    detect_counts.get(fault, 0) + bin(word).count("1")
                )
                if detect_counts[fault] >= n_detect:
                    pending_set.discard(fault)
            for pattern in batch:
                pattern_set.append(pattern)

            # Safeguard: a successfully-generated primary must be caught
            # by its own pattern; anything else marks a model bug but
            # must not hang the loop.  (Under N-detect a detected-but-
            # under-quota primary legitimately stays pending.)
            for primary in batch_primaries:
                if primary in pending_set and primary not in detected:
                    inconsistent.append(primary)
                    pending_set.discard(primary)

            pending = [f for f in pending if f in pending_set]
            cursor = 0

        return AtpgResult(
            pattern_set=pattern_set,
            total_faults=len(reps),
            detected=detected,
            aborted=aborted,
            untestable=untestable,
            inconsistent=inconsistent,
        )

    # ------------------------------------------------------------------
    def _flop_blocks(self) -> List[Optional[str]]:
        """Block of every scan cell (cached), for per-block fill."""
        cached = getattr(self, "_flop_blocks_cache", None)
        if cached is None:
            cached = [f.block for f in self.netlist.flops]
            self._flop_blocks_cache = cached
        return cached

    # ------------------------------------------------------------------
    def _preferred(self, fill: str) -> Optional[np.ndarray]:
        """Lazily computed preferred-fill bit table."""
        if fill != "preferred":
            return None
        if self._preferred_bits is None:
            self._preferred_bits = preferred_fill_bits(
                self.netlist, self.domain
            )
        return self._preferred_bits

    # ------------------------------------------------------------------
    def _merge_secondaries(
        self,
        cube: Dict[int, int],
        pending: Sequence[TransitionFault],
        cursor: int,
        tentative: set,
        primary: Optional[TransitionFault] = None,
    ) -> Tuple[Dict[int, int], List[TransitionFault]]:
        """Static compaction: pack more faults into one cube.

        Returns the grown cube and the list of merged secondary faults.
        With ``max_targets_per_block`` set, candidates from a block that
        already holds its quota of targets in this pattern are skipped
        (without counting as merge failures) — the paper's wished-for
        power-limiting ATPG option.
        """
        fails = 0
        merged = 1
        merged_faults: List[TransitionFault] = []
        idx = cursor
        block_counts: Dict[Optional[str], int] = {}
        cap = self.max_targets_per_block
        if cap is not None and primary is not None:
            block = fault_block(self.netlist, primary)
            block_counts[block] = 1
        while (
            fails < self.merge_fail_limit
            and merged < self.max_merge_per_pattern
            and idx < len(pending)
        ):
            candidate = pending[idx]
            idx += 1
            if candidate in tentative:
                continue
            if cap is not None:
                block = fault_block(self.netlist, candidate)
                if block_counts.get(block, 0) >= cap:
                    continue
            result = generate_test(
                self.state, candidate, cube, self.merge_backtrack_limit
            )
            if result.success:
                cube = result.cube
                tentative.add(candidate)
                merged_faults.append(candidate)
                merged += 1
                fails = 0
                if cap is not None:
                    block = fault_block(self.netlist, candidate)
                    block_counts[block] = block_counts.get(block, 0) + 1
            else:
                fails += 1
        return cube, merged_faults
