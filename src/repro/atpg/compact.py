"""Static pattern-set compaction by reverse-order fault simulation.

The classic post-generation pass: simulate the pattern set in *reverse*
order with fault dropping and keep only patterns that are the last
detector of at least one fault.  Early patterns — generated when easy
faults were plentiful — are frequently subsumed by the accumulated
later patterns, so reverse-order simulation removes them at zero
coverage cost.

(The in-generation compaction — merging several target faults into one
cube — lives in the engine; this module is the complementary
set-level pass.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AtpgError
from .faults import TransitionFault
from .fsim import FaultSimulator
from .patterns import Pattern, PatternSet


def reverse_order_compaction(
    fsim: FaultSimulator,
    pattern_set: PatternSet,
    faults: Sequence[TransitionFault],
    protocol: str = "loc",
    scan=None,
    batch: int = 64,
) -> Tuple[PatternSet, Dict[str, int]]:
    """Drop patterns subsumed by later ones.

    Returns the compacted set (original relative order, reindexed) and a
    stats dict (kept/dropped/faults_covered).

    Within a batch, attributing each fault to its *highest-index*
    detecting pattern is exactly sequential reverse-order dropping, so
    batching loses nothing.
    """
    n = len(pattern_set)
    if n == 0:
        return PatternSet(pattern_set.domain, fill=pattern_set.fill), {
            "kept": 0, "dropped": 0, "faults_covered": 0,
        }

    matrix = pattern_set.as_matrix()
    live: List[TransitionFault] = list(faults)
    keep = np.zeros(n, dtype=bool)
    covered = 0

    start = n
    while start > 0 and live:
        lo = max(0, start - batch)
        chunk = matrix[lo:start]
        words = fsim.run(chunk, live, protocol=protocol, scan=scan)
        for fault, word in words.items():
            last = word.bit_length() - 1  # highest set bit
            keep[lo + last] = True
            covered += 1
        live = [f for f in live if f not in words]
        start = lo

    compacted = PatternSet(pattern_set.domain, fill=pattern_set.fill)
    for i in range(n):
        if keep[i]:
            original = pattern_set[i]
            compacted.append(
                Pattern(
                    index=len(compacted),
                    v1=original.v1,
                    care=original.care,
                    domain=original.domain,
                    fill=original.fill,
                    targeted_faults=list(original.targeted_faults),
                )
            )
    stats = {
        "kept": int(keep.sum()),
        "dropped": int(n - keep.sum()),
        "faults_covered": covered,
    }
    return compacted, stats


def coverage_of_set(
    fsim: FaultSimulator,
    pattern_set: PatternSet,
    faults: Sequence[TransitionFault],
    protocol: str = "loc",
    scan=None,
    batch: int = 64,
) -> int:
    """Number of *faults* detected by a pattern set (verification aid)."""
    matrix = pattern_set.as_matrix()
    live = list(faults)
    detected = 0
    for lo in range(0, matrix.shape[0], batch):
        if not live:
            break
        words = fsim.run(
            matrix[lo:lo + batch], live, protocol=protocol, scan=scan
        )
        detected += len(words)
        live = [f for f in live if f not in words]
    return detected
