"""Testability analysis: COP probabilities and SCOAP-style costs.

Two classic estimators over the combinational core:

* **COP** — signal probability ``P(net = 1)`` under random scan states,
  propagated through gate functions assuming input independence; the
  detectability proxy for random-pattern testing.
* **observability** — probability a fault effect on a net reaches some
  capture flop, propagated backward through the COP side-input
  sensitization probabilities.

Both feed test-point selection (:mod:`repro.dft.testpoints`): nets with
terrible controllability or observability are where the abort/untestable
fault mass lives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import AtpgError
from ..netlist.levelize import levelize
from ..netlist.netlist import Netlist


@dataclass
class TestabilityReport:
    """Per-net COP controllability and observability estimates."""

    p_one: np.ndarray  # P(net = 1)
    observability: np.ndarray  # P(effect reaches a capture flop)

    def controllability(self, net: int) -> float:
        """min(P0, P1): how hard the rarer value is."""
        p1 = float(self.p_one[net])
        return min(p1, 1.0 - p1)

    def detectability(self, net: int) -> float:
        """Random-pattern detectability proxy: ctrl x observability."""
        return self.controllability(net) * float(self.observability[net])

    def worst_observability_nets(self, k: int = 10) -> List[int]:
        """The k nets a fault effect is least likely to escape from."""
        order = np.argsort(self.observability)
        return [int(n) for n in order[:k]]

    def worst_controllability_nets(self, k: int = 10) -> List[int]:
        """The k nets whose rarer value is hardest to set."""
        ctrl = np.minimum(self.p_one, 1.0 - self.p_one)
        order = np.argsort(ctrl)
        return [int(n) for n in order[:k]]


def _cop_forward(netlist: Netlist, order: Sequence[int]) -> np.ndarray:
    p = np.full(netlist.n_nets, 0.5)
    for net in netlist.primary_inputs:
        p[net] = 0.0  # held constant low during test
    for gi in order:
        gate = netlist.gates[gi]
        ins = [float(p[x]) for x in gate.inputs]
        p[gate.output] = _cop_gate(gate.kind, ins)
    return p


def _cop_gate(kind: str, p: List[float]) -> float:
    def all_one(vals):
        out = 1.0
        for v in vals:
            out *= v
        return out

    def any_one(vals):
        out = 1.0
        for v in vals:
            out *= (1.0 - v)
        return 1.0 - out

    if kind in ("BUF", "CLKBUF"):
        return p[0]
    if kind == "INV":
        return 1.0 - p[0]
    if kind.startswith("AND"):
        return all_one(p)
    if kind.startswith("NAND"):
        return 1.0 - all_one(p)
    if kind.startswith("OR"):
        return any_one(p)
    if kind.startswith("NOR"):
        return 1.0 - any_one(p)
    if kind == "XOR2":
        return p[0] * (1 - p[1]) + p[1] * (1 - p[0])
    if kind == "XNOR2":
        return 1.0 - (p[0] * (1 - p[1]) + p[1] * (1 - p[0]))
    if kind == "MUX2":
        d0, d1, s = p
        return d0 * (1 - s) + d1 * s
    if kind == "AOI21":
        return 1.0 - any_one([all_one(p[:2]), p[2]])
    if kind == "OAI21":
        return 1.0 - all_one([any_one(p[:2]), p[2]])
    if kind == "TIE0":
        return 0.0
    if kind == "TIE1":
        return 1.0
    raise AtpgError(f"no COP model for kind {kind!r}")


def _sensitization(kind: str, pin: int, p: List[float]) -> float:
    """P(other inputs let pin's value pass to the output)."""
    others = [v for i, v in enumerate(p) if i != pin]

    def prod(vals):
        out = 1.0
        for v in vals:
            out *= v
        return out

    if kind in ("BUF", "CLKBUF", "INV"):
        return 1.0
    if kind.startswith(("AND", "NAND")):
        return prod(others)  # all others 1
    if kind.startswith(("OR", "NOR")):
        return prod([1.0 - v for v in others])  # all others 0
    if kind in ("XOR2", "XNOR2"):
        return 1.0  # any side value sensitizes
    if kind == "MUX2":
        if pin == 0:
            return 1.0 - p[2]
        if pin == 1:
            return p[2]
        # select pin: passes iff data inputs differ
        d0, d1 = p[0], p[1]
        return d0 * (1 - d1) + d1 * (1 - d0)
    if kind == "AOI21":
        if pin in (0, 1):
            other_and = p[1 - pin]
            return other_and * (1.0 - p[2])
        return 1.0 - p[0] * p[1]
    if kind == "OAI21":
        if pin in (0, 1):
            other_or = 1.0 - p[1 - pin]
            return other_or * p[2]
        return 1.0 - (1.0 - p[0]) * (1.0 - p[1])
    if kind in ("TIE0", "TIE1"):
        return 0.0
    raise AtpgError(f"no sensitization model for kind {kind!r}")


def analyze_testability(
    netlist: Netlist, domain: Optional[str] = None
) -> TestabilityReport:
    """COP controllability + backward observability for one domain.

    Capture points are the D nets of the domain's positive-edge flops
    (every scan flop when *domain* is None).
    """
    netlist.freeze()
    order, _ = levelize(netlist)
    p_one = _cop_forward(netlist, order)

    obs = np.zeros(netlist.n_nets)
    for f in netlist.flops:
        if domain is None or (
            f.clock_domain == domain and f.edge == "pos"
        ):
            obs[f.d] = 1.0

    for gi in reversed(order):
        gate = netlist.gates[gi]
        out_obs = obs[gate.output]
        if out_obs == 0.0:
            continue
        ins = [float(p_one[x]) for x in gate.inputs]
        for pin, net in enumerate(gate.inputs):
            through = out_obs * _sensitization(gate.kind, pin, ins)
            if through > obs[net]:
                obs[net] = through
    return TestabilityReport(p_one=p_one, observability=obs)
