"""Two-time-frame incremental implication engine for LOC test generation.

The launch-off-capture pattern pair is modelled as two copies of the
combinational logic:

* **frame 1** settles from the shifted-in scan state V1 (the decision
  variables),
* the launch edge loads every *pulsed-domain* flop with its frame-1 D
  value (other domains hold V1),
* **frame 2** settles from that launch state; the good machine (``g2``)
  and the faulty machine (``f2`` — fault stem forced to the stuck value)
  are maintained side by side, so a net is a *D net* when its two
  frame-2 values are defined and differ.

The engine is incremental: assigning one scan bit propagates three-valued
values only through the affected cones, and every write lands on a trail
so PODEM can backtrack in O(changes).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import AtpgError
from ..netlist.cells import CELL_FUNCTIONS
from ..netlist.levelize import levelize
from ..netlist.netlist import Netlist
from .faults import TransitionFault
from .values import EVAL3, X

_F1, _G2, _F2 = 0, 1, 2


class TwoFrameState:
    """Three-valued two-frame circuit state with trail-based undo.

    ``protocol`` selects the launch mechanism:

    * ``"loc"`` (default) — broadside: a pulsed flop's frame-2 Q is its
      own frame-1 D value (the functional response),
    * ``"los"`` — skewed-load: *every* scan flop's frame-2 Q is its
      upstream chain neighbour's V1 bit (the last shift); chain heads
      take the scan-in value 0.  Requires the scan configuration.

    Capture is identical in both: the positive-edge flops of *domain*
    observe their frame-2 D values.
    """

    def __init__(
        self,
        netlist: Netlist,
        domain: str,
        protocol: str = "loc",
        scan=None,
    ):
        if protocol not in ("loc", "los"):
            raise AtpgError(
                f"two-frame ATPG supports 'loc' and 'los', not {protocol!r}"
            )
        if protocol == "los" and scan is None:
            raise AtpgError("LOS test generation needs the scan config")
        self.netlist = netlist
        self.domain = domain
        self.protocol = protocol
        netlist.freeze()
        n = netlist.n_nets

        # Negative-edge cells are masked during the at-speed cycle (they
        # live on a dedicated chain in the case study), so only
        # positive-edge domain flops launch and capture.
        self.pulsed: Tuple[int, ...] = tuple(
            fi
            for fi, f in enumerate(netlist.flops)
            if f.clock_domain == domain and f.edge == "pos"
        )
        if not self.pulsed:
            raise AtpgError(f"domain {domain!r} has no flops")
        self._pulsed_set = set(self.pulsed)

        # LOC: D-net -> pulsed flops loading it (launch-state link).
        self._pulsed_loads: List[Tuple[int, ...]] = [()] * n
        if protocol == "loc":
            loads: Dict[int, List[int]] = {}
            for fi in self.pulsed:
                loads.setdefault(netlist.flops[fi].d, []).append(fi)
            for net, flops in loads.items():
                self._pulsed_loads[net] = tuple(flops)

        # LOS: per-flop chain neighbours (every scan cell shifts during
        # the launch shift, whatever its domain).
        self.los_upstream: Dict[int, Optional[int]] = {}
        self._los_downstream: Dict[int, int] = {}
        if protocol == "los":
            for chain in scan.chains:
                for pos, fi in enumerate(chain.flops):
                    if pos == 0:
                        self.los_upstream[fi] = None  # scan-in end
                    else:
                        up = chain.flops[pos - 1]
                        self.los_upstream[fi] = up
                        self._los_downstream[up] = fi

        # Capture observation points: D nets of pulsed flops.
        self.capture_nets: Tuple[int, ...] = tuple(
            sorted({netlist.flops[fi].d for fi in self.pulsed})
        )

        # Flattened gate tables.
        self._gate_eval = [EVAL3[g.kind] for g in netlist.gates]
        self._gate_ins = [g.inputs for g in netlist.gates]
        self._gate_out = [g.output for g in netlist.gates]
        self._fanout_gates: List[Tuple[int, ...]] = [
            tuple(gi for gi, _pin in netlist.gate_fanouts_of(net))
            for net in range(n)
        ]

        # Static observability distance: gates to the nearest capture
        # net along the fanout graph (inf when a net cannot reach one).
        # Guides D-frontier selection and prunes dead frontiers.
        inf = float("inf")
        obs = [inf] * n
        for net in self.capture_nets:
            obs[net] = 0.0
        order_rev = list(reversed(levelize(netlist)[0]))
        # Iterate in reverse topological order so each gate sees its
        # output's final distance before its inputs are relaxed.
        for gi in order_rev:
            out_d = obs[netlist.gates[gi].output]
            if out_d + 1.0 < inf:
                for p in netlist.gates[gi].inputs:
                    if out_d + 1.0 < obs[p]:
                        obs[p] = out_d + 1.0
        self.obs_dist = obs

        # Baseline (constants-only) implied state, computed once.
        base = [X] * n
        for net in netlist.primary_inputs:
            base[net] = 0  # PIs held constant low during test
        order, _ = levelize(netlist)
        self._order = order
        for gi in order:
            base[self._gate_out[gi]] = self._gate_eval[gi](
                [base[p] for p in self._gate_ins[gi]]
            )
        self._base = base

        # Frame-2 baseline: constants plus whatever launch-state values
        # are already determined with no V1 assignment — for LOC the
        # pulsed flops whose frame-1 D is fixed by the constant primary
        # inputs, for LOS the chain heads (scan-in is 0).
        base2 = list(base)
        if protocol == "loc":
            for fi in self.pulsed:
                d_val = base[netlist.flops[fi].d]
                if d_val != X:
                    base2[netlist.flops[fi].q] = d_val
        else:
            for fi, up in self.los_upstream.items():
                if up is None:
                    base2[netlist.flops[fi].q] = 0
        for gi in order:
            base2[self._gate_out[gi]] = self._gate_eval[gi](
                [base2[p] for p in self._gate_ins[gi]]
            )
        self._base2 = base2

        #: Optional per-net static arrival estimate (ns).  When set,
        #: PODEM's backtrace prefers late-arriving inputs, steering
        #: activation/propagation through *long* paths — the
        #: timing-aware mode addressing the paper's observation that
        #: plain ATPG exercises easy (short) paths.
        self.arrival = None

        # Per-fault mutable state (populated by set_fault).
        self.fault: Optional[TransitionFault] = None
        self.f1: List[int] = []
        self.g2: List[int] = []
        self.f2: List[int] = []
        self.v1: Dict[int, int] = {}
        self.d_nets: Set[int] = set()
        self._trail: List[Tuple[int, int, int]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def set_fault(self, fault: TransitionFault) -> None:
        """Reset all state and install *fault* (forced in frame 2)."""
        self.fault = fault
        self.f1 = list(self._base)
        self.g2 = list(self._base2)
        self.f2 = list(self._base2)
        self.v1 = {}
        self.d_nets = set()
        self._trail = []
        # Force the faulty machine's stem; re-derive its fanout cone in f2.
        site = fault.net
        stuck = fault.initial_value
        if self.f2[site] != stuck:
            self.f2[site] = stuck
            self._check_d(site)
            self._propagate2(deque([site]), faulty_only=True)

    def mark(self) -> int:
        """Current trail position; pass to :meth:`undo_to`."""
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        """Roll back every write made after *mark*."""
        trail = self._trail
        while len(trail) > mark:
            kind, key, old = trail.pop()
            if kind == _F1:
                self.f1[key] = old
            elif kind == _G2:
                self.g2[key] = old
            elif kind == _F2:
                self.f2[key] = old
            elif kind == 3:  # v1 assignment
                if old == X:
                    del self.v1[key]
                else:
                    self.v1[key] = old
            else:  # d_nets insertion
                self.d_nets.discard(key)

    # ------------------------------------------------------------------
    # assignment + implication
    # ------------------------------------------------------------------
    def assign(self, flop: int, bit: int) -> None:
        """Assign scan bit V1[flop] and imply both frames."""
        if flop in self.v1:
            raise AtpgError(f"flop {flop} already assigned")
        self._trail.append((3, flop, X))
        self.v1[flop] = bit

        q = self.netlist.flops[flop].q
        seeds2: deque = deque()
        if self.protocol == "loc":
            if flop not in self._pulsed_set:
                # Held domain / masked cell: frame-2 Q equals V1.
                self._write2(q, bit, seeds2)
        else:
            # LOS: this V1 bit shifts into the downstream neighbour; a
            # flop off every chain (none in generated designs) holds.
            down = self._los_downstream.get(flop)
            if down is not None:
                self._write2(self.netlist.flops[down].q, bit, seeds2)
            if flop not in self.los_upstream:
                self._write2(q, bit, seeds2)
        self._write1_and_link(q, bit, seeds2)
        self._propagate1(deque([q]), seeds2)
        self._propagate2(seeds2)

    def frame2_source(self, flop: int):
        """How a flop's frame-2 Q is determined (backtrace hook).

        Returns ``("f1net", net)`` when the flop launches its frame-1 D
        value (LOC pulsed flop), ``("v1", flop')`` when it equals a scan
        decision variable, or ``None`` when it is a constant (the LOS
        scan-in head).
        """
        if self.protocol == "loc":
            if flop in self._pulsed_set:
                return ("f1net", self.netlist.flops[flop].d)
            return ("v1", flop)
        if flop in self.los_upstream:
            up = self.los_upstream[flop]
            if up is None:
                return None  # chain head takes the constant scan-in bit
            return ("v1", up)
        return ("v1", flop)

    def _write1_and_link(self, net: int, val: int, seeds2: deque) -> None:
        self._trail.append((_F1, net, self.f1[net]))
        self.f1[net] = val
        for fi in self._pulsed_loads[net]:
            self._write2(self.netlist.flops[fi].q, val, seeds2)

    def _write2(self, net: int, val: int, seeds2: deque) -> None:
        site = self.fault.net if self.fault is not None else -1
        changed = False
        if self.g2[net] != val:
            self._trail.append((_G2, net, self.g2[net]))
            self.g2[net] = val
            changed = True
        if net != site and self.f2[net] != val:
            self._trail.append((_F2, net, self.f2[net]))
            self.f2[net] = val
            changed = True
        if changed:
            self._check_d(net)
            seeds2.append(net)

    def _check_d(self, net: int) -> None:
        g, f = self.g2[net], self.f2[net]
        if g != X and f != X and g != f and net not in self.d_nets:
            self.d_nets.add(net)
            self._trail.append((4, net, 0))

    def _propagate1(self, queue: deque, seeds2: deque) -> None:
        f1 = self.f1
        while queue:
            net = queue.popleft()
            for gi in self._fanout_gates[net]:
                out = self._gate_out[gi]
                new = self._gate_eval[gi](
                    [f1[p] for p in self._gate_ins[gi]]
                )
                if new != f1[out]:
                    self._write1_and_link(out, new, seeds2)
                    queue.append(out)

    def _propagate2(self, queue: deque, faulty_only: bool = False) -> None:
        g2, f2 = self.g2, self.f2
        site = self.fault.net if self.fault is not None else -1
        while queue:
            net = queue.popleft()
            for gi in self._fanout_gates[net]:
                out = self._gate_out[gi]
                ins = self._gate_ins[gi]
                changed = False
                if not faulty_only:
                    new_g = self._gate_eval[gi]([g2[p] for p in ins])
                    if new_g != g2[out]:
                        self._trail.append((_G2, out, g2[out]))
                        g2[out] = new_g
                        changed = True
                if out != site:
                    new_f = self._gate_eval[gi]([f2[p] for p in ins])
                    if new_f != f2[out]:
                        self._trail.append((_F2, out, f2[out]))
                        f2[out] = new_f
                        changed = True
                if changed:
                    self._check_d(out)
                    queue.append(out)

    # ------------------------------------------------------------------
    # status queries
    # ------------------------------------------------------------------
    def activation_value(self) -> int:
        """Frame-1 value at the fault stem (X if still free)."""
        return self.f1[self.fault.net]

    def activated(self) -> bool:
        return self.f1[self.fault.net] == self.fault.initial_value

    def activation_blocked(self) -> bool:
        v = self.f1[self.fault.net]
        return v != X and v != self.fault.initial_value

    def launch_blocked(self) -> bool:
        """True when the good frame 2 can no longer drive the transition."""
        v = self.g2[self.fault.net]
        return v != X and v != self.fault.final_value

    def detected(self) -> bool:
        """Fault effect captured: activated and D at a capture D net."""
        if not self.activated():
            return False
        g2, f2 = self.g2, self.f2
        for net in self.capture_nets:
            g, f = g2[net], f2[net]
            if g != X and f != X and g != f:
                return True
        return False

    def d_frontier(self) -> List[int]:
        """Gates with a D input and an undetermined composite output."""
        frontier: List[int] = []
        g2, f2 = self.g2, self.f2
        for net in self.d_nets:
            for gi in self._fanout_gates[net]:
                out = self._gate_out[gi]
                if g2[out] == X or f2[out] == X:
                    frontier.append(gi)
        return frontier

    def cube(self) -> Dict[int, int]:
        """The current care-bit assignment (V1 scan bits)."""
        return dict(self.v1)
