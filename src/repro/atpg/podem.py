"""PODEM test generation over the two-frame LOC model.

The decision variables are the shifted-in scan bits V1.  The classic
PODEM loop applies: derive an objective (activate the fault in frame 1,
launch the transition in frame 2, then advance the D-frontier), backtrace
the objective through X-valued logic to an unassigned scan cell, assign,
imply, and backtrack on dead ends with a bounded backtrack budget.

``generate_test`` also accepts a *base* assignment — the already-fixed
care bits of a pattern under construction — which is how the engine
performs static compaction: a secondary fault merges into a pattern iff
PODEM succeeds under the base constraints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .faults import TransitionFault
from .twoframe import TwoFrameState
from .values import X

FRAME1 = 1
FRAME2 = 2

Objective = Tuple[int, int, int]  # (frame, net, value)


class PodemStatus(enum.Enum):
    """Outcome of one PODEM run."""

    SUCCESS = "success"
    ABORT = "abort"  # backtrack budget exhausted
    UNTESTABLE = "untestable"  # search space exhausted (under base, if any)


@dataclass
class PodemResult:
    """Outcome of one PODEM run: status, cube and search statistics."""
    status: PodemStatus
    cube: Optional[Dict[int, int]]
    backtracks: int
    decisions: int

    @property
    def success(self) -> bool:
        """True when a test cube was found."""
        return self.status is PodemStatus.SUCCESS


def generate_test(
    state: TwoFrameState,
    fault: TransitionFault,
    base: Optional[Dict[int, int]] = None,
    max_backtracks: int = 60,
) -> PodemResult:
    """Generate a V1 test cube for *fault* (optionally under *base*).

    The returned cube contains every assigned care bit, base included.
    ``UNTESTABLE`` under a non-empty base means "not mergeable into this
    pattern", not that the fault is redundant.
    """
    # Structural prune: a stem that cannot reach any capture net is
    # untestable in this domain, no search needed.
    if state.obs_dist[fault.net] == float("inf"):
        return PodemResult(PodemStatus.UNTESTABLE, None, 0, 0)

    state.set_fault(fault)
    if base:
        for flop, bit in base.items():
            state.assign(flop, bit)

    # decision stack entries: (flop, bit, trail_mark, alternative_tried)
    stack: List[Tuple[int, int, int, bool]] = []
    backtracks = 0
    decisions = 0

    while True:
        if state.detected():
            return PodemResult(
                PodemStatus.SUCCESS, state.cube(), backtracks, decisions
            )

        decision: Optional[Tuple[int, int]] = None
        objective = _objective(state)
        if objective is not None:
            decision = _backtrace(state, objective)

        if decision is None:
            # Dead end: flip the most recent unflipped decision.
            flipped = False
            while stack:
                flop, bit, mk, alt = stack.pop()
                state.undo_to(mk)
                if not alt:
                    backtracks += 1
                    if backtracks > max_backtracks:
                        return PodemResult(
                            PodemStatus.ABORT, None, backtracks, decisions
                        )
                    state.assign(flop, 1 - bit)
                    stack.append((flop, 1 - bit, mk, True))
                    flipped = True
                    break
            if not flipped:
                return PodemResult(
                    PodemStatus.UNTESTABLE, None, backtracks, decisions
                )
            continue

        flop, bit = decision
        mk = state.mark()
        state.assign(flop, bit)
        stack.append((flop, bit, mk, False))
        decisions += 1


def _objective(state: TwoFrameState) -> Optional[Objective]:
    """Next PODEM objective, or None when the current path is dead."""
    fault = state.fault
    if state.activation_blocked():
        return None
    if state.activation_value() == X:
        return (FRAME1, fault.net, fault.initial_value)
    if state.launch_blocked():
        return None
    if state.g2[fault.net] == X:
        return (FRAME2, fault.net, fault.final_value)

    # Fault is active and launched; advance the D-frontier.  Default:
    # prefer the gate closest to a capture net (observability-guided,
    # fewest backtracks).  Timing-aware mode (state.arrival set): prefer
    # the *farthest* reachable gate, pushing the fault effect down long
    # paths — the paper notes plain ATPG settles for easy short paths.
    frontier = state.d_frontier()
    if not frontier:
        return None
    inf = float("inf")
    reachable = [
        gi for gi in frontier
        if state.obs_dist[state._gate_out[gi]] != inf
    ]
    if state.arrival is not None:
        reachable.sort(key=lambda gi: -state.obs_dist[state._gate_out[gi]])
    else:
        reachable.sort(key=lambda gi: state.obs_dist[state._gate_out[gi]])
    for gi in reachable:
        for p in state._gate_ins[gi]:
            if state.g2[p] == X:
                kind = state.netlist.gates[gi].kind
                return (FRAME2, p, _noncontrolling(kind))
    return None


def _noncontrolling(kind: str) -> int:
    if kind.startswith(("AND", "NAND")):
        return 1
    if kind.startswith(("OR", "NOR")):
        return 0
    return 0  # XOR/MUX/AOI/OAI: any defined value advances the frontier


def _backtrace(
    state: TwoFrameState, objective: Objective
) -> Optional[Tuple[int, int]]:
    """Walk an objective back through X logic to an unassigned scan bit.

    Returns ``(flop, bit)`` or None when the objective is unreachable
    (hits constants or already-assigned state).
    """
    netlist = state.netlist
    frame, net, val = objective
    guard = 4 * netlist.n_nets  # cycle guard (paranoia; logic is acyclic)
    while guard > 0:
        guard -= 1
        drv = netlist.driver_of(net)
        if drv is None:
            return None
        kind, idx = drv
        if kind == "pi":
            return None  # primary inputs are held constant
        if kind == "flop":
            if frame == FRAME2:
                source = state.frame2_source(idx)
                if source is None:
                    return None  # constant (LOS scan-in head)
                if source[0] == "f1net":
                    # LOC launch link: frame-2 Q is the frame-1 D net.
                    frame = FRAME1
                    net = source[1]
                    continue
                target = source[1]  # a V1 decision variable
            else:
                target = idx
            if target in state.v1:
                return None  # decision already made; can't re-drive
            return (target, val)

        gate = netlist.gates[idx]
        vals = state.f1 if frame == FRAME1 else state.g2
        step = _choose_input(gate.kind, gate.inputs, vals, val,
                             arrival=state.arrival)
        if step is None:
            return None
        net, val = step
    return None


def _choose_input(
    kind: str,
    inputs: Tuple[int, ...],
    vals: List[int],
    desired: int,
    arrival=None,
) -> Optional[Tuple[int, int]]:
    """Pick one X input of a gate and the value to drive it toward.

    With an *arrival* map, X inputs are considered latest-arriving
    first (timing-aware long-path preference); otherwise in pin order.
    """
    xs = [p for p in inputs if vals[p] == X]
    if not xs:
        return None
    if arrival is not None and len(xs) > 1:
        xs = sorted(xs, key=lambda p: -float(arrival[p]))

    if kind == "INV":
        return (inputs[0], 1 - desired)
    if kind in ("BUF", "CLKBUF"):
        return (inputs[0], desired)

    if kind.startswith(("AND", "NAND")):
        inverted = kind.startswith("NAND")
        core = desired ^ (1 if inverted else 0)
        # core==0: one controlling 0 suffices; core==1: all must be 1.
        return (xs[0], 0 if core == 0 else 1)
    if kind.startswith(("OR", "NOR")):
        inverted = kind.startswith("NOR")
        core = desired ^ (1 if inverted else 0)
        return (xs[0], 1 if core == 1 else 0)

    if kind in ("XOR2", "XNOR2"):
        a, b = inputs
        parity = 1 if kind == "XNOR2" else 0
        if vals[a] != X and vals[b] == X:
            return (b, desired ^ vals[a] ^ parity)
        if vals[b] != X and vals[a] == X:
            return (a, desired ^ vals[b] ^ parity)
        return (xs[0], desired ^ parity)

    if kind == "MUX2":
        d0, d1, sel = inputs
        if vals[sel] == 0 and vals[d0] == X:
            return (d0, desired)
        if vals[sel] == 1 and vals[d1] == X:
            return (d1, desired)
        if vals[sel] == X:
            return (sel, 0)
        return (xs[0], desired)

    if kind == "AOI21":
        a, b, c = inputs
        if desired == 1:  # need (a&b)|c == 0
            if vals[c] == X:
                return (c, 0)
            return (xs[0], 0)
        # need (a&b)|c == 1
        if vals[c] == X:
            return (c, 1)
        return (xs[0], 1)

    if kind == "OAI21":
        a, b, c = inputs
        if desired == 1:  # need (a|b)&c == 0
            if vals[c] == X:
                return (c, 0)
            return (xs[0], 0)
        # need (a|b)&c == 1
        if vals[c] == X:
            return (c, 1)
        return (xs[0], 1)

    # TIE cells and anything exotic: nothing to drive.
    return None
