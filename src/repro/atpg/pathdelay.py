"""Path-delay fault test generation (non-robust sensitization).

Transition faults model a gross delay at one node; *path-delay* faults
model distributed slowness along a specific structural path — the model
behind critical-path testing and the paper's reference [19] (Krstic et
al.), which showed supply noise along the *tested path* is what slows
it.  This module generates LOC tests for explicit paths:

* a **path** runs from a launch flop's Q through combinational gates to
  a capture flop's D;
* a **non-robust test** launches a transition at the path input and
  sets every *off-path* input of every on-path gate to a
  non-controlling value in the second time frame, so the transition's
  arrival at the capture flop is determined by the path under test.

Generation reuses the two-frame implication engine: the path source is
modelled as the matching transition fault (which also gives D-chain
tracking for free), and the off-path side conditions are imposed as
additional PODEM objectives before the propagation phase.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AtpgError
from ..netlist.cells import controlling_value
from ..netlist.netlist import Netlist
from .faults import STF, STR, TransitionFault
from .podem import FRAME1, FRAME2, _backtrace
from .twoframe import TwoFrameState
from .values import X


@dataclass(frozen=True)
class StructuralPath:
    """A combinational path: source net (a flop Q), gate hops, capture.

    ``gates`` lists the on-path gate indexes in order; the path's nets
    are ``source`` followed by each gate's output.  The last net must be
    a pulsed flop's D.
    """

    source: int
    gates: Tuple[int, ...]

    def nets(self, netlist: Netlist) -> List[int]:
        out = [self.source]
        out.extend(netlist.gates[gi].output for gi in self.gates)
        return out

    def describe(self, netlist: Netlist) -> str:
        return " -> ".join(
            netlist.net_names[n] for n in self.nets(netlist)
        )


class PathTestStatus(enum.Enum):
    """Outcome class of a path-test search."""
    SUCCESS = "success"
    ABORT = "abort"
    UNTESTABLE = "untestable"


@dataclass
class PathTestResult:
    """Result of one non-robust path-test generation."""
    status: PathTestStatus
    cube: Optional[Dict[int, int]]
    transition: str  # "rise" or "fall" at the path source
    backtracks: int = 0

    @property
    def success(self) -> bool:
        """True when a sensitizing cube was found."""
        return self.status is PathTestStatus.SUCCESS


def path_from_endpoint(
    netlist: Netlist,
    sta,
    endpoint,
) -> Optional[StructuralPath]:
    """Convert an STA worst path into a :class:`StructuralPath`.

    ``sta`` is a :class:`repro.sim.sta.StaticTimingAnalyzer` after
    ``analyze()``; ``endpoint`` one of its endpoints.  Returns None when
    the traced path does not start at a flop Q (e.g. constant sources).
    """
    points = sta.trace_path(endpoint)
    if not points:
        return None
    src_net = points[0].net
    drv = netlist.driver_of(src_net)
    if drv is None or drv[0] != "flop":
        return None
    gates: List[int] = []
    for point in points[1:]:
        gdrv = netlist.driver_of(point.net)
        if gdrv is None or gdrv[0] != "gate":
            return None
        gates.append(gdrv[1])
    return StructuralPath(source=src_net, gates=tuple(gates))


def path_from_timing(
    netlist: Netlist,
    timing,
    endpoint_flop: int,
) -> Optional[StructuralPath]:
    """Extract the actually-exercised longest path from a simulation.

    STA's structural worst paths are frequently *false* (blocked by
    constant primary inputs or held enables), so path tests for them
    prove untestable.  A timing simulation's arrival front gives paths
    that are sensitizable by construction: starting at the endpoint's D
    net, follow at each gate the toggled input with the latest arrival
    until a flop Q is reached.

    Returns None when the endpoint saw no transition.
    """
    import math

    arrival = timing.last_arrival_ns
    net = netlist.flops[endpoint_flop].d
    if math.isnan(float(arrival[net])):
        return None
    gates_rev: List[int] = []
    guard = netlist.n_nets + 1
    while guard:
        guard -= 1
        drv = netlist.driver_of(net)
        if drv is None:
            return None
        kind, idx = drv
        if kind == "flop":
            source = net
            return StructuralPath(
                source=source, gates=tuple(reversed(gates_rev))
            )
        if kind != "gate":
            return None
        gates_rev.append(idx)
        gate = netlist.gates[idx]
        best = None
        best_arr = -1.0
        for p in gate.inputs:
            a = float(arrival[p])
            if not math.isnan(a) and a > best_arr:
                best_arr = a
                best = p
        if best is None:
            return None  # launch transition originated here? defensive
        net = best
    return None


def generate_path_test(
    state: TwoFrameState,
    path: StructuralPath,
    transition: str = "rise",
    max_backtracks: int = 120,
) -> PathTestResult:
    """Non-robust LOC test for *path* with the given source transition.

    The search satisfies, in order: the frame-1 initial value at the
    source, the frame-2 final value, and the frame-2 non-controlling
    side conditions of every on-path gate; detection at the path's
    capture flop is then checked explicitly.
    """
    netlist = state.netlist
    if transition not in ("rise", "fall"):
        raise AtpgError("transition must be 'rise' or 'fall'")
    fault = TransitionFault(
        path.source, STR if transition == "rise" else STF
    )
    state.set_fault(fault)

    # Build the objective list: off-path side inputs non-controlling in
    # frame 2.  Gates without a controlling value (XOR/MUX/...) leave
    # their side inputs unconstrained in the non-robust model --- any
    # defined value sensitizes them; we require definedness via the
    # final detection check.
    path_nets = set(path.nets(netlist))
    objectives: List[Tuple[int, int, int]] = [
        (FRAME1, path.source, fault.initial_value),
        (FRAME2, path.source, fault.final_value),
    ]
    for gi in path.gates:
        gate = netlist.gates[gi]
        ctrl = controlling_value(gate.kind)
        if ctrl is None:
            continue
        for p in gate.inputs:
            if p not in path_nets:
                objectives.append((FRAME2, p, 1 - ctrl))

    capture_net = path.nets(netlist)[-1]

    stack: List[Tuple[int, int, int, bool]] = []
    backtracks = 0

    def satisfied() -> bool:
        for frame, net, val in objectives:
            cur = state.f1[net] if frame == FRAME1 else state.g2[net]
            if cur != val:
                return False
        # Fault effect must arrive at the path's own capture flop.
        g, f = state.g2[capture_net], state.f2[capture_net]
        return g != X and f != X and g != f

    def blocked() -> bool:
        for frame, net, val in objectives:
            cur = state.f1[net] if frame == FRAME1 else state.g2[net]
            if cur != X and cur != val:
                return True
        return False

    while True:
        if satisfied():
            return PathTestResult(
                PathTestStatus.SUCCESS, state.cube(), transition,
                backtracks,
            )
        decision = None
        if not blocked():
            decision = _next_decision(state, objectives, capture_net)
        if decision is None:
            flipped = False
            while stack:
                flop, bit, mark, alt = stack.pop()
                state.undo_to(mark)
                if not alt:
                    backtracks += 1
                    if backtracks > max_backtracks:
                        return PathTestResult(
                            PathTestStatus.ABORT, None, transition,
                            backtracks,
                        )
                    state.assign(flop, 1 - bit)
                    stack.append((flop, 1 - bit, mark, True))
                    flipped = True
                    break
            if not flipped:
                return PathTestResult(
                    PathTestStatus.UNTESTABLE, None, transition,
                    backtracks,
                )
            continue
        flop, bit = decision
        mark = state.mark()
        state.assign(flop, bit)
        stack.append((flop, bit, mark, False))


def _next_decision(
    state: TwoFrameState,
    objectives: Sequence[Tuple[int, int, int]],
    capture_net: int,
) -> Optional[Tuple[int, int]]:
    """Backtrace the first unsatisfied objective to a free scan bit."""
    for frame, net, val in objectives:
        cur = state.f1[net] if frame == FRAME1 else state.g2[net]
        if cur == X:
            step = _backtrace(state, (frame, net, val))
            if step is not None:
                return step
    # All objective nets defined: if detection is still missing, drive
    # the capture net's definedness through the good machine.
    if state.g2[capture_net] == X:
        return _backtrace(state, (FRAME2, capture_net, 1))
    return None


def longest_path_tests(
    netlist: Netlist,
    sta,
    state: TwoFrameState,
    k: int = 5,
    transitions: Sequence[str] = ("rise", "fall"),
) -> List[Tuple[StructuralPath, PathTestResult]]:
    """Generate tests for the k worst-slack endpoints' critical paths."""
    report = sta.analyze()
    out: List[Tuple[StructuralPath, PathTestResult]] = []
    for endpoint in report.worst_endpoints(k):
        path = path_from_endpoint(netlist, sta, endpoint)
        if path is None or not path.gates:
            continue
        for transition in transitions:
            result = generate_path_test(state, path, transition)
            out.append((path, result))
            if result.success:
                break  # one passing transition per path is enough here
    return out
