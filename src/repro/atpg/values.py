"""Three-valued (0 / 1 / X) logic used by the implication engine.

Values are plain ints: ``ZERO = 0``, ``ONE = 1``, ``X = 2``.  The
evaluators are pessimistic-exact for each cell kind: an output is X only
when the defined inputs cannot determine it (e.g. AND with a 0 input is
0 even if other inputs are X).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..errors import AtpgError

ZERO = 0
ONE = 1
X = 2

_VALUES = (ZERO, ONE, X)


def v_not(a: int) -> int:
    if a == X:
        return X
    return 1 - a


def v_and(vals: Sequence[int]) -> int:
    out = ONE
    for v in vals:
        if v == ZERO:
            return ZERO
        if v == X:
            out = X
    return out


def v_or(vals: Sequence[int]) -> int:
    out = ZERO
    for v in vals:
        if v == ONE:
            return ONE
        if v == X:
            out = X
    return out


def v_xor2(a: int, b: int) -> int:
    if a == X or b == X:
        return X
    return a ^ b


def v_mux2(d0: int, d1: int, sel: int) -> int:
    if sel == ZERO:
        return d0
    if sel == ONE:
        return d1
    # sel unknown: output known only if both data inputs agree.
    if d0 == d1 and d0 != X:
        return d0
    return X


def _e_inv(v: Sequence[int]) -> int:
    return v_not(v[0])


def _e_buf(v: Sequence[int]) -> int:
    return v[0]


def _e_and(v: Sequence[int]) -> int:
    return v_and(v)


def _e_nand(v: Sequence[int]) -> int:
    return v_not(v_and(v))


def _e_or(v: Sequence[int]) -> int:
    return v_or(v)


def _e_nor(v: Sequence[int]) -> int:
    return v_not(v_or(v))


def _e_xor2(v: Sequence[int]) -> int:
    return v_xor2(v[0], v[1])


def _e_xnor2(v: Sequence[int]) -> int:
    return v_not(v_xor2(v[0], v[1]))


def _e_mux2(v: Sequence[int]) -> int:
    return v_mux2(v[0], v[1], v[2])


def _e_aoi21(v: Sequence[int]) -> int:
    return v_not(v_or([v_and(v[:2]), v[2]]))


def _e_oai21(v: Sequence[int]) -> int:
    return v_not(v_and([v_or(v[:2]), v[2]]))


def _e_tie0(v: Sequence[int]) -> int:
    return ZERO


def _e_tie1(v: Sequence[int]) -> int:
    return ONE


#: Kind -> three-valued evaluator.
EVAL3: Dict[str, Callable[[Sequence[int]], int]] = {
    "INV": _e_inv,
    "BUF": _e_buf,
    "CLKBUF": _e_buf,
    "AND2": _e_and,
    "AND3": _e_and,
    "AND4": _e_and,
    "NAND2": _e_nand,
    "NAND3": _e_nand,
    "NAND4": _e_nand,
    "OR2": _e_or,
    "OR3": _e_or,
    "OR4": _e_or,
    "NOR2": _e_nor,
    "NOR3": _e_nor,
    "NOR4": _e_nor,
    "XOR2": _e_xor2,
    "XNOR2": _e_xnor2,
    "MUX2": _e_mux2,
    "AOI21": _e_aoi21,
    "OAI21": _e_oai21,
    "TIE0": _e_tie0,
    "TIE1": _e_tie1,
}


def eval3(kind: str, inputs: Sequence[int]) -> int:
    """Evaluate a cell kind in three-valued logic."""
    fn = EVAL3.get(kind)
    if fn is None:
        raise AtpgError(f"no three-valued evaluator for kind {kind!r}")
    return fn(inputs)
