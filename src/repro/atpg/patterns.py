"""Pattern containers.

A :class:`Pattern` is one launch-off-capture test: the fully-filled scan
state V1 plus bookkeeping — which bits were ATPG care bits, which faults
it was generated for, and which fill policy completed it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import AtpgError


@dataclass
class Pattern:
    """One test pattern over ``n_flops`` scan cells."""

    index: int
    v1: np.ndarray  # uint8 bit per flop
    care: np.ndarray  # bool per flop: ATPG-assigned vs filled
    domain: str
    fill: str
    targeted_faults: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.v1 = np.asarray(self.v1, dtype=np.uint8)
        self.care = np.asarray(self.care, dtype=bool)
        if self.v1.shape != self.care.shape:
            raise AtpgError("v1 and care masks must have the same shape")

    @property
    def n_flops(self) -> int:
        """Number of scan cells the pattern covers."""
        return int(self.v1.size)

    @property
    def care_count(self) -> int:
        """Number of ATPG-assigned (care) bits."""
        return int(self.care.sum())

    @property
    def care_ratio(self) -> float:
        """Care bits as a fraction of all scan cells."""
        return self.care_count / max(1, self.n_flops)

    def v1_dict(self) -> Dict[int, int]:
        """V1 as a flop->bit mapping (simulator input form)."""
        return {fi: int(self.v1[fi]) for fi in range(self.n_flops)}


@dataclass
class PatternSet:
    """An ordered collection of patterns for one clock domain."""

    domain: str
    patterns: List[Pattern] = field(default_factory=list)
    fill: str = "random"

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self.patterns)

    def __getitem__(self, idx: int) -> Pattern:
        return self.patterns[idx]

    def append(self, pattern: Pattern) -> None:
        if pattern.domain != self.domain:
            raise AtpgError(
                f"pattern domain {pattern.domain!r} != set domain "
                f"{self.domain!r}"
            )
        self.patterns.append(pattern)

    def as_matrix(self) -> np.ndarray:
        """All V1 vectors stacked, shape ``(n_patterns, n_flops)``."""
        if not self.patterns:
            return np.zeros((0, 0), dtype=np.uint8)
        return np.stack([p.v1 for p in self.patterns])

    def mean_care_ratio(self) -> float:
        if not self.patterns:
            return 0.0
        return float(np.mean([p.care_ratio for p in self.patterns]))
