"""Transition-delay-fault ATPG (the TetraMAX substitute).

* :mod:`~repro.atpg.values` — three-valued (0/1/X) calculus,
* :mod:`~repro.atpg.faults` — transition fault universe and collapsing,
* :mod:`~repro.atpg.twoframe` — two-time-frame implication engine for
  launch-off-capture,
* :mod:`~repro.atpg.podem` — PODEM test generation over the two frames,
* :mod:`~repro.atpg.fill` — don't-care fill policies (random/0/1/adjacent),
* :mod:`~repro.atpg.fsim` — cone-restricted parallel-pattern fault
  simulation with fault dropping,
* :mod:`~repro.atpg.engine` — the pattern-generation loop with static
  compaction (cube merging) and coverage tracking,
* :mod:`~repro.atpg.patterns` — pattern containers.
"""

from .faults import TransitionFault, build_fault_universe, collapse_faults
from .fill import FILL_POLICIES, apply_fill, preferred_fill_bits
from .patterns import Pattern, PatternSet
from .scoap import TestabilityReport, analyze_testability
from .engine import AtpgEngine, AtpgResult
from .fsim import FaultSimulator
from .podem import PodemResult, PodemStatus, generate_test
from .compact import coverage_of_set, reverse_order_compaction
from .diagnosis import (
    DiagnosisCandidate,
    DiagnosisResult,
    TransitionFaultDiagnoser,
)
from .pathdelay import (
    PathTestResult,
    PathTestStatus,
    StructuralPath,
    generate_path_test,
    longest_path_tests,
    path_from_endpoint,
    path_from_timing,
)

__all__ = [
    "AtpgEngine",
    "AtpgResult",
    "DiagnosisCandidate",
    "DiagnosisResult",
    "FILL_POLICIES",
    "FaultSimulator",
    "TransitionFaultDiagnoser",
    "PathTestResult",
    "PathTestStatus",
    "Pattern",
    "PatternSet",
    "PodemResult",
    "PodemStatus",
    "StructuralPath",
    "TestabilityReport",
    "TransitionFault",
    "analyze_testability",
    "generate_path_test",
    "longest_path_tests",
    "path_from_endpoint",
    "path_from_timing",
    "apply_fill",
    "build_fault_universe",
    "collapse_faults",
    "coverage_of_set",
    "generate_test",
    "preferred_fill_bits",
    "reverse_order_compaction",
]
