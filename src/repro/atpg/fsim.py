"""Cone-restricted parallel-pattern fault simulation with dropping.

Good-machine simulation is bit-parallel over the whole batch (one packed
word per net); each fault then re-simulates only its fanout cone with
the stem forced to the stuck value, and a fault is detected under the
patterns where (a) frame 1 sets the stem to the initial value and
(b) the faulty frame-2 value differs from the good one at a capture
(pulsed-flop D) net.

Three throughput layers sit on top of the plain cone walk:

* **activation-restricted divergence** — the faulty machine only needs
  to diverge on patterns that both activate the fault and toggle the
  stem in frame 2 (detection is masked by activation anyway), so faults
  whose stem never toggles under activation skip simulation entirely;
* **compiled cone kernels** — each fault site's cone is code-generated
  once into a straight-line Python function of pure bigint ops (classic
  compiled-code simulation: no dicts, no per-gate calls) that returns
  the capture-net difference word directly;
* :meth:`run_batch` — arbitrary pattern counts split into fixed-width
  *lanes* (cheap machine-word bigint ops instead of one enormous word),
  optional fault dropping between lanes, and optional fault-partitioned
  fan-out across a process pool (each worker rebuilds the simulator
  once — warm-loading compiled kernels from the persistent
  :mod:`repro.perf.kernel_cache` the parent populated — good-simulates
  every lane once, then grades its fault chunks against the memoized
  frames; matrices ride a zero-copy :mod:`repro.perf.shm` segment when
  big enough, and ``n_workers="auto"`` defers the batch/pool call to
  :mod:`repro.perf.dispatch`).
"""

from __future__ import annotations

import types
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import AtpgError
from ..netlist.levelize import levelize
from ..netlist.netlist import Netlist
from ..obs import current_telemetry
from ..perf.dispatch import current_dispatch, decide_fsim, wants_auto
from ..perf.kernel_cache import (
    KernelCache,
    current_kernel_cache,
    netlist_fingerprint,
)
from ..perf.pool import chunked, pool_map, resolve_workers
from ..perf.shm import shared_matrix, shm_available, resolve_matrix
from ..sim.logic import (
    LogicSim,
    launch_capture_with_state,
    loc_launch_capture,
    pack_matrix,
)
from .faults import TransitionFault

#: Default lane width for :meth:`FaultSimulator.run_batch` — one
#: machine word, so packed bigints stay in CPython's fast small-int
#: paths instead of multi-limb arithmetic.
DEFAULT_LANE_WIDTH = 64

#: Sentinel distinguishing "not compiled yet" from "no capture in cone".
_UNCOMPILED = object()


def _kind_expr(kind: str, args: List[str]) -> str:
    """Bigint expression for one cell kind over already-masked operands.

    Must match :data:`repro.netlist.cells.CELL_FUNCTIONS` bit for bit;
    non-inverting kinds skip the ``& mask`` because their operands are
    already masked.
    """
    if kind == "INV":
        return f"~{args[0]} & mask"
    if kind in ("BUF", "CLKBUF"):
        return args[0]
    if kind.startswith("AND"):
        return " & ".join(args)
    if kind.startswith("NAND"):
        return f"~({' & '.join(args)}) & mask"
    if kind.startswith("OR"):
        return " | ".join(args)
    if kind.startswith("NOR"):
        return f"~({' | '.join(args)}) & mask"
    if kind == "XOR2":
        return f"{args[0]} ^ {args[1]}"
    if kind == "XNOR2":
        return f"~({args[0]} ^ {args[1]}) & mask"
    if kind == "MUX2":
        d0, d1, sel = args
        return f"({d0} & ~{sel}) | ({d1} & {sel})"
    if kind == "AOI21":
        a, b, c = args
        return f"~(({a} & {b}) | {c}) & mask"
    if kind == "OAI21":
        a, b, c = args
        return f"~(({a} | {b}) & {c}) & mask"
    if kind == "TIE0":
        return "0"
    if kind == "TIE1":
        return "mask"
    raise AtpgError(f"no kernel expression for cell kind {kind!r}")


#: Sentinel: pick up the ambient :func:`current_kernel_cache`.
_AMBIENT_CACHE = object()


class FaultSimulator:
    """Reusable LOC transition-fault simulator for one clock domain.

    ``kernel_cache`` controls the persistent compiled-kernel cache
    (:mod:`repro.perf.kernel_cache`): by default the ambient cache is
    used, so cone kernels compiled once for a netlist are warm-loaded
    from disk by every later simulator — including pool workers — for
    that netlist.  Pass ``None`` to disable caching for this instance.
    """

    def __init__(
        self,
        netlist: Netlist,
        domain: str,
        kernel_cache: Union[object, KernelCache, None] = _AMBIENT_CACHE,
    ):
        self.netlist = netlist
        self.domain = domain
        self.sim = LogicSim(netlist)
        netlist.freeze()
        _order, levels = levelize(netlist)
        self._level_of_gate = levels
        self.capture_nets = frozenset(
            f.d
            for f in netlist.flops
            if f.clock_domain == domain and f.edge == "pos"
        )
        if not self.capture_nets:
            raise AtpgError(f"domain {domain!r} has no capturing flops")
        self._cone_cache: Dict[int, Optional[Callable]] = {}
        self._cone_gates_cache: Dict[
            int, Tuple[Tuple[int, ...], Tuple[int, ...]]
        ] = {}
        self._kcache: Optional[KernelCache] = (
            current_kernel_cache()
            if kernel_cache is _AMBIENT_CACHE
            else kernel_cache  # type: ignore[assignment]
        )
        self._kcache_key: Optional[str] = None
        self._ktable: Optional[Dict] = None  # loaded disk entry
        self._dirty_sites: set = set()  # compiled since last store

    # ------------------------------------------------------------------
    # persistent kernel cache plumbing
    # ------------------------------------------------------------------
    def _kernel_key(self) -> str:
        if self._kcache_key is None:
            self._kcache_key = self._kcache.entry_key(
                netlist_fingerprint(self.netlist), self.domain
            )
        return self._kcache_key

    def _kernel_table(self) -> Dict:
        """The on-disk kernel table for this netlist (loaded once)."""
        if self._ktable is None:
            self._ktable = (
                (self._kcache.load(self._kernel_key()) or {})
                if self._kcache is not None
                else {}
            )
        return self._ktable

    def _adopt_cached(self, site: int) -> bool:
        """Install *site*'s kernel from the disk table, if present."""
        entry = self._kernel_table().get(site)
        if entry is None:
            return False
        try:
            captures, gates, code = entry
            self._cone_gates_cache[site] = (tuple(gates), tuple(captures))
            self._cone_cache[site] = (
                types.FunctionType(code, {}) if code is not None else None
            )
        except (TypeError, ValueError):  # malformed entry -> recompile
            self._kernel_table().pop(site, None)
            return False
        return True

    def save_kernels(self) -> None:
        """Persist kernels compiled since the last store (no-op when
        clean or uncached)."""
        if not self._dirty_sites or self._kcache is None:
            return
        table = dict(self._kernel_table())
        for site in self._dirty_sites:
            gates, captures = self._cone_gates_cache[site]
            kernel = self._cone_cache.get(site)
            table[site] = (
                captures,
                gates,
                kernel.__code__ if kernel is not None else None,
            )
        self._kcache.store(self._kernel_key(), table)
        self._ktable = table
        self._dirty_sites.clear()

    def warm_kernels(self, faults: Sequence[TransitionFault]) -> int:
        """Ensure every fault site's kernel is compiled, then persist.

        Returns the number of sites compiled fresh (0 = fully warm).
        Called before fanning out to a pool so workers always find a
        warm disk cache instead of each paying the compile tax.
        """
        before = len(self._dirty_sites)
        for fault in faults:
            self._cone(fault.net)
        compiled = len(self._dirty_sites) - before
        self.save_kernels()
        return compiled

    def cone_of(self, site: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Structural fanout cone of a fault site.

        Returns ``(gate indices in level order, capture nets
        reachable)`` — the raw topology behind the compiled kernels,
        also used by diagnosis for per-endpoint resolution and cone
        filtering.
        """
        cached = self._cone_gates_cache.get(site)
        if cached is not None:
            return cached
        if (
            self._kcache is not None
            and self._adopt_cached(site)
        ):
            return self._cone_gates_cache[site]
        netlist = self.netlist
        gates = netlist.transitive_fanout_gates(site)
        gates.sort(key=self._level_of_gate.__getitem__)
        nets = {site}
        nets.update(netlist.gates[gi].output for gi in gates)
        result = (tuple(gates), tuple(sorted(nets & self.capture_nets)))
        self._cone_gates_cache[site] = result
        return result

    def _cone(self, site: int) -> Optional[Callable[[int, Dict, int], int]]:
        """Compiled cone kernel for one fault site (``None`` when the
        cone reaches no capture net).

        ``kernel(site_div, good_frame2, mask)`` propagates the stem
        divergence word through the site's whole fanout cone in level
        order and returns the OR of capture-net difference words.  The
        cone is generated once into straight-line bigint code — every
        gate is one expression over local variables (cone nets) and
        ``g2[...]`` lookups (side inputs), with no per-gate dispatch.
        Compiled code objects round-trip through the persistent
        :class:`~repro.perf.kernel_cache.KernelCache`, so a warm
        netlist skips codegen and ``compile()`` entirely.
        """
        kernel = self._cone_cache.get(site, _UNCOMPILED)
        if kernel is not _UNCOMPILED:
            return kernel
        if self._kcache is not None and self._adopt_cached(site):
            return self._cone_cache[site]
        netlist = self.netlist
        gates, captures = self.cone_of(site)
        if not captures:
            self._cone_cache[site] = None
            self._dirty_sites.add(site)
            return None
        lines = [
            "def _kernel(sdiv, g2, mask):",
            f"    v{site} = g2[{site}] ^ sdiv",
        ]
        defined = {site}
        for gi in gates:
            g = netlist.gates[gi]
            args = [
                f"v{p}" if p in defined else f"g2[{p}]" for p in g.inputs
            ]
            lines.append(f"    v{g.output} = {_kind_expr(g.kind, args)}")
            defined.add(g.output)
        diff = " | ".join(f"(v{c} ^ g2[{c}])" for c in captures)
        lines.append(f"    return {diff}")
        namespace: Dict[str, Callable] = {}
        exec(  # noqa: S102 — code built only from int net ids / cell kinds
            compile("\n".join(lines), f"<fsim-cone-{site}>", "exec"),
            namespace,
        )
        kernel = namespace["_kernel"]
        self._cone_cache[site] = kernel
        self._dirty_sites.add(site)
        return kernel

    @staticmethod
    def pack(v1_matrix: np.ndarray) -> Tuple[Dict[int, int], int]:
        """Pack an ``(n_patterns, n_flops)`` bit matrix into words."""
        return pack_matrix(v1_matrix)

    def _lane_frames(
        self,
        lane_matrix: np.ndarray,
        protocol: str,
        scan,
        v2_lane: Optional[np.ndarray],
    ) -> Tuple[List[int], List[int], int]:
        """Good-machine ``(frame1, frame2, mask)`` for one pattern lane."""
        packed, mask = self.pack(lane_matrix)
        if protocol == "loc":
            cyc = loc_launch_capture(self.sim, packed, self.domain, mask=mask)
        elif protocol == "los":
            if scan is None:
                raise AtpgError("LOS fault simulation needs the scan config")
            v2 = _packed_shift(packed, scan)
            cyc = launch_capture_with_state(
                self.sim, packed, v2, self.domain, mask=mask
            )
        elif protocol == "es":
            if v2_lane is None or v2_lane.shape != lane_matrix.shape:
                raise AtpgError(
                    "enhanced-scan fault simulation needs a v2_matrix "
                    "matching v1_matrix"
                )
            v2, _ = self.pack(v2_lane)
            cyc = launch_capture_with_state(
                self.sim, packed, v2, self.domain, mask=mask
            )
        else:
            raise AtpgError(f"unknown protocol {protocol!r}")
        return cyc.frame1, cyc.frame2, mask

    def _grade_lane(
        self,
        f1: List[int],
        g2: List[int],
        mask: int,
        faults: Sequence[TransitionFault],
    ) -> Dict[TransitionFault, int]:
        """Kernel loop: detection words for *faults* on settled frames."""
        cone = self._cone
        detections: Dict[TransitionFault, int] = {}
        for fault in faults:
            site = fault.net
            if fault.initial_value == 1:
                act = f1[site] & mask
                forced = mask
            else:
                act = ~f1[site] & mask
                forced = 0
            if act == 0:
                continue
            # Only activated patterns can detect, so the faulty machine
            # needs to diverge only where frame 1 activates AND frame 2
            # actually drives the transition the fault is slow to make;
            # divergence words stay sparse and a fault whose stem never
            # toggles under activation skips the cone entirely.  The
            # detection word is bit-identical either way because it is
            # masked by activation regardless.
            site_div = (g2[site] ^ forced) & act
            if site_div == 0:
                continue
            kernel = cone(site)
            if kernel is None:
                continue
            det = kernel(site_div, g2, mask)
            if det:
                detections[fault] = det
        return detections

    def run(
        self,
        v1_matrix: np.ndarray,
        faults: Sequence[TransitionFault],
        protocol: str = "loc",
        scan=None,
        v2_matrix: Optional[np.ndarray] = None,
    ) -> Dict[TransitionFault, int]:
        """Simulate a single-lane pattern batch; return detection words.

        Bit *p* of the returned word is set when pattern *p* (row *p* of
        *v1_matrix*) detects the fault.  Undetected faults are omitted.
        For large batches prefer :meth:`run_batch`, which splits the
        patterns into machine-word lanes.

        Parameters
        ----------
        protocol:
            Launch mechanism: ``"loc"`` (default, V2 = functional
            response), ``"los"`` (V2 = V1 shifted one chain position;
            pass *scan*), or ``"es"`` (V2 explicit; pass *v2_matrix*).
        """
        if v1_matrix.ndim != 2:
            raise AtpgError("v1_matrix must be (n_patterns, n_flops)")
        if v1_matrix.shape[1] != self.netlist.n_flops:
            raise AtpgError(
                f"v1_matrix covers {v1_matrix.shape[1]} flops, design has "
                f"{self.netlist.n_flops}"
            )
        f1, g2, mask = self._lane_frames(v1_matrix, protocol, scan, v2_matrix)
        return self._grade_lane(f1, g2, mask, faults)

    def run_batch(
        self,
        v1_matrix: np.ndarray,
        faults: Sequence[TransitionFault],
        protocol: str = "loc",
        scan=None,
        v2_matrix: Optional[np.ndarray] = None,
        lane_width: int = DEFAULT_LANE_WIDTH,
        drop: bool = False,
        n_workers: Union[int, str, None] = 1,
        transport: Optional[str] = None,
        exec_policy=None,
    ) -> Dict[TransitionFault, int]:
        """Fault-simulate an arbitrarily large batch in fixed-width lanes.

        Detection-word bits are indexed by the *global* pattern row, so
        with ``drop=False`` the result is bit-identical to a single
        :meth:`run` over the whole matrix — lanes are purely a speed
        lever (machine-word bigints, activation skips per lane).

        Parameters
        ----------
        lane_width:
            Patterns per lane (default one machine word).  With
            ``drop=True`` narrow lanes pay off (dropped faults skip all
            later lanes); without dropping a wide lane amortises the
            per-fault setup better.
        drop:
            Drop a fault after its first detecting lane: later lanes
            skip it, so its word only carries that lane's detections.
            The set of detected faults and each fault's first-detection
            index are unchanged; use it when only those matter
            (coverage grading), not when counting detections per fault.
        n_workers:
            Fan the fault list out across a process pool in chunked
            partitions (each worker rebuilds the simulator once from
            the warm kernel cache, good-simulates every lane once, then
            grades its fault chunks against the settled frames).
            ``<= 1`` stays serial in-process; ``"auto"`` lets
            :func:`repro.perf.dispatch.decide_fsim` pick batch or pool
            from the work size and usable cores.
        transport:
            How pool workers receive the pattern matrices: ``"inherit"``
            ships them through pickled initargs, ``"shm"`` through one
            packed :mod:`repro.perf.shm` segment per matrix (zero-copy).
            ``None`` (default) decides from matrix size via the ambient
            :class:`~repro.perf.dispatch.DispatchPolicy`.
        exec_policy:
            Optional :class:`~repro.perf.resilient.RetryPolicy` for
            the pooled path (per-chunk timeouts, retries, crash
            recovery).  ``None`` uses the ambient default — see
            :func:`repro.perf.resilient.execution_policy`.
        """
        v1_matrix = np.asarray(v1_matrix)
        if v1_matrix.ndim != 2:
            raise AtpgError("v1_matrix must be (n_patterns, n_flops)")
        if lane_width <= 0:
            raise AtpgError("lane_width must be positive")
        if transport not in (None, "inherit", "shm"):
            raise AtpgError("transport must be None, 'inherit' or 'shm'")
        n_pat = v1_matrix.shape[0]
        faults = list(faults)
        if n_pat == 0 or not faults:
            return {}

        tel = current_telemetry()
        if wants_auto(n_workers):
            decision = decide_fsim(
                n_pat, len(faults), matrix_bytes=int(v1_matrix.nbytes)
            )
            eff = decision.n_workers if decision.mode == "pool" else 1
            use_shm = (
                decision.use_shm if transport is None else transport == "shm"
            )
        else:
            eff = resolve_workers(n_workers, len(faults))
            if transport is None:
                use_shm = (
                    int(v1_matrix.nbytes) // 8
                    >= current_dispatch().shm_min_bytes
                )
            else:
                use_shm = transport == "shm"
        use_shm = use_shm and eff > 1 and shm_available()
        with tel.span(
            "fsim.run_batch",
            domain=self.domain,
            n_patterns=n_pat,
            n_faults=len(faults),
            workers=eff,
            drop=drop,
            shm=use_shm,
        ):
            tel.count("fsim.faults_graded", len(faults))
            if eff > 1:
                # Pay the compile tax once, here, and persist: workers
                # warm-load marshalled kernels from disk instead of each
                # re-running codegen + compile() over the whole design.
                if self._kcache is not None:
                    self.warm_kernels(faults)
                # Chunked fault partitions; a few chunks per worker
                # keeps the load balanced when cone sizes are skewed.
                chunks = chunked(faults, eff * 4)
                with shared_matrix(
                    v1_matrix if use_shm else None
                ) as h1, shared_matrix(
                    v2_matrix if use_shm else None
                ) as h2:
                    results = pool_map(
                        _fsim_worker_task,
                        chunks,
                        n_workers=eff,
                        policy=exec_policy,
                        initializer=_fsim_worker_init,
                        initargs=(
                            self.netlist,
                            self.domain,
                            h1 if h1 is not None else v1_matrix,
                            protocol,
                            scan,
                            h2 if h2 is not None else v2_matrix,
                            lane_width,
                            drop,
                        ),
                    )
                merged: Dict[TransitionFault, int] = {}
                for part in results:
                    merged.update(part)
                tel.count("fsim.faults_detected", len(merged))
                return merged

            detections: Dict[TransitionFault, int] = {}
            live = faults
            for start in range(0, n_pat, lane_width):
                if not live:
                    break
                lane = v1_matrix[start:start + lane_width]
                v2_lane = (
                    v2_matrix[start:start + lane_width]
                    if v2_matrix is not None
                    else None
                )
                with tel.span("fsim.lane", start=start, live=len(live)):
                    words = self.run(
                        lane, live, protocol=protocol, scan=scan,
                        v2_matrix=v2_lane,
                    )
                for fault, word in words.items():
                    prev = detections.get(fault)
                    detections[fault] = (
                        word << start
                        if prev is None
                        else prev | (word << start)
                    )
                if drop and words:
                    live = [f for f in live if f not in detections]
            tel.count("fsim.faults_detected", len(detections))
            if drop:
                tel.count("fsim.faults_dropped", len(faults) - len(live))
            self.save_kernels()
            return detections


#: Per-worker simulator context installed by :func:`_fsim_worker_init`.
_FSIM_WORKER_STATE: Optional[Tuple] = None


def _fsim_worker_init(
    netlist: Netlist,
    domain: str,
    v1_source,
    protocol: str,
    scan,
    v2_source,
    lane_width: int,
    drop: bool,
) -> None:
    """Build the per-worker grading context, once per worker process.

    The matrices arrive either inline or as :mod:`repro.perf.shm`
    handles (resolved here); the simulator warm-loads its kernels from
    the persistent cache the parent just populated; and the good
    machine is simulated over every lane *once* — fault chunks then
    grade against the memoized settled frames instead of re-running the
    good machine per chunk.
    """
    global _FSIM_WORKER_STATE
    v1 = resolve_matrix(v1_source)
    v2 = resolve_matrix(v2_source)
    sim = FaultSimulator(netlist, domain)
    frames: List[Tuple[int, List[int], List[int], int]] = []
    for start in range(0, v1.shape[0], lane_width):
        lane = v1[start:start + lane_width]
        v2_lane = v2[start:start + lane_width] if v2 is not None else None
        f1, g2, mask = sim._lane_frames(lane, protocol, scan, v2_lane)
        frames.append((start, f1, g2, mask))
    _FSIM_WORKER_STATE = (sim, frames, drop)


def _fsim_worker_task(
    fault_chunk: Sequence[TransitionFault],
) -> Dict[TransitionFault, int]:
    """Grade one fault partition against every lane (runs in a worker)."""
    sim, frames, drop = _FSIM_WORKER_STATE
    detections: Dict[TransitionFault, int] = {}
    live = list(fault_chunk)
    for start, f1, g2, mask in frames:
        if not live:
            break
        words = sim._grade_lane(f1, g2, mask, live)
        for fault, word in words.items():
            prev = detections.get(fault)
            detections[fault] = (
                word << start if prev is None else prev | (word << start)
            )
        if drop and words:
            live = [f for f in live if f not in detections]
    return detections


def _packed_shift(packed: Dict[int, int], scan) -> Dict[int, int]:
    """Launch-off-shift launch state: every cell takes its upstream
    chain neighbour's packed word; scan-in ends take 0."""
    v2: Dict[int, int] = {}
    for chain in scan.chains:
        for pos, fi in enumerate(chain.flops):
            v2[fi] = 0 if pos == 0 else packed[chain.flops[pos - 1]]
    return v2


def first_detection_index(word: int) -> int:
    """Lowest pattern index set in a detection word."""
    if word <= 0:
        raise AtpgError("detection word has no set bits")
    return (word & -word).bit_length() - 1
