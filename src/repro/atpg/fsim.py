"""Cone-restricted parallel-pattern fault simulation with dropping.

Good-machine simulation is bit-parallel over the whole batch (one packed
word per net); each fault then re-simulates only its fanout cone with
the stem forced to the stuck value, and a fault is detected under the
patterns where (a) frame 1 sets the stem to the initial value and
(b) the faulty frame-2 value differs from the good one at a capture
(pulsed-flop D) net.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AtpgError
from ..netlist.cells import CELL_FUNCTIONS
from ..netlist.levelize import levelize
from ..netlist.netlist import Netlist
from ..sim.logic import (
    LogicSim,
    launch_capture_with_state,
    loc_launch_capture,
)
from .faults import TransitionFault


class FaultSimulator:
    """Reusable LOC transition-fault simulator for one clock domain."""

    def __init__(self, netlist: Netlist, domain: str):
        self.netlist = netlist
        self.domain = domain
        self.sim = LogicSim(netlist)
        netlist.freeze()
        _order, levels = levelize(netlist)
        self._level_of_gate = levels
        self.capture_nets = frozenset(
            f.d
            for f in netlist.flops
            if f.clock_domain == domain and f.edge == "pos"
        )
        if not self.capture_nets:
            raise AtpgError(f"domain {domain!r} has no capturing flops")
        self._cone_cache: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}

    def _cone(self, site: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """(cone gate list in level order, capture nets reachable)."""
        cached = self._cone_cache.get(site)
        if cached is not None:
            return cached
        gates = self.netlist.transitive_fanout_gates(site)
        gates.sort(key=self._level_of_gate.__getitem__)
        nets = {site}
        nets.update(self.netlist.gates[gi].output for gi in gates)
        captures = tuple(sorted(nets & self.capture_nets))
        result = (tuple(gates), captures)
        self._cone_cache[site] = result
        return result

    @staticmethod
    def pack(v1_matrix: np.ndarray) -> Tuple[Dict[int, int], int]:
        """Pack an ``(n_patterns, n_flops)`` bit matrix into words."""
        n_pat, n_flops = v1_matrix.shape
        mask = (1 << n_pat) - 1
        packed: Dict[int, int] = {}
        for fi in range(n_flops):
            word = 0
            col = v1_matrix[:, fi]
            for p in range(n_pat):
                if col[p]:
                    word |= 1 << p
            packed[fi] = word
        return packed, mask

    def run(
        self,
        v1_matrix: np.ndarray,
        faults: Sequence[TransitionFault],
        protocol: str = "loc",
        scan=None,
        v2_matrix: Optional[np.ndarray] = None,
    ) -> Dict[TransitionFault, int]:
        """Simulate a pattern batch; return per-fault detection words.

        Bit *p* of the returned word is set when pattern *p* (row *p* of
        *v1_matrix*) detects the fault.  Undetected faults are omitted.

        Parameters
        ----------
        protocol:
            Launch mechanism: ``"loc"`` (default, V2 = functional
            response), ``"los"`` (V2 = V1 shifted one chain position;
            pass *scan*), or ``"es"`` (V2 explicit; pass *v2_matrix*).
        """
        if v1_matrix.ndim != 2:
            raise AtpgError("v1_matrix must be (n_patterns, n_flops)")
        if v1_matrix.shape[1] != self.netlist.n_flops:
            raise AtpgError(
                f"v1_matrix covers {v1_matrix.shape[1]} flops, design has "
                f"{self.netlist.n_flops}"
            )
        packed, mask = self.pack(v1_matrix)
        if protocol == "loc":
            cyc = loc_launch_capture(self.sim, packed, self.domain, mask=mask)
        elif protocol == "los":
            if scan is None:
                raise AtpgError("LOS fault simulation needs the scan config")
            v2 = _packed_shift(packed, scan)
            cyc = launch_capture_with_state(
                self.sim, packed, v2, self.domain, mask=mask
            )
        elif protocol == "es":
            if v2_matrix is None or v2_matrix.shape != v1_matrix.shape:
                raise AtpgError(
                    "enhanced-scan fault simulation needs a v2_matrix "
                    "matching v1_matrix"
                )
            v2, _ = self.pack(v2_matrix)
            cyc = launch_capture_with_state(
                self.sim, packed, v2, self.domain, mask=mask
            )
        else:
            raise AtpgError(f"unknown protocol {protocol!r}")
        f1 = cyc.frame1
        g2 = cyc.frame2
        gates = self.netlist.gates

        detections: Dict[TransitionFault, int] = {}
        for fault in faults:
            site = fault.net
            if fault.initial_value == 1:
                act = f1[site] & mask
                forced = mask
            else:
                act = ~f1[site] & mask
                forced = 0
            if act == 0:
                continue
            cone_gates, captures = self._cone(site)
            if not captures:
                continue
            faulty: Dict[int, int] = {site: forced}
            get = faulty.get
            for gi in cone_gates:
                gate = gates[gi]
                out_word = CELL_FUNCTIONS[gate.kind](
                    [get(p, g2[p]) for p in gate.inputs], mask
                )
                if out_word != g2[gate.output]:
                    faulty[gate.output] = out_word
            diff = 0
            for net in captures:
                diff |= get(net, g2[net]) ^ g2[net]
            det = diff & act
            if det:
                detections[fault] = det
        return detections


def _packed_shift(packed: Dict[int, int], scan) -> Dict[int, int]:
    """Launch-off-shift launch state: every cell takes its upstream
    chain neighbour's packed word; scan-in ends take 0."""
    v2: Dict[int, int] = {}
    for chain in scan.chains:
        for pos, fi in enumerate(chain.flops):
            v2[fi] = 0 if pos == 0 else packed[chain.flops[pos - 1]]
    return v2


def first_detection_index(word: int) -> int:
    """Lowest pattern index set in a detection word."""
    if word <= 0:
        raise AtpgError("detection word has no set bits")
    return (word & -word).bit_length() - 1
