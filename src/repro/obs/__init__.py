"""Observability for the noise-tolerant flow (the ``repro.obs`` subsystem).

Three coordinated layers behind one run-scoped facade:

* **tracing** (:mod:`~repro.obs.tracer`) — hierarchical spans over flow
  stages, ATPG runs, fault-sim batches/lanes, SCAP grading, DRC rules
  and resilient-executor chunks (workers report their chunk spans home
  on the existing result channel), exported as JSONL and Chrome
  trace-event JSON;
* **metrics** (:mod:`~repro.obs.metrics`) — counters/gauges/histograms
  (patterns generated, faults detected/dropped, SCAP violations per
  block, retries, worker crashes, cache hits, checkpoint resumes) with
  Prometheus text exposition and a JSON snapshot folded into
  ``RunReport.telemetry``;
* **profiling + logging** (:mod:`~repro.obs.profiler`,
  :mod:`~repro.obs.logs`) — optional per-stage ``cProfile`` capture
  with a top-N hotspot table, and stdlib structured logs carrying the
  run id.

:class:`NullTelemetry` is the ambient default: every signal drops at
the cost of one method call, flow results are bit-identical either
way, and ``benchmarks/bench_obs_overhead.py`` enforces the <5%
disabled-path budget.  Enable with::

    from repro.obs import Telemetry
    tel = Telemetry(profile=True)
    result, report = run_noise_tolerant_flow(design, telemetry=tel)
    tel.save_trace_jsonl("trace.jsonl")
    tel.save_metrics_prometheus("metrics.prom")

or from the CLI: ``repro flow --trace --metrics --profile``.
"""

from .convert import (
    format_summary,
    load_trace_jsonl,
    nesting_errors,
    save_chrome_trace,
    summarize,
)
from .logs import LOG_LEVELS, RunLoggerAdapter, run_logger, setup_logging
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_name,
)
from .profiler import StageProfiler
from .telemetry import (
    NULL_TELEMETRY,
    AnyTelemetry,
    NullTelemetry,
    Telemetry,
    current_telemetry,
    use_telemetry,
)
from .tracer import Span, TraceEvent, Tracer, events_to_chrome, worker_event

__all__ = [
    "AnyTelemetry",
    "Counter",
    "Gauge",
    "Histogram",
    "LOG_LEVELS",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "RunLoggerAdapter",
    "Span",
    "StageProfiler",
    "Telemetry",
    "TraceEvent",
    "Tracer",
    "current_telemetry",
    "events_to_chrome",
    "format_summary",
    "load_trace_jsonl",
    "nesting_errors",
    "prometheus_name",
    "run_logger",
    "save_chrome_trace",
    "setup_logging",
    "summarize",
    "use_telemetry",
    "worker_event",
]
