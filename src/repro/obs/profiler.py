"""Optional per-stage ``cProfile`` capture with a hotspot table.

Profiling is off by default (it costs real time); when the telemetry
facade enables it, each flow stage runs under its own profiler and the
accumulated statistics collapse into one top-N hotspot table that the
:class:`~repro.reporting.runreport.RunReport` carries and the CLI
prints.  Stages execute sequentially in the orchestrating process, so
one profiler at a time is enough; worker-process time shows up in the
trace (chunk spans), not here.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class StageProfiler:
    """Collects per-stage profiles and merges them into hotspots."""

    def __init__(self, top_n: int = 20) -> None:
        self.top_n = top_n
        self._stats: Dict[str, pstats.Stats] = {}
        self._active: Optional[str] = None

    @property
    def stages(self) -> List[str]:
        return list(self._stats)

    @contextmanager
    def profile(self, stage: str) -> Iterator[None]:
        """Profile one stage (no-op when a profile is already active —
        ``cProfile`` cannot nest)."""
        if self._active is not None:
            yield
            return
        profiler = cProfile.Profile()
        self._active = stage
        profiler.enable()
        try:
            yield
        finally:
            profiler.disable()
            self._active = None
            stats = pstats.Stats(profiler)
            if stage in self._stats:
                self._stats[stage].add(stats)
            else:
                self._stats[stage] = stats

    # -- reporting ------------------------------------------------------
    def hotspots(self, top_n: Optional[int] = None) -> List[Dict[str, Any]]:
        """Top functions by own (tottime) seconds, merged over stages.

        Each row: ``function`` (``file:line(name)``), ``ncalls``,
        ``tottime_s``, ``cumtime_s``.
        """
        limit = top_n if top_n is not None else self.top_n
        merged: Dict[str, List[float]] = {}
        for stats in self._stats.values():
            for (path, line, func), entry in stats.stats.items():  # type: ignore[attr-defined]
                cc, nc, tt, ct = entry[0], entry[1], entry[2], entry[3]
                label = f"{_short_path(path)}:{line}({func})"
                row = merged.setdefault(label, [0.0, 0.0, 0.0])
                row[0] += nc
                row[1] += tt
                row[2] += ct
        rows = [
            {
                "function": label,
                "ncalls": int(vals[0]),
                "tottime_s": round(vals[1], 6),
                "cumtime_s": round(vals[2], 6),
            }
            for label, vals in merged.items()
        ]
        rows.sort(key=lambda r: (-float(r["tottime_s"]), r["function"]))
        return rows[:limit]

    def format_table(self, top_n: Optional[int] = None) -> str:
        """Plain-text hotspot table (the RunReport/CLI rendering)."""
        rows = self.hotspots(top_n)
        if not rows:
            return "(no profile captured)"
        from ..reporting.tables import format_table

        return format_table(
            rows,
            columns=["tottime_s", "cumtime_s", "ncalls", "function"],
            title=f"Top {len(rows)} hotspots (by own time):",
        )


def _short_path(path: str) -> str:
    """Trim profiler paths to the interesting tail (pkg/module.py)."""
    if path.startswith("<"):  # builtins, compiled cone kernels
        return path
    parts = path.replace("\\", "/").split("/")
    return "/".join(parts[-2:]) if len(parts) > 1 else path
