"""Hierarchical span tracing for the noise-tolerant flow.

A :class:`Tracer` records *spans* — named, attributed, wall-clock
intervals that nest: the flow run contains its stages, a stage contains
its ATPG run and grading batches, a batch contains its lanes and the
chunk executions that worker processes report back.  Finished spans
accumulate as plain dicts (one per span) that export two ways:

* **JSONL** — one JSON object per line, trivially greppable and
  streamable (the ``repro obs`` subcommand summarises these);
* **Chrome trace-event format** — a ``{"traceEvents": [...]}`` document
  of ``"ph": "X"`` complete events that ``chrome://tracing`` and
  Perfetto load directly, with worker-side events appearing under
  their own pid rows.

Spans opened in *this* process nest through an explicit stack (the
orchestration layers are single-threaded).  Worker processes cannot
share that stack; they instead build leaf events with
:func:`worker_event` and ship them home on the existing chunk-result
channel, where :meth:`Tracer.absorb_events` parents them under the
span that was open at absorb time.
"""

from __future__ import annotations

import json
import os
import time
from types import TracebackType
from typing import Any, Dict, List, Optional, Type

#: A finished span, as stored and exported.  Keys: ``name``, ``span_id``,
#: ``parent_id``, ``ts_s`` (wall-clock start, seconds), ``dur_s``,
#: ``pid`` and free-form ``attrs``.
TraceEvent = Dict[str, Any]


def worker_event(
    name: str, ts_s: float, dur_s: float, **attrs: Any
) -> TraceEvent:
    """Build a leaf trace event inside a worker process.

    The event carries the worker's pid and absolute wall-clock times;
    the parent tracer assigns ids and parentage when it absorbs the
    event (see :meth:`Tracer.absorb_events`).
    """
    return {
        "name": name,
        "span_id": None,
        "parent_id": None,
        "ts_s": ts_s,
        "dur_s": dur_s,
        "pid": os.getpid(),
        "attrs": attrs,
    }


class Span:
    """One open span; use as a context manager (``with tracer.span(...)``)."""

    __slots__ = ("name", "span_id", "parent_id", "start_s", "attrs", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: str,
        parent_id: Optional[str],
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_s = time.time()

    def set(self, **attrs: Any) -> "Span":
        """Attach/override attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc is not None:
            self.attrs["error"] = repr(exc)
        self._tracer._pop(self)


class Tracer:
    """Collects a run's span tree as a flat list of finished events."""

    def __init__(self, run_id: str) -> None:
        self.run_id = run_id
        self.events: List[TraceEvent] = []
        self._stack: List[Span] = []
        self._next_id = 0
        self._pid = os.getpid()

    # -- span lifecycle -------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span nested under the currently-open span."""
        self._next_id += 1
        return Span(
            self,
            name,
            span_id=f"s{self._next_id}",
            parent_id=self.current_span_id(),
            attrs=attrs,
        )

    def current_span_id(self) -> Optional[str]:
        return self._stack[-1].span_id if self._stack else None

    def _push(self, span: Span) -> None:
        # Parentage is fixed at entry, not construction, so a span built
        # early and entered late still nests where it actually ran.
        span.parent_id = self.current_span_id()
        span.start_s = time.time()
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        end_s = time.time()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        self.events.append(
            {
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "ts_s": span.start_s,
                "dur_s": max(0.0, end_s - span.start_s),
                "pid": self._pid,
                "attrs": dict(span.attrs),
            }
        )

    # -- worker events --------------------------------------------------
    def absorb_events(self, events: List[TraceEvent]) -> None:
        """Adopt leaf events reported by worker processes.

        Each event gets a fresh id and is parented under the span open
        at absorb time (the batch/executor span that dispatched the
        work), so the cross-process tree stays well-nested: the parent
        opened before the chunk was submitted and closes after its
        result was received.
        """
        parent = self.current_span_id()
        for event in events:
            self._next_id += 1
            adopted = dict(event)
            adopted["span_id"] = f"s{self._next_id}"
            adopted["parent_id"] = parent
            self.events.append(adopted)

    # -- export ---------------------------------------------------------
    def to_jsonl(self) -> str:
        """One finished span per line, in completion order."""
        return "".join(
            json.dumps(event, sort_keys=True, default=str) + "\n"
            for event in self.events
        )

    def save_jsonl(self, path: str) -> str:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
        return path

    def chrome_events(self) -> List[Dict[str, Any]]:
        """Chrome trace-event "complete" (``ph: X``) events."""
        return events_to_chrome(self.events)

    def save_chrome(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(
                {
                    "traceEvents": self.chrome_events(),
                    "displayTimeUnit": "ms",
                    "otherData": {"run_id": self.run_id},
                },
                fh,
                default=str,
            )
        return path


def events_to_chrome(events: List[TraceEvent]) -> List[Dict[str, Any]]:
    """Convert stored span events to Chrome trace-event dicts.

    Timestamps are rebased to the earliest span so the trace opens at
    t=0; worker events keep their own pid and therefore render as
    separate process rows in ``chrome://tracing``.
    """
    if not events:
        return []
    t0 = min(float(e["ts_s"]) for e in events)
    out: List[Dict[str, Any]] = []
    for event in events:
        out.append(
            {
                "name": event["name"],
                "cat": "repro",
                "ph": "X",
                "ts": (float(event["ts_s"]) - t0) * 1e6,
                "dur": float(event["dur_s"]) * 1e6,
                "pid": int(event.get("pid", 0)),
                "tid": int(event.get("pid", 0)),
                "args": dict(event.get("attrs", {})),
            }
        )
    return out
