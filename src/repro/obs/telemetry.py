"""The run-scoped telemetry facade and its allocation-free null twin.

:class:`Telemetry` bundles the three observability layers — tracing
(:class:`~repro.obs.tracer.Tracer`), metrics
(:class:`~repro.obs.metrics.MetricsRegistry`) and optional per-stage
profiling (:class:`~repro.obs.profiler.StageProfiler`) — behind one
object that threads through the flow.  Instrumented code never checks
what is enabled; it calls ``tel.span(...)`` / ``tel.count(...)`` and
the facade routes (or drops) the signal.

:class:`NullTelemetry` is the default everywhere: every method is a
no-op and ``span`` returns one shared, reusable null context manager,
so a telemetry-disabled run pays only a method call per instrumentation
point (<2% end to end; ``benchmarks/bench_obs_overhead.py`` holds the
line).  Flow results are bit-identical either way — telemetry only
observes.

The facade travels two ways: explicitly (``run_noise_tolerant_flow(...,
telemetry=tel)``) and ambiently via :func:`use_telemetry` /
:func:`current_telemetry`, which is how deep layers (fault simulation,
SCAP grading, DRC rules, the resilient executor) see the run's
telemetry without threading a parameter through every signature —
the same pattern as :func:`repro.perf.resilient.execution_policy`.
"""

from __future__ import annotations

import os
import time
import uuid
from contextlib import contextmanager
from types import TracebackType
from typing import Any, Dict, Iterator, List, Optional, Type, Union

from .logs import RunLoggerAdapter, run_logger
from .metrics import MetricsRegistry
from .profiler import StageProfiler
from .tracer import TraceEvent, Tracer


class _NullSpan:
    """Shared no-op span: enter/exit/set all do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


#: The one null span every disabled instrumentation point reuses.
_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Telemetry that observes nothing, as cheaply as possible."""

    __slots__ = ()

    enabled = False
    run_id = "null"
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    profiler: Optional[StageProfiler] = None

    @property
    def wants_worker_spans(self) -> bool:
        return False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def profile_stage(self, stage: str) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        return None

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        return None

    def observe(self, name: str, value: float, **labels: Any) -> None:
        return None

    def absorb_worker_events(self, events: List[TraceEvent]) -> None:
        return None

    def snapshot(self) -> Optional[Dict[str, Any]]:
        return None

    @property
    def log(self) -> RunLoggerAdapter:
        return run_logger("-")


#: Module-wide singleton; ``current_telemetry`` hands this out when no
#: telemetry is in scope, so callers never branch on ``None``.
NULL_TELEMETRY = NullTelemetry()


class Telemetry:
    """Run-scoped tracing + metrics + profiling + logging."""

    enabled = True

    def __init__(
        self,
        run_id: Optional[str] = None,
        tracing: bool = True,
        metrics: bool = True,
        profile: bool = False,
        profile_top_n: int = 20,
    ) -> None:
        self.run_id = (
            run_id
            if run_id is not None
            else f"{uuid.uuid4().hex[:8]}-{os.getpid()}"
        )
        self.started_s = time.time()
        self.tracer: Optional[Tracer] = (
            Tracer(self.run_id) if tracing else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics else None
        )
        self.profiler: Optional[StageProfiler] = (
            StageProfiler(top_n=profile_top_n) if profile else None
        )
        self.log: RunLoggerAdapter = run_logger(self.run_id)

    # -- tracing --------------------------------------------------------
    @property
    def wants_worker_spans(self) -> bool:
        return self.tracer is not None

    def span(self, name: str, **attrs: Any) -> Any:
        if self.tracer is None:
            return _NULL_SPAN
        return self.tracer.span(name, **attrs)

    def absorb_worker_events(self, events: List[TraceEvent]) -> None:
        if self.tracer is not None and events:
            self.tracer.absorb_events(events)

    # -- profiling ------------------------------------------------------
    def profile_stage(self, stage: str) -> Any:
        if self.profiler is None:
            return _NULL_SPAN
        return self.profiler.profile(stage)

    # -- metrics --------------------------------------------------------
    def count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount, **labels)

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name).set(value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value, **labels)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Optional[Dict[str, Any]]:
        """JSON-ready digest for ``RunReport.telemetry``."""
        out: Dict[str, Any] = {
            "run_id": self.run_id,
            "elapsed_s": round(time.time() - self.started_s, 6),
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics.snapshot()
        if self.tracer is not None:
            out["n_trace_events"] = len(self.tracer.events)
        if self.profiler is not None:
            out["hotspots"] = self.profiler.hotspots()
        return out

    def save_trace_jsonl(self, path: str) -> Optional[str]:
        return self.tracer.save_jsonl(path) if self.tracer else None

    def save_chrome_trace(self, path: str) -> Optional[str]:
        return self.tracer.save_chrome(path) if self.tracer else None

    def save_metrics_prometheus(self, path: str) -> Optional[str]:
        return self.metrics.save_prometheus(path) if self.metrics else None

    def save_metrics_json(self, path: str) -> Optional[str]:
        return self.metrics.save_json(path) if self.metrics else None

    def hotspot_table(self) -> Optional[str]:
        return self.profiler.format_table() if self.profiler else None


#: What instrumented call sites accept / ``current_telemetry`` returns.
AnyTelemetry = Union[Telemetry, NullTelemetry]

_STACK: List[AnyTelemetry] = []


def current_telemetry() -> AnyTelemetry:
    """The innermost telemetry in scope (the null facade by default)."""
    return _STACK[-1] if _STACK else NULL_TELEMETRY


@contextmanager
def use_telemetry(
    telemetry: Optional[AnyTelemetry],
) -> Iterator[AnyTelemetry]:
    """Scope *telemetry* as the ambient facade for the block.

    ``None`` scopes the null facade — handy for forcing telemetry off
    inside an instrumented region.
    """
    scoped: AnyTelemetry = (
        telemetry if telemetry is not None else NULL_TELEMETRY
    )
    _STACK.append(scoped)
    try:
        yield scoped
    finally:
        _STACK.pop()
