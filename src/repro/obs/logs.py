"""Structured stdlib logging carrying a run id.

All repro loggers hang off the ``"repro"`` root; records render as::

    2026-08-05 12:00:00,123 INFO repro.core.flow run=1a2b3c stage=... msg

``run=<id>`` comes from a :class:`logging.LoggerAdapter` built by
:func:`run_logger`; records emitted without an adapter show ``run=-``
(a filter backfills the field so one formatter serves both).  The CLI's
``--log-level`` flag maps straight onto :func:`setup_logging`.
"""

from __future__ import annotations

import logging
from typing import Any, MutableMapping, Optional, Tuple

LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

_FORMAT = "%(asctime)s %(levelname)s %(name)s run=%(run_id)s %(message)s"


class _RunIdFilter(logging.Filter):
    """Backfill ``run_id`` on records that did not come via an adapter."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "run_id"):
            record.run_id = "-"
        return True


def setup_logging(
    level: str = "warning", stream: Optional[Any] = None
) -> logging.Logger:
    """Configure the ``repro`` logger tree; returns the root logger.

    Idempotent: repeated calls adjust the level instead of stacking
    handlers, so every CLI subcommand can call it unconditionally.
    """
    if level.lower() not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; pick one of {LOG_LEVELS}"
        )
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level.upper()))
    handler = None
    for existing in logger.handlers:
        if getattr(existing, "_repro_obs_handler", False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream)
        handler._repro_obs_handler = True  # type: ignore[attr-defined]
        handler.setFormatter(logging.Formatter(_FORMAT))
        handler.addFilter(_RunIdFilter())
        logger.addHandler(handler)
        logger.propagate = False
    elif stream is not None:
        try:
            handler.setStream(stream)  # type: ignore[attr-defined]
        except ValueError:
            # setStream flushes the outgoing stream first; if that
            # stream is already closed (common under test harnesses
            # that swap sys.stderr), attach the new one directly.
            handler.stream = stream  # type: ignore[attr-defined]
    return logger


class RunLoggerAdapter(logging.LoggerAdapter):
    """Adapter stamping every record with the run id."""

    def process(
        self, msg: Any, kwargs: MutableMapping[str, Any]
    ) -> Tuple[Any, MutableMapping[str, Any]]:
        extra = dict(kwargs.get("extra") or {})
        extra.setdefault("run_id", self.extra["run_id"])
        kwargs["extra"] = extra
        return msg, kwargs


def run_logger(run_id: str, name: str = "repro.run") -> RunLoggerAdapter:
    """A logger whose records carry ``run=<run_id>``."""
    return RunLoggerAdapter(logging.getLogger(name), {"run_id": run_id})
