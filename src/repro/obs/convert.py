"""Trace-file utilities behind the ``repro obs`` subcommand.

Loads span JSONL written by :meth:`~repro.obs.tracer.Tracer.save_jsonl`,
converts it to Chrome trace-event JSON, aggregates per-span-name
summaries, and validates well-nestedness (every span's interval inside
its parent's) — the invariant the chaos tests assert even after worker
kills mid-batch.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from .tracer import TraceEvent, events_to_chrome


def load_trace_jsonl(path: str) -> List[TraceEvent]:
    """Parse a span-JSONL file (blank lines tolerated)."""
    events: List[TraceEvent] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(event, dict) or "name" not in event:
                raise ValueError(f"{path}:{lineno}: not a span event")
            events.append(event)
    return events


def save_chrome_trace(events: List[TraceEvent], path: str) -> str:
    """Write events as a ``chrome://tracing``-loadable document."""
    with open(path, "w") as fh:
        json.dump(
            {"traceEvents": events_to_chrome(events), "displayTimeUnit": "ms"},
            fh,
            default=str,
        )
    return path


def summarize(events: List[TraceEvent]) -> List[Dict[str, Any]]:
    """Per-span-name aggregate rows, sorted by total time descending."""
    agg: Dict[str, List[float]] = {}
    for event in events:
        dur = float(event.get("dur_s", 0.0))
        row = agg.setdefault(str(event["name"]), [0.0, 0.0, 0.0])
        row[0] += 1
        row[1] += dur
        row[2] = max(row[2], dur)
    rows = [
        {
            "span": name,
            "count": int(vals[0]),
            "total_s": round(vals[1], 6),
            "mean_s": round(vals[1] / vals[0], 6) if vals[0] else 0.0,
            "max_s": round(vals[2], 6),
        }
        for name, vals in agg.items()
    ]
    rows.sort(key=lambda r: (-float(r["total_s"]), str(r["span"])))
    return rows


def format_summary(events: List[TraceEvent]) -> str:
    """Plain-text summary table for the CLI."""
    rows = summarize(events)
    if not rows:
        return "(empty trace)"
    from ..reporting.tables import format_table

    return format_table(
        rows,
        columns=["span", "count", "total_s", "mean_s", "max_s"],
        title=f"{len(events)} spans:",
    )


def nesting_errors(
    events: List[TraceEvent], tolerance_s: float = 0.05
) -> List[str]:
    """Well-nestedness violations (empty list = tree is sound).

    Checks that every span naming a parent (a) references a recorded
    span and (b) fits inside the parent's wall-clock interval, within
    *tolerance_s* (worker events carry another process's clock reads;
    same host, so skew is bounded but not zero).
    """
    by_id: Dict[str, TraceEvent] = {
        str(e["span_id"]): e for e in events if e.get("span_id")
    }
    problems: List[str] = []
    for event in events:
        parent_id = event.get("parent_id")
        if parent_id is None:
            continue
        parent = by_id.get(str(parent_id))
        if parent is None:
            problems.append(
                f"span {event['span_id']} ({event['name']}) references "
                f"missing parent {parent_id}"
            )
            continue
        child_iv = _interval(event)
        parent_iv = _interval(parent)
        if (
            child_iv[0] < parent_iv[0] - tolerance_s
            or child_iv[1] > parent_iv[1] + tolerance_s
        ):
            problems.append(
                f"span {event['span_id']} ({event['name']}) "
                f"[{child_iv[0]:.6f}, {child_iv[1]:.6f}] escapes parent "
                f"{parent_id} ({parent['name']}) "
                f"[{parent_iv[0]:.6f}, {parent_iv[1]:.6f}]"
            )
    return problems


def _interval(event: TraceEvent) -> Tuple[float, float]:
    start = float(event["ts_s"])
    return start, start + float(event.get("dur_s", 0.0))
