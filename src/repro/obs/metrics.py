"""Counters, gauges and histograms with Prometheus text exposition.

The registry is deliberately small: enough to account for what a
pattern-generation service must watch (patterns generated, faults
detected/dropped, SCAP violations per block, executor retries and
crashes, cache hits, checkpoint resumes) without pulling in a client
library.  Metric names are dotted (``exec.retries``); the Prometheus
exposition mangles them to the conventional form
(``repro_exec_retries_total``), while the JSON snapshot keeps the
dotted names for the :class:`~repro.reporting.runreport.RunReport`.

Labels are plain keyword arguments::

    registry.counter("scap.violations").inc(3, block="B5")
    registry.gauge("flow.stage_index").set(2)
    registry.histogram("exec.chunk_s").observe(0.125)
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets (seconds-flavoured, wide dynamic range).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_suffix(key: LabelKey) -> str:
    if not key:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + body + "}"


def prometheus_name(name: str, kind: str) -> str:
    """Dotted metric name -> Prometheus exposition name."""
    base = "repro_" + name.replace(".", "_").replace("-", "_")
    if kind == "counter" and not base.endswith("_total"):
        base += "_total"
    return base


class Counter:
    """Monotonically increasing per-label-set totals."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self.values[key] = self.values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self.values.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        return sum(self.values.values())


class Gauge:
    """Last-written per-label-set values."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self.values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        self.values[key] = self.values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self.values.get(_label_key(labels), 0.0)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        # per label set: (bucket counts, sum, count)
        self.values: Dict[LabelKey, Tuple[List[int], float, int]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        counts, total, n = self.values.get(
            key, ([0] * len(self.buckets), 0.0, 0)
        )
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
        self.values[key] = (counts, total + value, n + 1)

    def count(self, **labels: Any) -> int:
        entry = self.values.get(_label_key(labels))
        return entry[2] if entry else 0

    def sum(self, **labels: Any) -> float:
        entry = self.values.get(_label_key(labels))
        return entry[1] if entry else 0.0


class MetricsRegistry:
    """Get-or-create registry of the three metric kinds, unique by name."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, help, Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, help, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help, buckets)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def _get_or_create(self, name: str, help: str, cls: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dict of every metric's current values.

        Counters/gauges map ``label-suffix -> value`` (the empty suffix
        ``""`` is the unlabelled series); histograms additionally carry
        their bucket bounds, counts and sums.
        """
        out: Dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                series = {}
                for key, (counts, total, n) in sorted(metric.values.items()):
                    series[_label_suffix(key)] = {
                        "buckets": dict(
                            zip(
                                [str(b) for b in metric.buckets],
                                counts,
                            )
                        ),
                        "sum": total,
                        "count": n,
                    }
                out[name] = {"kind": metric.kind, "series": series}
            else:
                out[name] = {
                    "kind": metric.kind,
                    "series": {
                        _label_suffix(key): value
                        for key, value in sorted(metric.values.items())
                    },
                }
        return out

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            pname = prometheus_name(name, metric.kind)
            if metric.help:
                lines.append(f"# HELP {pname} {metric.help}")
            lines.append(f"# TYPE {pname} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, (counts, total, n) in sorted(metric.values.items()):
                    for bound, count in zip(metric.buckets, counts):
                        labels = dict(key)
                        labels["le"] = repr(float(bound))
                        suffix = _label_suffix(_label_key(labels))
                        lines.append(f"{pname}_bucket{suffix} {count}")
                    inf = dict(key)
                    inf["le"] = "+Inf"
                    lines.append(
                        f"{pname}_bucket{_label_suffix(_label_key(inf))} {n}"
                    )
                    lines.append(f"{pname}_sum{_label_suffix(key)} {total}")
                    lines.append(f"{pname}_count{_label_suffix(key)} {n}")
            else:
                for key, value in sorted(metric.values.items()):
                    lines.append(f"{pname}{_label_suffix(key)} {value}")
        return "\n".join(lines) + "\n"

    def save_prometheus(self, path: str) -> str:
        with open(path, "w") as fh:
            fh.write(self.to_prometheus())
        return path

    def save_json(self, path: str) -> str:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")
        return path
