"""Random-logic block generator.

Each SOC block is a level-structured combinational cloud wrapped in scan
flops: level-0 signals are flop outputs and bus taps, each subsequent
level draws its inputs mostly from the immediately preceding levels (so
logic depth — and with it the switching time frame window — is
controllable), and flop D pins consume the deepest signals.  Unconsumed
gate outputs are folded into XOR observation trees feeding extra flops,
so nearly all logic is observable by the ATPG.

Instance placement is incremental: a gate sits near the centroid of its
input drivers with jitter, clamped to the block region, which gives nets
realistic wirelengths for the parasitic extractor and puts each block's
power where its region is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..netlist.library import DEFAULT_CELL_FOR_KIND
from ..netlist.netlist import Netlist
from .floorplan import BlockRegion

#: (kind, weight) mix of a standard-cell mapped netlist.  The mix is
#: deliberately biased toward zero-preserving kinds (AND/OR/XOR/MUX give
#: 0 on all-zero inputs) so that the all-zeros scan state is a
#: near-quiescent state of each block — the property of real datapath
#: logic (reset state) that makes the paper's fill-0 strategy keep
#: untargeted blocks quiet during launch-off-capture.
_KIND_WEIGHTS = [
    ("AND2", 0.16),
    ("XOR2", 0.15),
    ("OR2", 0.11),
    ("NAND2", 0.10),
    ("MUX2", 0.10),
    ("AND3", 0.08),
    ("OR3", 0.06),
    ("NOR2", 0.06),
    ("INV", 0.06),
    ("AOI21", 0.05),
    ("OAI21", 0.05),
    ("XNOR2", 0.02),
]

_KIND_ARITY = {
    "INV": 1, "NAND2": 2, "NOR2": 2, "AND2": 2, "OR2": 2, "AND3": 3,
    "OR3": 3, "NAND3": 3, "NOR3": 3, "AOI21": 3, "OAI21": 3, "XOR2": 2,
    "XNOR2": 2, "MUX2": 3,
}


@dataclass
class BlockPlan:
    """Size and composition targets for one generated block.

    Parameters
    ----------
    name:
        Block name (e.g. ``"B5"``).
    n_flops:
        Number of scan flops (before observation-tree extras).
    gates_per_flop:
        Combinational cloud size relative to the register count; the
        power-dense B5 uses a higher value than the peripheral blocks.
    depth:
        Number of cloud levels; the dominant term in path delay and thus
        in the switching time frame window.
    domain_shares:
        Clock-domain mix, e.g. ``{"clka": 0.8, "clkb": 0.2}``; shares
        must sum to 1.
    """

    name: str
    n_flops: int
    gates_per_flop: float
    depth: int
    domain_shares: Dict[str, float]

    def __post_init__(self) -> None:
        if self.n_flops < 2:
            raise ConfigError(f"block {self.name!r} needs >= 2 flops")
        if self.depth < 2:
            raise ConfigError(f"block {self.name!r} needs depth >= 2")
        total = sum(self.domain_shares.values())
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(
                f"block {self.name!r} domain shares sum to {total}, not 1"
            )


@dataclass
class BlockResult:
    """What a generated block exposes to the rest of the SOC."""

    name: str
    flop_indices: List[int]
    output_nets: List[int]
    n_gates: int


def _sample_kind(rng: np.random.Generator) -> str:
    kinds = [k for k, _w in _KIND_WEIGHTS]
    weights = np.array([w for _k, w in _KIND_WEIGHTS])
    return str(rng.choice(kinds, p=weights / weights.sum()))


def _clamp(v: float, lo: float, hi: float) -> float:
    return min(max(v, lo), hi)


def generate_block(
    netlist: Netlist,
    region: BlockRegion,
    plan: BlockPlan,
    rng: np.random.Generator,
    bus_inputs: Sequence[int] = (),
    n_outputs: int = 4,
) -> BlockResult:
    """Generate one block into *netlist*; returns its interface.

    ``bus_inputs`` are external nets (bus bits, PIs) the cloud may read.
    ``n_outputs`` deep signals are returned for the bus fabric to consume.
    """
    prefix = plan.name.lower()
    net_pos: Dict[int, Tuple[float, float]] = {}

    # --- flop output nets (level 0 sources) ---------------------------
    q_nets: List[int] = []
    for i in range(plan.n_flops):
        q = netlist.add_net(f"{prefix}_q{i}")
        q_nets.append(q)
        net_pos[q] = region.random_point(rng)

    # --- enable (config) registers ------------------------------------
    # Real SOC blocks are full of load-enable registers steered by
    # quasi-static configuration bits; the all-zeros state is therefore
    # a *fixed point* of the launch cycle: with every enable at 0 no
    # register updates and the block stays quiet.  This is the property
    # the paper's fill-0 strategy exploits to silence untargeted blocks.
    # Enable flops are self-holding scan cells (D tied to Q), one per
    # ~16 data flops to keep enable fanout realistic.
    gate_count = 0
    flop_indices: List[int] = []
    n_enables = max(1, plan.n_flops // 8)
    enable_q: List[int] = []
    for k in range(n_enables):
        q = netlist.add_net(f"{prefix}_enq{k}")
        pos = region.random_point(rng)
        fi = netlist.add_flop(
            f"{prefix}_enf{k}",
            "SDFFX1",
            d=q,  # hold loop: a configuration register
            q=q,
            clock_domain=max(
                plan.domain_shares, key=plan.domain_shares.get
            ),
            edge="pos",
            is_scan=True,
            block=plan.name,
            pos=pos,
        )
        net_pos[q] = pos
        enable_q.append(q)
        flop_indices.append(fi)

    # --- enable-gated bus interface -----------------------------------
    # External (bus/PI) taps enter the cloud through AND gates steered
    # by an enable, the usual chip-select structure: a fill-0 block is
    # decoupled from bus activity.
    gated_inputs: List[int] = []
    if bus_inputs:
        for k, ext in enumerate(bus_inputs):
            net_pos.setdefault(ext, region.center)
            gated = netlist.add_net(f"{prefix}_busin{k}")
            pos = region.random_point(rng)
            netlist.add_gate(
                f"{prefix}_busen{k}",
                DEFAULT_CELL_FOR_KIND["AND2"],
                [ext, enable_q[k % n_enables]],
                gated,
                block=plan.name,
                pos=pos,
            )
            net_pos[gated] = pos
            gate_count += 1
            gated_inputs.append(gated)

    level_signals: List[List[int]] = [list(q_nets) + gated_inputs]
    fanout_used: Dict[int, int] = {n: 0 for n in level_signals[0]}

    # --- level-structured cloud ---------------------------------------
    n_gates_total = max(plan.depth, int(plan.n_flops * plan.gates_per_flop))
    per_level = max(1, n_gates_total // plan.depth)
    jitter = max(region.width, region.height) * 0.06

    for level in range(1, plan.depth + 1):
        new_signals: List[int] = []
        for _g in range(per_level):
            kind = _sample_kind(rng)
            arity = _KIND_ARITY[kind]
            ins = _pick_inputs(
                level_signals, fanout_used, arity, rng
            )
            out = netlist.add_net(f"{prefix}_n{level}_{len(new_signals)}_{gate_count}")
            cx = float(np.mean([net_pos[n][0] for n in ins]))
            cy = float(np.mean([net_pos[n][1] for n in ins]))
            pos = (
                _clamp(cx + rng.normal(0, jitter), region.x0, region.x1 - 1e-6),
                _clamp(cy + rng.normal(0, jitter), region.y0, region.y1 - 1e-6),
            )
            netlist.add_gate(
                f"{prefix}_g{gate_count}",
                DEFAULT_CELL_FOR_KIND[kind],
                ins,
                out,
                block=plan.name,
                pos=pos,
            )
            net_pos[out] = pos
            for n in ins:
                fanout_used[n] = fanout_used.get(n, 0) + 1
            fanout_used[out] = 0
            new_signals.append(out)
            gate_count += 1
        level_signals.append(new_signals)

    # --- flop D hookup: consume the deepest signals, enable-gated -----
    deep_pool = [n for lvl in level_signals[-3:] for n in lvl]
    domain_assignment = _assign_domains(plan, rng)
    for i, q in enumerate(q_nets):
        d = _pick_deep_signal(deep_pool, fanout_used, rng)
        fanout_used[d] += 1
        pos = (
            _clamp(net_pos[d][0] + rng.normal(0, jitter),
                   region.x0, region.x1 - 1e-6),
            _clamp(net_pos[d][1] + rng.normal(0, jitter),
                   region.y0, region.y1 - 1e-6),
        )
        # Load-enable register: D = enable ? cloud : Q (hold).  With the
        # enable low the flop holds its scanned state, so neither fill-0
        # blocks nor disabled groups under random fill launch anything.
        gated = netlist.add_net(f"{prefix}_den{i}")
        netlist.add_gate(
            f"{prefix}_deng{i}",
            DEFAULT_CELL_FOR_KIND["MUX2"],
            [q, d, enable_q[i % n_enables]],
            gated,
            block=plan.name,
            pos=pos,
        )
        net_pos[gated] = pos
        gate_count += 1
        fi = netlist.add_flop(
            f"{prefix}_f{i}",
            "SDFFX1",
            d=gated,
            q=q,
            clock_domain=domain_assignment[i],
            edge="pos",
            is_scan=True,
            block=plan.name,
            pos=pos,
        )
        # flop placement also serves as the Q net's source position
        net_pos[q] = pos
        flop_indices.append(fi)

    # --- observation trees for leftover logic -------------------------
    leftovers = [
        n
        for lvl in level_signals[1:]
        for n in lvl
        if fanout_used.get(n, 0) == 0
    ]
    obs_count = 0
    while leftovers:
        group, leftovers = leftovers[:8], leftovers[8:]
        # Balanced XOR reduction keeps observation depth to log2(group).
        frontier = list(group)
        stage = 0
        while len(frontier) > 1:
            nxt: List[int] = []
            for j in range(0, len(frontier) - 1, 2):
                a, b = frontier[j], frontier[j + 1]
                out = netlist.add_net(f"{prefix}_obs{obs_count}_{stage}_{j}")
                pos = net_pos[a]
                netlist.add_gate(
                    f"{prefix}_obsx{obs_count}_{stage}_{j}",
                    DEFAULT_CELL_FOR_KIND["XOR2"],
                    [a, b],
                    out,
                    block=plan.name,
                    pos=pos,
                )
                net_pos[out] = pos
                gate_count += 1
                nxt.append(out)
            if len(frontier) % 2 == 1:
                nxt.append(frontier[-1])
            frontier = nxt
            stage += 1
        signal = frontier[0]
        # Observation registers are load-enable-gated like the data
        # flops so a fill-0 block launches nothing.
        q = netlist.add_net(f"{prefix}_obsq{obs_count}")
        gated = netlist.add_net(f"{prefix}_obsen{obs_count}")
        netlist.add_gate(
            f"{prefix}_obseng{obs_count}",
            DEFAULT_CELL_FOR_KIND["MUX2"],
            [q, signal, enable_q[obs_count % n_enables]],
            gated,
            block=plan.name,
            pos=net_pos[signal],
        )
        net_pos[gated] = net_pos[signal]
        gate_count += 1
        fi = netlist.add_flop(
            f"{prefix}_obsf{obs_count}",
            "SDFFX1",
            d=gated,
            q=q,
            clock_domain=domain_assignment[0],
            edge="pos",
            is_scan=True,
            block=plan.name,
            pos=net_pos[signal],
        )
        net_pos[q] = net_pos[signal]
        flop_indices.append(fi)
        obs_count += 1

    outputs = _pick_outputs(level_signals, n_outputs, rng)
    return BlockResult(plan.name, flop_indices, outputs, gate_count)


def _pick_inputs(
    level_signals: List[List[int]],
    fanout_used: Dict[int, int],
    arity: int,
    rng: np.random.Generator,
) -> List[int]:
    """Choose gate inputs: one from the previous level (depth guarantee),
    the rest from a recent-level window, preferring unconsumed signals."""
    prev = level_signals[-1] if level_signals[-1] else level_signals[0]
    window = [n for lvl in level_signals[-3:] for n in lvl]
    chosen: List[int] = []

    def pick(pool: List[int]) -> int:
        unused = [n for n in pool if fanout_used.get(n, 0) == 0]
        src = unused if unused and rng.random() < 0.7 else pool
        return int(src[rng.integers(len(src))])

    chosen.append(pick(prev))
    while len(chosen) < arity:
        cand = pick(window)
        if cand not in chosen or len(window) <= arity:
            chosen.append(cand)
    return chosen


def _pick_deep_signal(
    pool: List[int], fanout_used: Dict[int, int], rng: np.random.Generator
) -> int:
    unused = [n for n in pool if fanout_used.get(n, 0) == 0]
    src = unused if unused else pool
    return int(src[rng.integers(len(src))])


def _assign_domains(plan: BlockPlan, rng: np.random.Generator) -> List[str]:
    """Deterministically split the flops across domains by share."""
    names = sorted(plan.domain_shares)
    counts = {
        name: int(round(plan.domain_shares[name] * plan.n_flops))
        for name in names
    }
    # fix rounding drift on the largest-share domain
    drift = plan.n_flops - sum(counts.values())
    biggest = max(names, key=lambda d: plan.domain_shares[d])
    counts[biggest] += drift
    assignment: List[str] = []
    for name in names:
        assignment.extend([name] * counts[name])
    perm = rng.permutation(len(assignment))
    return [assignment[i] for i in perm]


def _pick_outputs(
    level_signals: List[List[int]], n_outputs: int, rng: np.random.Generator
) -> List[int]:
    deep = [n for lvl in level_signals[-2:] for n in lvl]
    if not deep:
        return []
    k = min(n_outputs, len(deep))
    idx = rng.choice(len(deep), size=k, replace=False)
    return [deep[int(i)] for i in idx]
