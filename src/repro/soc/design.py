"""The :class:`SocDesign` aggregate and its characteristic reports.

Bundles everything the experiments need about the generated SOC:
netlist, floorplan, clock domains and trees, scan configuration and
extracted parasitics, plus the accessors that produce the paper's
Table 1 (design characteristics) and Table 2 (clock-domain analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..errors import ConfigError
from ..netlist.netlist import Netlist
from ..netlist.parasitics import ParasiticModel, extract_net_caps
from .clocks import ClockDomainSpec, ClockTree
from .floorplan import Floorplan

if TYPE_CHECKING:  # pragma: no cover
    from ..dft.scan import ScanConfig


@dataclass
class SocDesign:
    """A generated Turbo-Eagle-like SOC, ready for DFT and analysis."""

    name: str
    netlist: Netlist
    floorplan: Floorplan
    domains: Dict[str, ClockDomainSpec]
    clock_trees: Dict[str, ClockTree]
    scale_name: str
    seed: int
    scan: Optional["ScanConfig"] = None
    _parasitics: Optional[ParasiticModel] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # lazy parasitics
    # ------------------------------------------------------------------
    @property
    def parasitics(self) -> ParasiticModel:
        """Per-net switched capacitance (extracted on first use)."""
        if self._parasitics is None:
            self._parasitics = extract_net_caps(self.netlist)
        return self._parasitics

    # ------------------------------------------------------------------
    # structural accessors
    # ------------------------------------------------------------------
    def flops_in_domain(self, domain: str) -> List[int]:
        if domain not in self.domains:
            raise ConfigError(f"unknown clock domain {domain!r}")
        return [
            i
            for i, f in enumerate(self.netlist.flops)
            if f.clock_domain == domain
        ]

    def flops_in_block(self, block: str) -> List[int]:
        return [
            i for i, f in enumerate(self.netlist.flops) if f.block == block
        ]

    def gates_in_block(self, block: str) -> List[int]:
        return [
            i for i, g in enumerate(self.netlist.gates) if g.block == block
        ]

    def blocks(self) -> List[str]:
        return sorted(self.floorplan.regions)

    def enable_flops_in_block(self, block: str) -> List[int]:
        """The block's load-enable configuration registers.

        These are the self-holding flops gating every data register's
        update (generated as ``<block>_enf<k>``); forcing them to 0
        freezes the block — the isolation mechanism the paper wished it
        had for B5.
        """
        return [
            fi
            for fi, f in enumerate(self.netlist.flops)
            if f.block == block and "_enf" in f.name
        ]

    # ------------------------------------------------------------------
    # wrapper / TAM metadata
    # ------------------------------------------------------------------
    def chains_in_block(self, block: str) -> List[int]:
        """Scan chains carrying at least one of the block's cells."""
        if self.scan is None:
            return []
        found = {
            self.scan.chain_of_flop[fi]
            for fi in self.flops_in_block(block)
            if fi in self.scan.chain_of_flop
        }
        return sorted(found)

    @property
    def tam_width(self) -> Optional[int]:
        """The chip's TAM trunk width in lines.

        Taken from the floorplan's TAM metadata when the generator
        recorded it; otherwise the scan chain count (one TAM line per
        chain — the widest configuration the scan structure supports).
        ``None`` for designs without scan.
        """
        fp_width = getattr(self.floorplan, "tam_width", None)
        if fp_width is not None:
            return int(fp_width)
        return self.scan.n_chains if self.scan is not None else None

    def tam_width_options(self, block: str) -> List[int]:
        """Discrete wrapper width candidates for *block* (see
        :func:`repro.dft.wrapper.wrapper_widths_for_block`)."""
        from ..dft.wrapper import wrapper_widths_for_block

        return wrapper_widths_for_block(
            self, block, max_width=self.tam_width
        )

    def dominant_domain(self) -> str:
        """The clock domain owning the most scan flops (paper: clka)."""
        counts = {d: len(self.flops_in_domain(d)) for d in self.domains}
        return max(counts, key=counts.get)

    def blocks_covered_by_domain(self, domain: str) -> List[str]:
        found = sorted(
            {
                f.block
                for f in self.netlist.flops
                if f.clock_domain == domain and f.block is not None
            }
        )
        return found

    # ------------------------------------------------------------------
    # characteristic tables
    # ------------------------------------------------------------------
    def characteristics(self) -> Dict[str, int]:
        """Paper Table 1: design characteristics.

        The transition-fault count is reported separately by
        :func:`repro.atpg.faults.build_fault_universe` since it depends
        on the fault model options.
        """
        n_chains = 0
        if self.scan is not None:
            n_chains = self.scan.n_chains
        neg_edge = sum(
            1 for f in self.netlist.flops if f.edge == "neg" and f.is_scan
        )
        return {
            "clock_domains": len(self.domains),
            "scan_chains": n_chains,
            "total_scan_flops": len(self.netlist.scan_flops),
            "negative_edge_scan_flops": neg_edge,
            "gates": self.netlist.n_gates,
        }

    def domain_table(self) -> List[Dict[str, object]]:
        """Paper Table 2: per-domain flop counts, frequency, blocks."""
        rows: List[Dict[str, object]] = []
        for name in sorted(self.domains):
            spec = self.domains[name]
            rows.append(
                {
                    "clock_domain": name,
                    "scan_cells": len(self.flops_in_domain(name)),
                    "frequency_mhz": spec.freq_mhz,
                    "blocks_covered": ",".join(
                        self.blocks_covered_by_domain(name)
                    ),
                }
            )
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SocDesign {self.name!r} scale={self.scale_name!r} "
            f"gates={self.netlist.n_gates} flops={self.netlist.n_flops}>"
        )
