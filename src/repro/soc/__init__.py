"""Synthetic Turbo-Eagle SOC: floorplan, blocks, clocks, generator.

This subpackage replaces the paper's proprietary industrial SOC with a
parameterised generator that reproduces its *structural* properties:
six blocks B1–B6 on a shared bus, six clock domains with clka dominant,
a central power-dense B5, placement for every instance, and synthesised
clock trees with realistic skew.
"""

from .floorplan import BlockRegion, Floorplan, make_turbo_eagle_floorplan
from .clocks import ClockBuffer, ClockDomainSpec, ClockTree, build_clock_tree
from .design import SocDesign
from .external import derive_stage_plan, design_from_netlist
from .generator import SocScale, build_turbo_eagle, scale_preset

__all__ = [
    "BlockRegion",
    "ClockBuffer",
    "ClockDomainSpec",
    "ClockTree",
    "Floorplan",
    "SocDesign",
    "SocScale",
    "build_clock_tree",
    "build_turbo_eagle",
    "derive_stage_plan",
    "design_from_netlist",
    "make_turbo_eagle_floorplan",
    "scale_preset",
]
