"""Clock domains and synthesised clock trees.

Each clock domain gets a recursive spatial clock tree: buffers placed at
the centroid of progressively smaller flop clusters.  The per-flop
*insertion delay* is the sum of loaded buffer delays from the root to the
flop's leaf buffer plus a local wire term, so nearby flops share most of
their path (low local skew) while distant flops diverge (global skew) —
exactly the structure the paper's Figure 7 "Region 2" effect relies on:
when IR-drop slows capture-path clock buffers relative to launch-path
buffers, measured endpoint delays can *decrease*.

Clock buffers are modelled outside the logic netlist (they drive no
logic nets) but carry placement and switched capacitance so power and
IR-drop analyses can charge the clock network's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..netlist.library import Library, default_library

#: Delay of the wire from leaf buffer to flop clock pin, per micrometre.
_LEAF_WIRE_DELAY_NS_PER_UM = 0.0006

#: Wire capacitance per micrometre of clock routing (fF/um).
_CLOCK_WIRE_CAP_PER_UM = 0.20


@dataclass(frozen=True)
class ClockDomainSpec:
    """Static description of one clock domain (the paper's Table 2 rows).

    ``freq_mhz`` is the at-speed (launch-to-capture) frequency;
    ``blocks`` lists the SOC blocks the domain's flops live in.
    """

    name: str
    freq_mhz: float
    blocks: Tuple[str, ...]

    @property
    def period_ns(self) -> float:
        if self.freq_mhz <= 0:
            raise ConfigError(f"domain {self.name!r} has no frequency")
        return 1000.0 / self.freq_mhz


@dataclass
class ClockBuffer:
    """One buffer instance in a clock tree."""

    name: str
    pos: Tuple[float, float]
    parent: Optional[int]
    cell: str = "CLKBUFX3"
    #: Capacitive load driven by this buffer (children pins + wire), fF.
    load_ff: float = 0.0


class ClockTree:
    """Spatial clock distribution tree for one domain."""

    def __init__(
        self,
        domain: str,
        buffers: List[ClockBuffer],
        leaf_of_flop: Dict[int, int],
        flop_positions: Dict[int, Tuple[float, float]],
        library: Optional[Library] = None,
    ):
        self.domain = domain
        self.buffers = buffers
        self.leaf_of_flop = leaf_of_flop
        self.flop_positions = flop_positions
        self.library = library if library is not None else default_library()
        self._path_cache: Dict[int, List[int]] = {}

    def path_to_root(self, buffer_idx: int) -> List[int]:
        """Buffer indexes from the root down to *buffer_idx* inclusive."""
        cached = self._path_cache.get(buffer_idx)
        if cached is not None:
            return cached
        path: List[int] = []
        cur: Optional[int] = buffer_idx
        while cur is not None:
            path.append(cur)
            cur = self.buffers[cur].parent
        path.reverse()
        self._path_cache[buffer_idx] = path
        return path

    def buffer_delay_ns(self, buffer_idx: int) -> float:
        """Nominal loaded delay of one buffer stage."""
        buf = self.buffers[buffer_idx]
        return self.library.cell(buf.cell).loaded_delay_ns(buf.load_ff)

    def insertion_delay_ns(
        self,
        flop_idx: int,
        delay_scale: Optional[Callable[[ClockBuffer, float], float]] = None,
    ) -> float:
        """Clock arrival time at a flop, relative to the tree root.

        Parameters
        ----------
        flop_idx:
            Netlist flop index (must belong to this domain's tree).
        delay_scale:
            Optional ``f(buffer, nominal_delay) -> scaled_delay`` hook;
            the IR-drop-aware re-simulation uses it to slow buffers in
            droopy regions (paper Section 3.2).
        """
        leaf = self.leaf_of_flop.get(flop_idx)
        if leaf is None:
            raise ConfigError(
                f"flop {flop_idx} is not clocked by domain {self.domain!r}"
            )
        total = 0.0
        for bi in self.path_to_root(leaf):
            nominal = self.buffer_delay_ns(bi)
            total += (
                delay_scale(self.buffers[bi], nominal)
                if delay_scale is not None
                else nominal
            )
        fx, fy = self.flop_positions[flop_idx]
        lx, ly = self.buffers[leaf].pos
        wire = (abs(fx - lx) + abs(fy - ly)) * _LEAF_WIRE_DELAY_NS_PER_UM
        return total + wire

    def skew_ns(self) -> float:
        """Worst-case insertion-delay difference across the domain."""
        delays = [self.insertion_delay_ns(f) for f in self.leaf_of_flop]
        if not delays:
            return 0.0
        return max(delays) - min(delays)

    def switched_cap_ff(self) -> float:
        """Total capacitance toggled by one clock edge through the tree."""
        lib = self.library
        total = 0.0
        for buf in self.buffers:
            total += lib.cell(buf.cell).output_cap_ff + buf.load_ff
        return total

    @property
    def n_buffers(self) -> int:
        return len(self.buffers)


def build_clock_tree(
    domain: str,
    flop_positions: Dict[int, Tuple[float, float]],
    root_pos: Tuple[float, float],
    leaf_size: int = 8,
    library: Optional[Library] = None,
) -> ClockTree:
    """Recursively cluster the domain's flops and buffer each cluster.

    The tree is a spatial bisection: each node splits its flop set along
    the wider axis of its bounding box until at most *leaf_size* flops
    remain, then a leaf buffer drives them.  Buffer loads are the pin and
    wire capacitance of their children, so delays (and thus skew) follow
    the physical structure.
    """
    if leaf_size < 1:
        raise ConfigError("leaf_size must be >= 1")
    lib = library if library is not None else default_library()
    buffers: List[ClockBuffer] = []
    leaf_of_flop: Dict[int, int] = {}

    flops = sorted(flop_positions)
    if not flops:
        root = ClockBuffer(f"ctree_{domain}_root", root_pos, None)
        return ClockTree(domain, [root], {}, dict(flop_positions), lib)

    buf_spec = lib.cell("CLKBUFX3")
    flop_clk_pin_ff = 3.0  # clock pin capacitance of a flop

    def centroid(group: Sequence[int]) -> Tuple[float, float]:
        xs = [flop_positions[f][0] for f in group]
        ys = [flop_positions[f][1] for f in group]
        return (float(np.mean(xs)), float(np.mean(ys)))

    def split(group: List[int]) -> Tuple[List[int], List[int]]:
        xs = [flop_positions[f][0] for f in group]
        ys = [flop_positions[f][1] for f in group]
        if (max(xs) - min(xs)) >= (max(ys) - min(ys)):
            group = sorted(group, key=lambda f: flop_positions[f][0])
        else:
            group = sorted(group, key=lambda f: flop_positions[f][1])
        mid = len(group) // 2
        return group[:mid], group[mid:]

    def build(group: List[int], parent: Optional[int], depth: int) -> int:
        pos = centroid(group) if parent is not None else root_pos
        idx = len(buffers)
        buffers.append(
            ClockBuffer(f"ctree_{domain}_b{idx}", pos, parent)
        )
        if len(group) <= leaf_size:
            wire = 0.0
            for f in group:
                leaf_of_flop[f] = idx
                fx, fy = flop_positions[f]
                wire += (abs(fx - pos[0]) + abs(fy - pos[1]))
            buffers[idx].load_ff = (
                len(group) * flop_clk_pin_ff
                + wire * _CLOCK_WIRE_CAP_PER_UM
            )
        else:
            left, right = split(group)
            li = build(left, idx, depth + 1)
            ri = build(right, idx, depth + 1)
            wire = 0.0
            for child in (li, ri):
                cx, cy = buffers[child].pos
                wire += abs(cx - pos[0]) + abs(cy - pos[1])
            buffers[idx].load_ff = (
                2 * buf_spec.input_cap_ff + wire * _CLOCK_WIRE_CAP_PER_UM
            )
        return idx

    build(list(flops), None, 0)
    return ClockTree(domain, buffers, leaf_of_flop, dict(flop_positions), lib)


def turbo_eagle_domains() -> Dict[str, ClockDomainSpec]:
    """The six clock domains of the case study (paper Table 2).

    clka is the dominant domain: it spans every block and owns roughly
    three quarters of the scan flops; its at-speed period is the 20 ns
    the paper uses for all pattern power measurements.
    """
    specs = [
        ClockDomainSpec("clka", 50.0, ("B1", "B2", "B3", "B4", "B5", "B6")),
        ClockDomainSpec("clkb", 100.0, ("B1",)),
        ClockDomainSpec("clkc", 48.0, ("B3",)),
        ClockDomainSpec("clkd", 24.0, ("B6",)),
        ClockDomainSpec("clke", 12.0, ("B6",)),
        ClockDomainSpec("clkf", 33.0, ("B2",)),
    ]
    return {s.name: s for s in specs}
