"""Chip floorplan: block regions and instance placement.

Reproduces the topology of the paper's Figure 1: six blocks B1–B6.
B5 is the large central block — the farthest from the periphery supply
pads and the most power-dense, which is why it shows the worst IR-drop
in Tables 3/4 and Figures 2/3.  The remaining blocks hug the periphery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError

#: Canonical block names of the Turbo-Eagle case study.
BLOCK_NAMES = ("B1", "B2", "B3", "B4", "B5", "B6")


@dataclass(frozen=True)
class BlockRegion:
    """An axis-aligned rectangular block region, in micrometres."""

    name: str
    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ConfigError(f"degenerate region for block {self.name!r}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def contains(self, x: float, y: float) -> bool:
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1

    def random_point(self, rng: np.random.Generator) -> Tuple[float, float]:
        """A uniform random placement location inside the region."""
        return (
            float(rng.uniform(self.x0, self.x1)),
            float(rng.uniform(self.y0, self.y1)),
        )


class Floorplan:
    """Chip outline plus named block regions."""

    def __init__(self, width: float, height: float,
                 regions: Dict[str, BlockRegion],
                 tam_width: Optional[int] = None):
        if width <= 0 or height <= 0:
            raise ConfigError("chip dimensions must be positive")
        if tam_width is not None and tam_width < 1:
            raise ConfigError("TAM width must be >= 1")
        self.width = width
        self.height = height
        #: Test Access Mechanism trunk width in lines; the scheduling
        #: plane's height.  The SOC generator records the scan chain
        #: count here (one line per chain).
        self.tam_width = tam_width
        self.regions = dict(regions)
        for region in self.regions.values():
            if not (0 <= region.x0 and region.x1 <= width
                    and 0 <= region.y0 and region.y1 <= height):
                raise ConfigError(
                    f"block {region.name!r} extends outside the chip"
                )

    def __iter__(self) -> Iterator[BlockRegion]:
        return iter(self.regions.values())

    def region(self, block: str) -> BlockRegion:
        try:
            return self.regions[block]
        except KeyError:
            raise ConfigError(f"no block named {block!r}") from None

    def block_at(self, x: float, y: float) -> Optional[str]:
        """Name of the block containing point (x, y), if any."""
        for region in self.regions.values():
            if region.contains(x, y):
                return region.name
        return None

    @property
    def center(self) -> Tuple[float, float]:
        return (self.width / 2.0, self.height / 2.0)

    def distance_to_periphery(self, x: float, y: float) -> float:
        """Shortest distance from a point to the chip edge (pad ring)."""
        return min(x, y, self.width - x, self.height - y)

    def adjacent_blocks(self, block: str, tol: float = 1e-6) -> List[str]:
        """Blocks sharing a boundary segment (not just a corner) with
        *block* — the neighbours its power-grid droop couples into."""
        a = self.region(block)
        return sorted(
            name
            for name, b in self.regions.items()
            if name != block and _regions_abut(a, b, tol)
        )

    def adjacency(self) -> Dict[str, List[str]]:
        """Block-name -> sorted adjacent block names, for every block."""
        return {name: self.adjacent_blocks(name) for name in self.regions}

    def render_ascii(self, cols: int = 48, rows: int = 18) -> str:
        """ASCII rendering of the floorplan (the Figure 1 substitute)."""
        canvas = [[" "] * cols for _ in range(rows)]
        for r in range(rows):
            for c in range(cols):
                x = (c + 0.5) / cols * self.width
                y = (1.0 - (r + 0.5) / rows) * self.height
                block = self.block_at(x, y)
                canvas[r][c] = block[-1] if block else "."
        border = "+" + "-" * cols + "+"
        body = "\n".join("|" + "".join(row) + "|" for row in canvas)
        return f"{border}\n{body}\n{border}"


def _regions_abut(a: BlockRegion, b: BlockRegion, tol: float) -> bool:
    """True when two rectangles share a boundary segment of length > tol."""
    x_overlap = min(a.x1, b.x1) - max(a.x0, b.x0)
    y_overlap = min(a.y1, b.y1) - max(a.y0, b.y0)
    share_vertical = (
        x_overlap > tol
        and (abs(a.y1 - b.y0) <= tol or abs(b.y1 - a.y0) <= tol)
    )
    share_horizontal = (
        y_overlap > tol
        and (abs(a.x1 - b.x0) <= tol or abs(b.x1 - a.x0) <= tol)
    )
    return share_vertical or share_horizontal


def make_turbo_eagle_floorplan(chip_um: float = 1000.0) -> Floorplan:
    """Six-block floorplan shaped like the paper's Figure 1.

    B5 occupies the large central area; B1/B2 sit along the top edge,
    B3/B4 along the bottom, and B6 is a tall strip on the right.
    Region sizes track the flop-count proportions used by the SOC
    generator so that placement density stays roughly uniform.
    """
    w = h = chip_um
    regions = {
        # top edge
        "B1": BlockRegion("B1", 0.00 * w, 0.72 * h, 0.48 * w, 1.00 * h),
        "B2": BlockRegion("B2", 0.48 * w, 0.72 * h, 0.80 * w, 1.00 * h),
        # bottom edge
        "B3": BlockRegion("B3", 0.00 * w, 0.00 * h, 0.40 * w, 0.26 * h),
        "B4": BlockRegion("B4", 0.40 * w, 0.00 * h, 0.80 * w, 0.26 * h),
        # central power-dense block
        "B5": BlockRegion("B5", 0.10 * w, 0.26 * h, 0.80 * w, 0.72 * h),
        # right-hand strip
        "B6": BlockRegion("B6", 0.80 * w, 0.00 * h, 1.00 * w, 1.00 * h),
    }
    return Floorplan(w, h, regions)


def periphery_pad_positions(
    floorplan: Floorplan, n_pads: int
) -> List[Tuple[float, float]]:
    """Evenly spaced pad locations around the die edge.

    Used for both the VDD and the VSS pad rings (the paper places 37 of
    each uniformly around the periphery).
    """
    if n_pads < 1:
        raise ConfigError("need at least one pad")
    w, h = floorplan.width, floorplan.height
    perimeter = 2.0 * (w + h)
    positions: List[Tuple[float, float]] = []
    for i in range(n_pads):
        s = (i + 0.5) / n_pads * perimeter
        if s < w:
            positions.append((s, 0.0))
        elif s < w + h:
            positions.append((w, s - w))
        elif s < 2 * w + h:
            positions.append((2 * w + h - s, h))
        else:
            positions.append((0.0, perimeter - s))
    return positions
