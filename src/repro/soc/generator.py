"""`build_turbo_eagle` — the one-call synthetic SOC generator.

Reproduces the structural proportions of the paper's case-study chip at
a configurable scale:

* six blocks, B5 central/large/power-dense (≈40 % of the flops, higher
  gate density),
* six clock domains with clka spanning every block and owning ≈78 % of
  the scan flops,
* an AMBA-substitute registered bus fabric connecting the blocks,
* a small set of negative-edge clka flops (the paper has 22, placed on
  their own scan chain),
* 16 placement-ordered scan chains (inserted via :mod:`repro.dft`),
* synthesised clock trees per domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..netlist.library import DEFAULT_CELL_FOR_KIND
from ..netlist.netlist import Netlist
from .blocks import BlockPlan, BlockResult, generate_block
from .clocks import build_clock_tree, turbo_eagle_domains
from .design import SocDesign
from .floorplan import make_turbo_eagle_floorplan


@dataclass(frozen=True)
class SocScale:
    """Size knobs for one generation preset."""

    name: str
    total_flops: int
    depth: int
    gates_per_flop: float
    b5_gates_per_flop: float
    bus_bits: int
    n_neg_edge: int
    n_chains: int
    chip_um: float
    clock_leaf_size: int


_PRESETS: Dict[str, SocScale] = {
    # Unit-test scale: seconds end to end.
    "tiny": SocScale("tiny", 48, 5, 4.0, 5.0, 4, 2, 4, 300.0, 4),
    # Example scale: full flow in well under a minute.
    "small": SocScale("small", 220, 9, 5.0, 7.0, 8, 6, 8, 600.0, 6),
    # Benchmark scale: the default for EXPERIMENTS.md numbers.
    "bench": SocScale("bench", 620, 7, 6.0, 8.5, 12, 12, 16, 1000.0, 8),
    # Structure-faithful scale (paper-sized flop count; analysis runs
    # take hours in pure Python).  Depth/chip size keep the critical
    # path in the same ballpark as the 20 ns cycle despite the larger
    # wire loads.
    "full": SocScale("full", 23352, 6, 7.0, 9.0, 32, 22, 16, 2000.0, 12),
}

#: Flop-count share of each block (B5 dominates, as in the paper).
_BLOCK_FLOP_SHARES = {
    "B1": 0.15,
    "B2": 0.10,
    "B3": 0.10,
    "B4": 0.10,
    "B5": 0.40,
    "B6": 0.15,
}

#: Clock-domain mix inside each block; yields clka ≈ 78 % overall.
_BLOCK_DOMAIN_SHARES = {
    "B1": {"clka": 0.62, "clkb": 0.38},
    "B2": {"clka": 0.72, "clkf": 0.28},
    "B3": {"clka": 0.70, "clkc": 0.30},
    "B4": {"clka": 1.0},
    "B5": {"clka": 1.0},
    "B6": {"clka": 0.40, "clkd": 0.32, "clke": 0.28},
}

#: Number of constant primary inputs offered to each block.
_N_PRIMARY_INPUTS = 8


def scale_preset(name: str) -> SocScale:
    """Look up one of the generation presets (tiny/small/bench/full)."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scale {name!r}; choose from {sorted(_PRESETS)}"
        ) from None


def build_turbo_eagle(
    scale: str = "small",
    seed: int = 2007,
    insert_scan: bool = True,
) -> SocDesign:
    """Generate the full synthetic SOC at the requested scale.

    Parameters
    ----------
    scale:
        One of ``"tiny"``, ``"small"``, ``"bench"``, ``"full"``.
    seed:
        RNG seed; the same (scale, seed) pair reproduces the same design
        bit for bit.
    insert_scan:
        When True (default), 16 placement-ordered scan chains are built
        and negative-edge flops get their own chain, as in the paper.
    """
    cfg = scale_preset(scale)
    rng = np.random.default_rng(seed)
    floorplan = make_turbo_eagle_floorplan(cfg.chip_um)
    netlist = Netlist(f"turbo_eagle_{scale}", )
    domains = turbo_eagle_domains()

    # --- primary inputs (held constant during at-speed test) ----------
    pi_nets: List[int] = []
    for i in range(_N_PRIMARY_INPUTS):
        net = netlist.add_net(f"pi{i}")
        netlist.add_primary_input(net)
        pi_nets.append(net)

    # --- bus register outputs, readable by every block -----------------
    bus_q: List[int] = [
        netlist.add_net(f"bus_q{i}") for i in range(cfg.bus_bits)
    ]

    # --- blocks ---------------------------------------------------------
    results: Dict[str, BlockResult] = {}
    for block in sorted(_BLOCK_FLOP_SHARES):
        n_flops = max(4, int(round(cfg.total_flops * _BLOCK_FLOP_SHARES[block])))
        gpf = cfg.b5_gates_per_flop if block == "B5" else cfg.gates_per_flop
        plan = BlockPlan(
            name=block,
            n_flops=n_flops,
            gates_per_flop=gpf,
            depth=cfg.depth,
            domain_shares=_BLOCK_DOMAIN_SHARES[block],
        )
        taps = _block_taps(bus_q, pi_nets, rng)
        results[block] = generate_block(
            netlist,
            floorplan.region(block),
            plan,
            rng,
            bus_inputs=taps,
            n_outputs=max(2, cfg.bus_bits // 3),
        )

    # --- bus fabric: mux trees into bus registers ----------------------
    _build_bus_fabric(netlist, floorplan, results, bus_q, rng)

    # --- primary outputs (unmeasured during at-speed test) -------------
    for i, net in enumerate(bus_q[: max(2, cfg.bus_bits // 2)]):
        netlist.add_primary_output(net)

    # --- negative-edge flops (paper: 22, on a dedicated chain) ---------
    _make_negative_edge_flops(netlist, results["B1"], cfg.n_neg_edge)

    # --- clock trees ----------------------------------------------------
    clock_trees = {}
    for name in domains:
        flop_pos = {
            fi: netlist.flops[fi].pos
            for fi in range(netlist.n_flops)
            if netlist.flops[fi].clock_domain == name
            and netlist.flops[fi].pos is not None
        }
        clock_trees[name] = build_clock_tree(
            name,
            flop_pos,
            root_pos=(floorplan.width / 2.0, floorplan.height),
            leaf_size=cfg.clock_leaf_size,
        )

    design = SocDesign(
        name=netlist.name,
        netlist=netlist,
        floorplan=floorplan,
        domains=domains,
        clock_trees=clock_trees,
        scale_name=scale,
        seed=seed,
    )

    if insert_scan:
        from ..dft.scan import insert_scan_chains

        design.scan = insert_scan_chains(design, n_chains=cfg.n_chains)
        # TAM trunk metadata: one TAM line per scan chain — the widest
        # wrapper configuration the scan structure supports, and the
        # height of the scheduler's packing plane.
        floorplan.tam_width = design.scan.n_chains

    netlist.freeze()
    return design


def _block_taps(
    bus_q: Sequence[int], pi_nets: Sequence[int], rng: np.random.Generator
) -> List[int]:
    """Each block reads a random majority of the bus plus a couple of PIs."""
    k_bus = max(1, int(len(bus_q) * 0.6))
    k_pi = min(2, len(pi_nets))
    bus_pick = rng.choice(len(bus_q), size=k_bus, replace=False)
    pi_pick = rng.choice(len(pi_nets), size=k_pi, replace=False)
    return [bus_q[int(i)] for i in bus_pick] + [
        pi_nets[int(i)] for i in pi_pick
    ]


def _build_bus_fabric(
    netlist: Netlist,
    floorplan,
    results: Dict[str, BlockResult],
    bus_q: Sequence[int],
    rng: np.random.Generator,
) -> None:
    """MUX trees combine one candidate net per block into each bus bit,
    which lands in a clka bus register (whose Q net pre-exists)."""
    cx, cy = floorplan.center
    # Select lines come from dedicated control flops.
    n_sel = 3
    sel_nets: List[int] = []
    for s in range(n_sel):
        q = netlist.add_net(f"bus_sel_q{s}")
        d = netlist.add_net(f"bus_sel_d{s}")
        netlist.add_gate(
            f"bus_sel_buf{s}",
            DEFAULT_CELL_FOR_KIND["BUF"],
            [q],
            d,
            block=None,  # top-level glue, not block logic
            pos=(cx, cy),
        )
        netlist.add_flop(
            f"bus_sel_f{s}",
            "SDFFX1",
            d=d,
            q=q,
            clock_domain="clka",
            is_scan=True,
            block=None,
            pos=(cx + 5.0 * s, cy),
        )
        sel_nets.append(q)

    for bit, q_net in enumerate(bus_q):
        sources = []
        for block in sorted(results):
            outs = results[block].output_nets
            if outs:
                sources.append(outs[bit % len(outs)])
        # Reduce sources with a MUX chain steered by the select flops.
        current = sources[0]
        for j, nxt in enumerate(sources[1:]):
            out = netlist.add_net(f"bus_mux{bit}_{j}")
            sel = sel_nets[j % len(sel_nets)]
            netlist.add_gate(
                f"bus_mux{bit}_{j}_g",
                DEFAULT_CELL_FOR_KIND["MUX2"],
                [current, nxt, sel],
                out,
                block=None,
                pos=(cx + 2.0 * bit, cy + 2.0 * j),
            )
            current = out
        netlist.add_flop(
            f"bus_reg{bit}",
            "SDFFX1",
            d=current,
            q=q_net,
            clock_domain="clka",
            is_scan=True,
            block=None,
            pos=(cx + 2.0 * bit, cy - 4.0),
        )


def _make_negative_edge_flops(
    netlist: Netlist, b1: BlockResult, n_neg: int
) -> None:
    """Convert the first *n_neg* clka flops of B1 to negative edge."""
    converted = 0
    for fi in b1.flop_indices:
        if converted >= n_neg:
            break
        flop = netlist.flops[fi]
        if flop.clock_domain != "clka":
            continue
        flop.edge = "neg"
        flop.cell = "SDFFNX1"
        converted += 1
    if converted < n_neg:
        raise ConfigError(
            f"could not place {n_neg} negative-edge flops in B1 "
            f"(only {converted} clka flops available)"
        )
