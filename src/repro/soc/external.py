"""Reconstruct a :class:`SocDesign` from a bare structural netlist.

The job service accepts *external designs*: a submitted
:class:`~repro.service.jobstore.JobSpec` may inline a structural
Verilog netlist (the subset :mod:`repro.netlist.verilog` round-trips).
The staged noise-tolerant flow, however, runs on a full
:class:`~repro.soc.design.SocDesign` — netlist *plus* floorplan, clock
domains, clock trees and scan configuration.  This module rebuilds
those aggregates from the metadata the Verilog subset preserves:

* **blocks + floorplan** — every placed instance carries a
  ``// pragma block=<name> pos=<x>,<y>`` comment; each block's region
  is the padded bounding box of its instances;
* **clock domains** — flop clock nets are named ``clk_<domain>``; a
  domain's block span is the set of blocks owning its flops;
* **clock trees** — re-synthesised over the flop placements with the
  same H-tree builder (and root convention) the SOC generator uses;
* **scan** — :func:`repro.dft.scan.scan_config_from_flops` inverts the
  ``chain=<c>:<p>`` pragmas back into a
  :class:`~repro.dft.scan.ScanConfig`.

Everything here is **deterministic in the netlist text**: submitter,
server and every worker that re-parses the same upload reconstruct the
same design, the same derived stage plan, and therefore bit-identical
patterns — the invariant the whole service rests on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import NetlistError
from ..netlist.netlist import Netlist
from .clocks import ClockDomainSpec, ClockTree, build_clock_tree
from .design import SocDesign
from .floorplan import BlockRegion, Floorplan

#: Frequency assigned to reconstructed clock domains.  The Verilog
#: subset does not carry frequencies, so every domain gets the paper's
#: dominant-domain (clka) at-speed rate; the flow's power accounting
#: only needs the *relative* activity staging, which the derived stage
#: plan provides.
DEFAULT_FREQ_MHZ = 50.0

#: Margin added around each block's instance bounding box (um), so a
#: single-column (or single-instance) block still yields a legal,
#: non-degenerate :class:`BlockRegion`.
_REGION_PAD_UM = 5.0


def design_from_netlist(
    netlist: Netlist,
    name: Optional[str] = None,
    freq_mhz: float = DEFAULT_FREQ_MHZ,
) -> SocDesign:
    """Rebuild the full design aggregate around a parsed netlist.

    Raises :class:`~repro.errors.NetlistError` when the netlist lacks
    the metadata the flow needs — no flops, or flops without
    ``block``/``pos`` placement pragmas.  The message says exactly
    what is missing; the HTTP front-end surfaces it as a structured
    422 so a malformed upload fails at submit time, not on a worker.
    """
    if netlist.n_flops == 0:
        raise NetlistError(
            f"netlist {netlist.name!r} has no flops; the staged TDF "
            f"flow needs sequential state to target"
        )
    block_points: Dict[str, List[Tuple[float, float]]] = {}
    for gate in netlist.gates:
        if gate.block is not None and gate.pos is not None:
            block_points.setdefault(gate.block, []).append(gate.pos)
    placed_flops = 0
    for flop in netlist.flops:
        if flop.block is not None and flop.pos is not None:
            block_points.setdefault(flop.block, []).append(flop.pos)
            placed_flops += 1
    if not block_points or placed_flops == 0:
        raise NetlistError(
            f"netlist {netlist.name!r} carries no `// pragma "
            f"block=... pos=x,y` placement metadata on its flops; the "
            f"flow cannot reconstruct a floorplan or stage plan "
            f"without it (unplaced instances — bus or pad logic — are "
            f"fine, but at least the block-owned flops must be placed)"
        )

    regions: Dict[str, BlockRegion] = {}
    max_x = max_y = 0.0
    for block in sorted(block_points):
        xs = [p[0] for p in block_points[block]]
        ys = [p[1] for p in block_points[block]]
        x0 = max(0.0, min(xs) - _REGION_PAD_UM)
        y0 = max(0.0, min(ys) - _REGION_PAD_UM)
        x1 = max(xs) + _REGION_PAD_UM
        y1 = max(ys) + _REGION_PAD_UM
        regions[block] = BlockRegion(block, x0, y0, x1, y1)
        max_x = max(max_x, x1)
        max_y = max(max_y, y1)

    floorplan = Floorplan(
        width=max_x + _REGION_PAD_UM,
        height=max_y + _REGION_PAD_UM,
        regions=regions,
    )

    domain_blocks: Dict[str, List[str]] = {}
    for flop in netlist.flops:
        blocks = domain_blocks.setdefault(flop.clock_domain, [])
        if flop.block is not None and flop.block not in blocks:
            blocks.append(flop.block)
    domains = {
        dom: ClockDomainSpec(dom, freq_mhz, tuple(sorted(blocks)))
        for dom, blocks in sorted(domain_blocks.items())
    }

    clock_trees: Dict[str, ClockTree] = {}
    for dom in sorted(domains):
        flop_pos = {
            fi: netlist.flops[fi].pos
            for fi in range(netlist.n_flops)
            if netlist.flops[fi].clock_domain == dom
            and netlist.flops[fi].pos is not None
        }
        clock_trees[dom] = build_clock_tree(
            dom,
            flop_pos,
            root_pos=(floorplan.width / 2.0, floorplan.height),
        )

    from ..dft.scan import scan_config_from_flops

    scan = scan_config_from_flops(netlist)
    netlist.freeze()
    design = SocDesign(
        name=name if name is not None else netlist.name,
        netlist=netlist,
        floorplan=floorplan,
        domains=domains,
        clock_trees=clock_trees,
        scale_name="external",
        seed=0,
        scan=scan,
    )
    if scan is not None:
        floorplan.tam_width = scan.n_chains
    return design


def derive_stage_plan(design: SocDesign) -> Tuple[Tuple[str, ...], ...]:
    """The paper's staging discipline, derived from the design itself.

    The case study orders stages quiet-first: the four low-activity
    blocks together, then B6, then the power-dense B5 alone — so each
    stage's fill-0 patterns see the worst-case supply noise its own
    block can produce, not its neighbours'.  For an external design the
    same shape is derived with instance count (gates + flops) as the
    activity proxy: all but the two busiest blocks first, then the
    second-busiest, then the busiest alone.  Deterministic in the
    design, so every worker derives the identical plan.
    """
    blocks = design.blocks()
    weight = {
        b: len(design.gates_in_block(b)) + len(design.flops_in_block(b))
        for b in blocks
    }
    ordered = sorted(blocks, key=lambda b: (weight[b], b))
    if len(ordered) <= 2:
        return tuple((b,) for b in ordered)
    return (
        tuple(sorted(ordered[:-2])),
        (ordered[-2],),
        (ordered[-1],),
    )
