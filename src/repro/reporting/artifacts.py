"""One-call export of every case-study artefact to plain files.

``export_case_study`` writes the data behind each paper table and
figure as CSV/TXT into a directory, so results can be plotted or
diffed outside Python.  Used by the ``python -m repro export`` CLI.
"""

from __future__ import annotations

import os
from typing import Dict, List

from ..pgrid.maps import ir_map_csv, render_ir_map
from .series import curve_to_csv, series_to_csv
from .tables import format_table


def export_case_study(study, out_dir: str) -> List[str]:
    """Write all tables/figures of a CaseStudy; returns written paths.

    Heavy steps (flows, validations) run on first access via the study's
    caches, so calling this on a fresh study executes the whole paper.
    """
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []

    def write(name: str, content: str) -> None:
        path = os.path.join(out_dir, name)
        with open(path, "w") as fh:
            fh.write(content)
        written.append(path)

    # Tables ------------------------------------------------------------
    write("table1_design.txt", format_table(
        [{"metric": k, "value": v} for k, v in study.table1().items()],
        title="Table 1: design characteristics",
    ) + "\n")
    write("table2_domains.txt",
          format_table(study.table2(), title="Table 2") + "\n")

    t3 = study.table3()
    for label, rows in t3.items():
        write(f"table3_{label}.csv", _stat_rows_csv(rows))
    t4 = study.table4()
    write("table4_cap_vs_scap.txt", format_table(
        [{"model": k, **v} for k, v in t4.items()], title="Table 4",
    ) + "\n")

    # Figures -----------------------------------------------------------
    write("fig1_floorplan.txt", study.figure1() + "\n")

    f2 = study.figure2()
    write("fig2_scap_conventional_b5.csv",
          series_to_csv(f2["scap_mw_b5"], header="pattern,scap_mw"))
    f6 = study.figure6()
    write("fig6_scap_staged_b5.csv",
          series_to_csv(f6["scap_mw_b5"], header="pattern,scap_mw"))
    write("fig6_meta.txt",
          f"threshold_mw={f6['threshold_mw']}\n"
          f"step_boundaries={f6['step_boundaries']}\n")

    f3 = study.figure3()
    for label, data in f3.items():
        write(f"fig3_{label}_vdd_map.csv",
              ir_map_csv(study.model.vdd_grid, data["ir"].drop_vdd))
        write(f"fig3_{label}_vdd_map.txt",
              render_ir_map(study.model.vdd_grid, data["ir"].drop_vdd)
              + "\n")

    f4 = study.figure4()
    for name, curve in f4.items():
        write(f"fig4_coverage_{name}.csv", curve_to_csv(curve))

    comp = study.figure7()
    lines = ["flop,nominal_ns,ir_scaled_ns"]
    for fi, nominal in sorted(comp.nominal_ns.items()):
        lines.append(
            f"{fi},{nominal:.6g},{comp.scaled_ns.get(fi, 0.0):.6g}"
        )
    write("fig7_endpoint_delays.csv", "\n".join(lines) + "\n")

    # Headline ------------------------------------------------------------
    hc = study.headline_comparison()
    write("headline.txt", format_table(
        [{"metric": k, "value": v} for k, v in hc.items()],
        title="Headline comparison",
    ) + "\n")
    return written


def _stat_rows_csv(rows) -> str:
    lines = ["block,window_ns,avg_power_mw,worst_vdd_v,worst_vss_v"]
    for r in rows:
        lines.append(
            f"{r.block},{r.window_ns},{r.avg_power_mw:.6g},"
            f"{r.worst_drop_vdd_v:.6g},{r.worst_drop_vss_v:.6g}"
        )
    return "\n".join(lines) + "\n"
