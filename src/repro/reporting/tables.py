"""ASCII table rendering for benchmark/report output."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render dict rows as an aligned ASCII table.

    Column order follows *columns* when given, else the first row's key
    order.  Floats use *float_fmt*; everything else is ``str()``.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    table = [[fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(cols[i]), max(len(r[i]) for r in table))
        for i in range(len(cols))
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(cols))
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append(sep)
    for r in table:
        lines.append(" | ".join(r[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)
