"""CSV export of figure series (for plotting outside the library)."""

from __future__ import annotations

import io
from typing import Iterable, Sequence, Tuple


def series_to_csv(
    values: Iterable[float],
    header: str = "index,value",
) -> str:
    """One-series CSV: (index, value) per line."""
    buf = io.StringIO()
    buf.write(header + "\n")
    for i, v in enumerate(values):
        buf.write(f"{i},{v:.6g}\n")
    return buf.getvalue()


def curve_to_csv(
    curve: Sequence[Tuple[int, float]],
    header: str = "pattern,coverage",
) -> str:
    """(x, y) tuple-series CSV (coverage curves)."""
    buf = io.StringIO()
    buf.write(header + "\n")
    for x, y in curve:
        buf.write(f"{x},{y:.6g}\n")
    return buf.getvalue()
