"""Stage-level checkpoint store for long flows.

The staged noise-aware flow, the case-study driver and SCAP validation
are hours-long pipelines at production scales; a crash deep in stage N
used to throw away stages 1..N-1.  :class:`CheckpointStore` gives those
flows durable per-stage artefacts:

* each completed stage saves its payload (pattern sets, SCAP profiles,
  detection words — anything picklable) under a stage key;
* on restart the flow asks ``has(key)`` / ``load(key)`` and skips the
  work it already did;
* a JSON ``manifest.json`` records, per stage, the payload file, a
  monotonically increasing sequence number, and caller metadata — the
  human-auditable index of what survived.

Safety: the store is bound to a *fingerprint* (a digest of everything
that determines the run's results — design scale/seed, ATPG seed,
stage plan, …).  Opening a directory whose manifest carries a
different fingerprint resets the store instead of resuming from stale
state, so a checkpoint can never leak results across configurations.

Writes are atomic (temp file + ``os.replace``) so a crash mid-save
leaves the previous manifest intact.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import warnings
from typing import Any, Dict, List, Optional

from ..errors import CheckpointError

_MANIFEST = "manifest.json"
_FORMAT_VERSION = 1


def config_fingerprint(**config: Any) -> str:
    """Stable digest of a run configuration.

    Values are rendered with ``repr`` — pass primitives (str, int,
    float, tuples thereof), not live objects.
    """
    blob = repr(sorted((k, repr(v)) for k, v in config.items()))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _safe_name(key: str) -> str:
    """Filesystem-safe payload filename for a stage key."""
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", key)[:80]
    digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:10]
    return f"{slug}.{digest}.pkl"


class CheckpointStore:
    """Durable per-stage payloads under one directory.

    Parameters
    ----------
    directory:
        Created if missing.  One store per run configuration.
    fingerprint:
        Digest of the run configuration (see
        :func:`config_fingerprint`).  ``None`` skips the staleness
        guard (only sensible for ad-hoc experiments).
    """

    def __init__(self, directory: str, fingerprint: Optional[str] = None):
        self.directory = directory
        self.fingerprint = fingerprint
        os.makedirs(directory, exist_ok=True)
        self._manifest_path = os.path.join(directory, _MANIFEST)
        self._manifest = self._load_manifest()
        #: Stage loads served from disk (observability for tests/flows).
        self.loads = 0
        #: Stage payloads written this session.
        self.saves = 0

    # ------------------------------------------------------------------
    def _load_manifest(self) -> Dict[str, Any]:
        fresh = {
            "version": _FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "seq": 0,
            "stages": {},
        }
        if not os.path.exists(self._manifest_path):
            return fresh
        try:
            with open(self._manifest_path) as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest {self._manifest_path!r}: "
                f"{exc}"
            ) from exc
        if manifest.get("version") != _FORMAT_VERSION:
            warnings.warn(
                "checkpoint format version changed; starting fresh",
                RuntimeWarning,
                stacklevel=3,
            )
            return fresh
        if (
            self.fingerprint is not None
            and manifest.get("fingerprint") != self.fingerprint
        ):
            warnings.warn(
                f"checkpoint dir {self.directory!r} belongs to a different "
                "run configuration; ignoring its stages",
                RuntimeWarning,
                stacklevel=3,
            )
            return fresh
        return manifest

    def _write_manifest(self) -> None:
        tmp = self._manifest_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self._manifest, fh, indent=1, sort_keys=True)
        os.replace(tmp, self._manifest_path)

    # ------------------------------------------------------------------
    def has(self, key: str) -> bool:
        entry = self._manifest["stages"].get(key)
        return entry is not None and os.path.exists(
            os.path.join(self.directory, entry["file"])
        )

    def keys(self) -> List[str]:
        """Completed stage keys, in completion order."""
        stages = self._manifest["stages"]
        return sorted(stages, key=lambda k: stages[k]["seq"])

    def meta(self, key: str) -> Dict[str, Any]:
        entry = self._manifest["stages"].get(key)
        if entry is None:
            raise CheckpointError(f"no checkpoint for stage {key!r}")
        return dict(entry.get("meta") or {})

    def load(self, key: str) -> Any:
        """Load one stage; a missing *or unreadable* stage raises.

        Prefer :meth:`try_load` in flows: a truncated payload there is
        "stage absent — recompute", not a hard failure.
        """
        entry = self._manifest["stages"].get(key)
        if entry is None:
            raise CheckpointError(f"no checkpoint for stage {key!r}")
        path = os.path.join(self.directory, entry["file"])
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError) as exc:
            raise CheckpointError(
                f"corrupt checkpoint payload for stage {key!r} "
                f"({path!r}): {exc}"
            ) from exc
        self.loads += 1
        return payload

    def try_load(self, key: str) -> Any:
        """Load one stage, or ``None`` when it must be recomputed.

        A stage that was never saved returns ``None`` silently.  A
        stage whose payload is truncated or otherwise corrupt (a crash
        mid-write on a filesystem without atomic rename, manual
        tampering, a partial copy) is *treated as absent*: a warning is
        logged, the stale manifest entry is discarded so later runs do
        not trip over it again, and ``None`` is returned so the caller
        recomputes the stage instead of dying on resume.

        ``None`` is therefore reserved: stage payloads themselves must
        not be ``None`` (the flows never save one).
        """
        if not self.has(key):
            return None
        try:
            return self.load(key)
        except CheckpointError as exc:
            warnings.warn(
                f"checkpoint stage {key!r} is unreadable and will be "
                f"recomputed: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            self.discard(key)
            return None

    def save(
        self, key: str, payload: Any, meta: Optional[Dict[str, Any]] = None
    ) -> None:
        """Persist one stage atomically (payload first, then manifest)."""
        fname = _safe_name(key)
        path = os.path.join(self.directory, fname)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self._manifest["seq"] += 1
        self._manifest["stages"][key] = {
            "file": fname,
            "seq": self._manifest["seq"],
            "meta": meta or {},
        }
        self._write_manifest()
        self.saves += 1

    def discard(self, key: str) -> None:
        """Forget one stage (payload file removed best-effort)."""
        entry = self._manifest["stages"].pop(key, None)
        if entry is not None:
            try:
                os.remove(os.path.join(self.directory, entry["file"]))
            except OSError:
                pass
            self._write_manifest()

    def clear(self) -> None:
        """Forget every stage."""
        for key in list(self._manifest["stages"]):
            self.discard(key)
