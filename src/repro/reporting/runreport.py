"""Structured outcome of a (possibly interrupted) multi-stage run.

A long flow used to answer "what happened?" with either a full result
or a bare traceback.  :class:`RunReport` is the third answer: a
machine-readable record of which stages completed (and whether they
came from checkpoints), the per-chunk failure log and retry counts of
the execution layer, and the error that stopped a partial run — enough
to decide whether to resume, where to resume from, and what to page an
operator about.  ``python -m repro flow --report out.json`` writes one,
and CI uploads it as a build artifact for deliberately-interrupted
example flows.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Terminal statuses a run can end in.
RUN_COMPLETED = "completed"
RUN_PARTIAL = "partial"
RUN_FAILED = "failed"


@dataclass
class StageRecord:
    """One stage of the flow, as actually executed."""

    name: str
    status: str  # "completed" | "failed" | "pending"
    #: True when the stage's result was loaded from a checkpoint
    #: instead of recomputed.
    from_checkpoint: bool = False
    #: Free-form stage facts (pattern counts, boundaries, exec stats).
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class RunReport:
    """What a flow run achieved, survived, and (maybe) died of."""

    flow: str
    status: str = RUN_COMPLETED
    stages: List[StageRecord] = field(default_factory=list)
    #: Per-chunk failure log aggregated from the execution layer
    #: (dicts shaped like :class:`repro.perf.resilient.ChunkFailure`).
    failures: List[Dict[str, Any]] = field(default_factory=list)
    #: Retries consumed per stage name.
    retries: Dict[str, int] = field(default_factory=dict)
    checkpoint_dir: Optional[str] = None
    #: Repr of the exception that ended a partial/failed run.
    error: Optional[str] = None
    #: Summary of the pre-flow static DRC gate (see
    #: :meth:`repro.drc.DrcReport.summary`); None when the gate was
    #: skipped.
    drc: Optional[Dict[str, Any]] = None
    #: Telemetry digest (run id, metric snapshot, trace-event count,
    #: profiler hotspots) from :meth:`repro.obs.Telemetry.snapshot`;
    #: None when the run used the null telemetry.
    telemetry: Optional[Dict[str, Any]] = None
    #: SOC test-schedule digest (see
    #: :meth:`repro.core.scheduling.TestSchedule.summary`) when the run
    #: included a scheduling stage; an ``{"error": ...}`` dict when the
    #: stage failed; None when no scheduling was requested.
    schedule: Optional[Dict[str, Any]] = None
    #: Noise-aware timing pre-screen digest (see
    #: :meth:`repro.timing.TimingPrescreenSummary.to_dict`) — safe /
    #: at-risk / pruned endpoint counts and the empirical soundness
    #: check; an ``{"error": ...}`` dict when the stage failed; None
    #: when no pre-screen was requested.
    timing: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def completed_stages(self) -> List[str]:
        return [s.name for s in self.stages if s.status == "completed"]

    def resumed_stages(self) -> List[str]:
        return [
            s.name
            for s in self.stages
            if s.status == "completed" and s.from_checkpoint
        ]

    def pending_stages(self) -> List[str]:
        return [s.name for s in self.stages if s.status == "pending"]

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    # ------------------------------------------------------------------
    def record_stage(
        self,
        name: str,
        status: str,
        *,
        from_checkpoint: bool = False,
        detail: Optional[Dict[str, Any]] = None,
    ) -> StageRecord:
        record = StageRecord(
            name=name,
            status=status,
            from_checkpoint=from_checkpoint,
            detail=detail or {},
        )
        self.stages.append(record)
        return record

    def absorb_execution_report(self, stage: str, exec_report) -> None:
        """Fold one :class:`~repro.perf.resilient.ExecutionReport` in."""
        if exec_report is None:
            return
        retries = exec_report.total_retries
        if retries:
            self.retries[stage] = self.retries.get(stage, 0) + retries
        for failure in exec_report.failures:
            entry = failure.to_dict()
            entry["stage"] = stage
            self.failures.append(entry)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "flow": self.flow,
            "status": self.status,
            "stages": [s.to_dict() for s in self.stages],
            "completed_stages": self.completed_stages(),
            "resumed_stages": self.resumed_stages(),
            "pending_stages": self.pending_stages(),
            "failures": list(self.failures),
            "retries": dict(self.retries),
            "total_retries": self.total_retries,
            "checkpoint_dir": self.checkpoint_dir,
            "error": self.error,
            "drc": self.drc,
            "telemetry": self.telemetry,
            "schedule": self.schedule,
            "timing": self.timing,
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          default=str)

    def save(self, path: str) -> str:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")
        return path

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output.

        Derived keys (``completed_stages`` …) are recomputed, not
        trusted; unknown keys are ignored so newer writers stay
        loadable by older readers and vice versa.
        """
        report = cls(
            flow=str(data.get("flow", "unknown")),
            status=str(data.get("status", RUN_COMPLETED)),
            checkpoint_dir=data.get("checkpoint_dir"),
            error=data.get("error"),
            drc=data.get("drc"),
            telemetry=data.get("telemetry"),
            schedule=data.get("schedule"),
            timing=data.get("timing"),
        )
        for stage in data.get("stages", []):
            report.stages.append(
                StageRecord(
                    name=str(stage.get("name", "?")),
                    status=str(stage.get("status", "completed")),
                    from_checkpoint=bool(stage.get("from_checkpoint")),
                    detail=dict(stage.get("detail") or {}),
                )
            )
        report.failures = [dict(f) for f in data.get("failures", [])]
        report.retries = {
            str(k): int(v) for k, v in (data.get("retries") or {}).items()
        }
        return report

    @classmethod
    def load(cls, path: str) -> "RunReport":
        """Round-trip partner of :meth:`save`."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def stage_times(self) -> List[Dict[str, Any]]:
        """Per-stage wall-time rows for ``repro flow --report``.

        Stages recorded without an ``elapsed_s`` detail (pending
        stages, checkpoint loads from older writers) report 0.0.
        """
        return [
            {
                "stage": s.name,
                "status": s.status
                + (" (checkpoint)" if s.from_checkpoint else ""),
                "elapsed_s": round(
                    float(s.detail.get("elapsed_s", 0.0)), 3
                ),
                "patterns": s.detail.get("patterns", ""),
            }
            for s in self.stages
        ]
