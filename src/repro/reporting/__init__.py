"""Plain-text reporting helpers for tables and figure series."""

from .tables import format_table
from .series import series_to_csv, curve_to_csv
from .artifacts import export_case_study

__all__ = [
    "curve_to_csv",
    "export_case_study",
    "format_table",
    "series_to_csv",
]
