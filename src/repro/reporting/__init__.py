"""Reporting: plain-text tables/series, artefact export, and the
durable run state of long flows (stage checkpoints + run reports)."""

from .tables import format_table
from .series import series_to_csv, curve_to_csv
from .artifacts import export_case_study
from .checkpoint import CheckpointStore, config_fingerprint
from .runreport import (
    RUN_COMPLETED,
    RUN_FAILED,
    RUN_PARTIAL,
    RunReport,
    StageRecord,
)

__all__ = [
    "CheckpointStore",
    "RUN_COMPLETED",
    "RUN_FAILED",
    "RUN_PARTIAL",
    "RunReport",
    "StageRecord",
    "config_fingerprint",
    "curve_to_csv",
    "export_case_study",
    "format_table",
    "series_to_csv",
]
