"""Multi-tenant namespaces over per-tenant job stores.

The HTTP front-end is auth-less but *namespaced*: every URL names a
tenant (``/v1/{tenant}/jobs``), and each tenant owns one ordinary
:class:`~repro.service.jobstore.JobStore` directory under a shared
data root::

    <data_root>/
      tenants/
        default/        <- a plain JobStore root
          config.json
          jobs/ ...
        lab-a/ ...

Nothing about a tenant store is special — ``repro jobs
<data_root>/tenants/lab-a`` (or ``repro jobs <data_root> --tenant
lab-a``) inspects it, a plain worker can drain it, and every
durability/back-pressure property of the store holds per tenant.  In
particular **back-pressure is per tenant**: each store enforces its own
``max_queue_depth``, so one noisy tenant saturating its queue gets 429s
while the others keep submitting.

:class:`TenantFleet` is the execution half ``repro serve --http``
wires in: one :class:`~repro.service.supervisor.ServiceSupervisor` per
tenant store, ticked from a single background thread, so lazily
created tenants start draining without any extra operator action.
"""

from __future__ import annotations

import os
import re
import threading
from typing import Dict, List, Optional, Tuple

from ..errors import ServiceError
from ..obs import AnyTelemetry, use_telemetry
from .jobstore import JobStore, ServiceConfig
from .supervisor import ServiceSupervisor

#: Tenant names are path components and metric label values: short
#: lowercase slugs, no dots, no separators that could escape the root.
TENANT_NAME_RE = re.compile(r"[a-z0-9][a-z0-9_-]{0,31}\Z")


def validate_tenant_name(name: str) -> str:
    """Return *name* when it is a legal tenant slug, raise otherwise."""
    if not TENANT_NAME_RE.fullmatch(name):
        raise ServiceError(
            f"invalid tenant name {name!r}: need 1-32 chars of "
            f"[a-z0-9_-], starting with a letter or digit"
        )
    return name


class TenantManager:
    """Lazily created per-tenant :class:`JobStore` roots under one dir.

    Thread-safe: the HTTP server's executor threads and the fleet
    thread share one manager.  A tenant's store is created on first
    use with *default_config*; an existing store keeps its own
    persisted ``config.json`` (the same open-vs-create semantics
    :class:`JobStore` itself has).
    """

    def __init__(
        self,
        data_root: str,
        default_config: Optional[ServiceConfig] = None,
    ) -> None:
        self.data_root = os.path.abspath(data_root)
        self.tenants_dir = os.path.join(self.data_root, "tenants")
        os.makedirs(self.tenants_dir, exist_ok=True)
        self.default_config = default_config
        self._stores: Dict[str, JobStore] = {}
        self._mutex = threading.Lock()

    def tenant_root(self, name: str) -> str:
        return os.path.join(self.tenants_dir, validate_tenant_name(name))

    def store(self, name: str) -> JobStore:
        """The tenant's job store, created on first use."""
        name = validate_tenant_name(name)
        with self._mutex:
            store = self._stores.get(name)
            if store is None:
                root = self.tenant_root(name)
                config = (
                    None
                    if os.path.exists(
                        os.path.join(root, "config.json")
                    )
                    else self.default_config
                )
                store = JobStore(root, config=config)
                self._stores[name] = store
            return store

    def tenant_names(self) -> List[str]:
        """Every tenant with a store on disk (sorted)."""
        try:
            names = os.listdir(self.tenants_dir)
        except OSError:
            return []
        return sorted(
            n
            for n in names
            if TENANT_NAME_RE.fullmatch(n)
            and os.path.isdir(os.path.join(self.tenants_dir, n))
        )

    def open_stores(self) -> List[Tuple[str, JobStore]]:
        """``(tenant, store)`` for every tenant on disk, opening lazily."""
        return [(name, self.store(name)) for name in self.tenant_names()]


class TenantFleet:
    """One supervised worker fleet per tenant, driven by one thread.

    Each tenant store gets its own
    :class:`~repro.service.supervisor.ServiceSupervisor` (created when
    the tenant first appears on disk) with *n_workers* subprocess
    workers; ``n_workers=0`` keeps execution in-process and serial —
    the supervisor's graceful-degradation path — which is what the
    tests and the benchmark use.  The background thread round-robins
    ``tick()`` over every supervisor, so reaping, respawning and
    inline execution all keep happening while the asyncio front-end
    stays free to serve requests.
    """

    def __init__(
        self,
        tenants: TenantManager,
        n_workers: int = 0,
        poll_s: float = 0.05,
        inline_fallback: bool = True,
        telemetry: Optional[AnyTelemetry] = None,
    ) -> None:
        self.tenants = tenants
        self.n_workers = n_workers
        self.poll_s = poll_s
        self.inline_fallback = inline_fallback
        self.telemetry = telemetry
        self._supervisors: Dict[str, ServiceSupervisor] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def supervisor(self, tenant: str) -> Optional[ServiceSupervisor]:
        return self._supervisors.get(tenant)

    def _ensure_supervisors(self) -> None:
        for name, store in self.tenants.open_stores():
            if name not in self._supervisors:
                sup = ServiceSupervisor(
                    store,
                    n_workers=self.n_workers,
                    inline_fallback=self.inline_fallback,
                )
                sup.start()
                self._supervisors[name] = sup

    def tick(self) -> None:
        """One supervision round across every tenant."""
        self._ensure_supervisors()
        for sup in self._supervisors.values():
            sup.tick()

    def pending_work(self) -> bool:
        return any(
            store.pending_work()
            for _, store in self.tenants.open_stores()
        )

    def _run(self) -> None:
        while not self._stop.is_set():
            if self.telemetry is not None:
                with use_telemetry(self.telemetry):
                    self.tick()
            else:
                self.tick()
            # Busy tenants tick again immediately; an idle fleet naps.
            if not self.pending_work():
                self._stop.wait(self.poll_s)

    def start(self) -> "TenantFleet":
        if self._thread is not None:
            raise ServiceError("fleet already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-tenant-fleet", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, grace_s: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=grace_s + 5.0)
            self._thread = None
        for sup in self._supervisors.values():
            sup.shutdown(grace_s=grace_s)
        self._supervisors.clear()

    def __enter__(self) -> "TenantFleet":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
