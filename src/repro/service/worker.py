"""Worker process: claim a shard, run its flow stage, commit fenced.

A :class:`ServiceWorker` is deliberately dumb — the whole protocol is:

1. :meth:`JobStore.claim` one shard (a lease with a fencing token);
2. start a :class:`~repro.service.lease.LeaseHeartbeat` renewal thread;
3. run the staged noise-tolerant flow up to (and including) that
   stage against the *job's* checkpoint directory — earlier stages
   load from checkpoints a previous worker wrote, so the shard picks
   up exactly (bit-identically) where its predecessor stopped;
4. commit with the fencing token.  A refused commit means the lease
   was reclaimed while we stalled: the result is discarded
   (:class:`~repro.errors.LeaseLostError`), never half-written.

Workers never talk to each other and hold no state outside the store;
``kill -9`` at any instruction loses at most one lease TTL of work.

Runnable stand-alone::

    python -m repro.service /path/to/store --drain

``--drain`` exits once the queue is empty; without it the worker polls
forever (the ``repro serve`` supervisor's mode).
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import time
import uuid
from typing import Any, Dict, Optional, Sequence

from ..errors import LeaseLostError, TransientError
from ..obs import current_telemetry
from .jobstore import JobRecord, JobSpec, JobStore, ShardRecord
from .lease import LeaseHeartbeat


def _default_worker_id() -> str:
    return f"w-{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


def _maybe_inject_chaos(spec: JobSpec, shard: ShardRecord) -> None:
    """Deterministic fault injection for chaos tests (no-op otherwise).

    ``kill_shard``/``fail_shard`` name the shard index to hit;
    ``kill_attempts``/``fail_attempts`` bound how many attempts are hit
    (default 1 kill — so the retry succeeds and the job completes — and
    unbounded failures — so the quarantine path is reachable).
    """
    chaos = spec.chaos
    if not chaos:
        return
    if (
        chaos.get("kill_shard") == shard.index
        and shard.attempts < chaos.get("kill_attempts", 1)
    ):
        os.kill(os.getpid(), signal.SIGKILL)
    if (
        chaos.get("fail_shard") == shard.index
        and shard.attempts < chaos.get("fail_attempts", 10 ** 9)
    ):
        raise TransientError(
            f"chaos: injected transient failure on shard {shard.name} "
            f"(attempt {shard.attempts})"
        )


class ServiceWorker:
    """One shard-executing loop over a :class:`JobStore`."""

    def __init__(
        self,
        store: JobStore,
        worker_id: Optional[str] = None,
    ) -> None:
        self.store = store
        self.worker_id = worker_id or _default_worker_id()

    # ------------------------------------------------------------------
    def run_once(self) -> bool:
        """Claim and fully process one shard; ``False`` when idle."""
        claimed = self.store.claim(self.worker_id)
        if claimed is None:
            return False
        job, shard = claimed
        assert shard.lease is not None
        token = shard.lease.token
        tel = current_telemetry()
        try:
            self.execute_shard(job, shard, token)
        except LeaseLostError:
            # Someone else owns the shard now; our work is discarded.
            tel.count("service.lease_lost")
        except TransientError as exc:
            self.store.fail_shard(
                job.id, shard.index, self.worker_id, token,
                error=repr(exc), retryable=True,
            )
        except Exception as exc:  # noqa: BLE001 - worker must survive
            self.store.fail_shard(
                job.id, shard.index, self.worker_id, token,
                error=repr(exc), retryable=False,
            )
        return True

    def run(
        self,
        drain: bool = False,
        max_shards: Optional[int] = None,
        idle_sleep_s: float = 0.2,
    ) -> int:
        """Process shards until told to stop; returns shards processed.

        ``drain=True`` exits once no job needs work; ``max_shards``
        bounds the loop for tests.  The worker registers itself (and
        heartbeats) in the store's worker registry so the supervisor
        can tell "workers are alive" from "I must degrade gracefully".
        """
        self.store.register_worker(self.worker_id, os.getpid())
        processed = 0
        try:
            while max_shards is None or processed < max_shards:
                did_work = self.run_once()
                self.store.worker_heartbeat(self.worker_id)
                if did_work:
                    processed += 1
                    continue
                if drain and not self.store.pending_work():
                    break
                time.sleep(idle_sleep_s)
        finally:
            self.store.deregister_worker(self.worker_id)
        return processed

    # ------------------------------------------------------------------
    def execute_shard(
        self, job: JobRecord, shard: ShardRecord, token: int
    ) -> None:
        """Run one flow stage under heartbeat + fencing.

        Raises :class:`LeaseLostError` when the lease was reclaimed
        (the execution is discarded), propagates flow errors for
        :meth:`run_once` to classify as transient or deterministic.
        """
        tel = current_telemetry()
        heartbeat = LeaseHeartbeat(
            self.store,
            job.id,
            shard.index,
            self.worker_id,
            token,
            interval_s=self.store.config.heartbeat_s,
        )
        heartbeat.start()
        try:
            if not self.store.start_shard(
                job.id, shard.index, self.worker_id, token
            ):
                raise LeaseLostError(
                    f"lease on {job.id}/{shard.name} lost before start"
                )
            _maybe_inject_chaos(job.spec, shard)
            is_final = shard.index == len(job.shards) - 1
            with tel.span(
                "service.shard",
                job=job.id,
                shard=shard.name,
                worker=self.worker_id,
            ):
                result, report = run_shard_flow(
                    self.store, job.id, job.spec, shard.index, is_final
                )
            if heartbeat.lost.is_set():
                raise LeaseLostError(
                    f"lease on {job.id}/{shard.name} expired mid-run"
                )
            if is_final:
                # Artefacts first, then the fenced state flip: a job
                # observed `done` always has its result on disk.  A
                # stale worker writing these too is harmless — its
                # bytes are identical by construction.
                if result is None:
                    raise TransientError(
                        f"final shard {shard.name} produced no result "
                        f"(status {report.status})"
                    )
                self.store.save_result(
                    job.id, result_payload(result)
                )
                report.save(self.store.report_path(job.id))
            if not self.store.complete_shard(
                job.id, shard.index, self.worker_id, token
            ):
                raise LeaseLostError(
                    f"lease on {job.id}/{shard.name} lost at commit"
                )
        finally:
            heartbeat.stop()


def run_shard_flow(
    store: JobStore,
    job_id: str,
    spec: JobSpec,
    shard_index: int,
    is_final: bool,
) -> Any:
    """Run the flow for one shard against the job's checkpoint dir.

    Returns the flow's ``(result, report)``.  Shared by the worker and
    the supervisor's in-process degradation path so both execute shards
    *identically* — same design build, same checkpoint store, same
    flow arguments — which is what the bit-identity invariant rests on.
    """
    from ..context import RunContext
    from ..core.flow import run_noise_tolerant_flow

    design, stage_plan = spec.build_design_and_plan()
    telemetry = None
    if spec.telemetry:
        from ..obs import Telemetry

        telemetry = Telemetry(tracing=True, metrics=True)
    outcome = run_noise_tolerant_flow(
        design,
        checkpoint_dir=store.checkpoint_dir(job_id),
        resume=True,
        max_patterns=spec.max_patterns,
        stop_after_stage=None if is_final else shard_index + 1,
        strict=True,
        context=(
            RunContext(telemetry=telemetry)
            if telemetry is not None
            else None
        ),
        seed=spec.flow_seed,
        stage_plan=stage_plan,
    )
    if telemetry is not None:
        obs_dir = store.obs_dir(job_id)
        os.makedirs(obs_dir, exist_ok=True)
        stem = os.path.join(obs_dir, f"shard{shard_index}")
        telemetry.save_trace_jsonl(f"{stem}.trace.jsonl")
        telemetry.save_metrics_json(f"{stem}.metrics.json")
    return outcome


def result_payload(result: Any) -> Dict[str, Any]:
    """The persisted artefact of a finished job: the pattern set.

    Carries the raw pattern matrix (the bit-identity witness) plus the
    headline numbers a client usually wants without unpickling numpy.
    """
    matrix = result.pattern_set.as_matrix()
    return {
        "matrix": matrix,
        "n_patterns": int(result.n_patterns),
        "test_coverage": float(result.test_coverage),
        "domain": str(result.domain),
        "fill": str(result.fill),
        "step_boundaries": [int(b) for b in result.step_boundaries],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-service-worker",
        description="Claim and execute ATPG job shards from a job store.",
    )
    parser.add_argument("store", help="job store root directory")
    parser.add_argument(
        "--drain",
        action="store_true",
        help="exit once the queue is empty instead of polling forever",
    )
    parser.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help="stop after processing this many shards",
    )
    parser.add_argument(
        "--worker-id", default=None, help="stable worker id (default: auto)"
    )
    parser.add_argument(
        "--idle-sleep",
        type=float,
        default=0.2,
        help="poll interval while the queue is empty (seconds)",
    )
    args = parser.parse_args(argv)
    worker = ServiceWorker(JobStore(args.store), worker_id=args.worker_id)
    worker.run(
        drain=args.drain,
        max_shards=args.max_shards,
        idle_sleep_s=args.idle_sleep,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    raise SystemExit(main())
