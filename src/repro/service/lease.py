"""Shard leases: expiring, fenced ownership of one unit of work.

A worker that claims a shard holds a :class:`Lease` — ownership that
*expires* unless renewed.  The lease is the service's only liveness
signal: a worker that is SIGKILLed stops renewing, a worker that is
SIGSTOPped (hung) stops renewing too (the heartbeat thread freezes with
the process), and in both cases the shard becomes reclaimable once
``expires_at`` passes.  No pings, no health endpoints — just a deadline
in the job record.

Every grant increments the shard's **fencing token**.  A mutation
(heartbeat, start, complete, fail) must present the token it was
granted; a worker whose lease was reclaimed while it was stalled holds
a stale token and every commit it attempts is refused (and surfaced as
:class:`~repro.errors.LeaseLostError` by the worker loop), so a zombie
can never overwrite the work of its replacement.

:class:`LeaseHeartbeat` is the worker-side renewal thread.  It is a
plain ``threading.Thread`` on purpose: SIGSTOP freezes all threads of
the process, so a hung worker's lease genuinely expires instead of
being kept alive by a helper that outlived the hang.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .jobstore import JobStore


@dataclass
class Lease:
    """One worker's expiring, fenced hold on one shard."""

    #: Id of the worker the shard is leased to.
    worker: str
    #: Fencing token: monotonically increasing per shard; stale holders
    #: fail every commit.
    token: int
    #: Wall-clock deadline (``time.time()``); past it the shard is
    #: reclaimable by anyone.
    expires_at: float

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def matches(self, worker: str, token: int) -> bool:
        return self.worker == worker and self.token == token

    def to_dict(self) -> Dict[str, Any]:
        return {
            "worker": self.worker,
            "token": self.token,
            "expires_at": self.expires_at,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Lease":
        return cls(
            worker=str(data["worker"]),
            token=int(data["token"]),
            expires_at=float(data["expires_at"]),
        )


class LeaseHeartbeat:
    """Background renewal of one lease while its shard executes.

    Renews every *interval_s* via :meth:`JobStore.heartbeat`.  A failed
    renewal means the lease was reclaimed (or the job is gone): the
    thread stops and sets :attr:`lost`, which the worker checks before
    committing.  ``stop()`` is idempotent and joins the thread.
    """

    def __init__(
        self,
        store: "JobStore",
        job_id: str,
        shard_index: int,
        worker: str,
        token: int,
        interval_s: float,
    ) -> None:
        self._store = store
        self._job_id = job_id
        self._shard_index = shard_index
        self._worker = worker
        self._token = token
        self._interval_s = max(0.01, interval_s)
        self._stop = threading.Event()
        #: Set when a renewal was refused — the lease is no longer ours.
        self.lost = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="lease-heartbeat", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                ok = self._store.heartbeat(
                    self._job_id, self._shard_index, self._worker,
                    self._token,
                )
            except Exception:
                ok = False
            if not ok:
                self.lost.set()
                return

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
