"""Hand-rolled asyncio HTTP/1.1 front-end for the job service.

This is the wire API the ROADMAP asked for on top of the durable
:class:`~repro.service.jobstore.JobStore`: a stdlib-only server built
directly on :func:`asyncio.start_server` — request parsing, keep-alive
and chunked transfer are implemented here, not imported — because the
package's no-third-party-deps rule applies to the service layer too.

Endpoints (all JSON unless noted)::

    POST   /v1/{tenant}/jobs             submit a JobSpec -> 201 + job
    GET    /v1/{tenant}/jobs             list the tenant's jobs
    GET    /v1/{tenant}/jobs/{id}        one job record
    DELETE /v1/{tenant}/jobs/{id}        cancel (queued jobs only)
    GET    /v1/{tenant}/jobs/{id}/result pickle artefact (octet-stream)
    GET    /v1/{tenant}/jobs/{id}/report RunReport JSON
    GET    /v1/{tenant}/jobs/{id}/events NDJSON state-transition stream
                                         (chunked, stays open to terminal)
    GET    /metrics                      Prometheus text exposition
    GET    /healthz                      liveness + tenant count

Three design rules keep the layer honest:

* **The event loop never blocks on the store.**  Every ``JobStore``
  call — all of which take a ``flock`` and fsync — runs in a worker
  thread via :func:`asyncio.to_thread`, which also propagates the
  ambient telemetry contextvar so ``service.*`` metrics land in the
  same registry ``/metrics`` serves.
* **Errors are structured, never swallowed.**  Back-pressure surfaces
  as 429 with a ``Retry-After`` hint and the depth/limit in the body;
  a malformed or DRC-failing netlist upload is a 422 with the gating
  violations listed — the job is rejected *before* it can poison a
  worker.
* **Execution stays out of the transport.**  The server only adapts
  the store onto HTTP; draining belongs to a worker fleet
  (:class:`~repro.service.tenants.TenantFleet`, a plain supervisor, or
  standalone ``python -m repro.service`` workers pointed at a tenant
  directory).
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import (
    JobNotFoundError,
    LibraryError,
    NetlistError,
    ServiceBusyError,
    ServiceError,
)
from ..obs import Telemetry, use_telemetry
from ..obs.metrics import MetricsRegistry
from .jobstore import JobRecord, JobSpec, JobStore
from .tenants import TenantFleet, TenantManager

SERVER_NAME = "repro-service-http/1.0"

_MAX_REQUEST_LINE = 8 * 1024
_MAX_HEADER_BYTES = 64 * 1024
_DEFAULT_MAX_BODY = 32 * 1024 * 1024  # netlist uploads are text, MBs

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
}

#: Keys a submitted JobSpec JSON body may carry; anything else is a
#: loud 400 — a typo'd field silently ignored would be a silent wrong
#: answer later.
_SPEC_KEYS = frozenset(
    (
        "scale",
        "seed",
        "flow_seed",
        "max_patterns",
        "telemetry",
        "chaos",
        "netlist_verilog",
    )
)

_JOBS_RE = re.compile(
    r"/v1/(?P<tenant>[^/]+)/jobs"
    r"(?:/(?P<job>[^/]+?))?"
    r"(?:/(?P<sub>events|result|report))?\Z"
)

#: Latency histogram buckets tuned for request handling (the default
#: registry buckets top out at minutes, which is flow-stage territory).
_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
)


class HttpError(Exception):
    """A structured HTTP failure: status + machine-readable body."""

    def __init__(
        self,
        status: int,
        message: str,
        kind: str = "error",
        headers: Optional[Dict[str, str]] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.message = message
        self.headers = dict(headers or {})
        self.extra = dict(extra or {})

    def body(self) -> Dict[str, Any]:
        err: Dict[str, Any] = {"kind": self.kind, "message": self.message}
        err.update(self.extra)
        return {"error": err}


@dataclass
class Request:
    """One parsed HTTP/1.1 request."""

    method: str
    target: str
    version: str
    headers: Dict[str, str]
    body: bytes
    path: str = ""
    query: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        split = urllib.parse.urlsplit(self.target)
        self.path = split.path
        self.query = {
            k: v[-1]
            for k, v in urllib.parse.parse_qs(split.query).items()
        }

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"


@dataclass
class Response:
    """One response; ``stream=True`` means the handler already wrote."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    stream: bool = False

    @classmethod
    def json(
        cls,
        payload: Dict[str, Any],
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        body = (
            json.dumps(payload, sort_keys=True, default=str) + "\n"
        ).encode("utf-8")
        return cls(status=status, body=body, headers=dict(headers or {}))


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int = _DEFAULT_MAX_BODY,
    idle_timeout_s: float = 30.0,
) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` for protocol violations (oversized
    line/headers/body, missing length, unsupported transfer coding)
    and :class:`asyncio.TimeoutError` when the peer goes quiet
    mid-request.
    """
    try:
        line = await asyncio.wait_for(
            reader.readline(), timeout=idle_timeout_s
        )
    except asyncio.IncompleteReadError:  # pragma: no cover - defensive
        return None
    if not line:
        return None
    if len(line) > _MAX_REQUEST_LINE:
        raise HttpError(431, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {line!r}")
    method, target, version = parts

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        hline = await asyncio.wait_for(
            reader.readline(), timeout=idle_timeout_s
        )
        if not hline or hline in (b"\r\n", b"\n"):
            break
        header_bytes += len(hline)
        if header_bytes > _MAX_HEADER_BYTES:
            raise HttpError(431, "headers too large")
        text = hline.decode("latin-1").rstrip("\r\n")
        if ":" not in text:
            raise HttpError(400, f"malformed header line: {text!r}")
        key, value = text.split(":", 1)
        headers[key.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpError(
            501, "chunked request bodies are not supported; "
            "send Content-Length"
        )
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(
                400, f"bad Content-Length {length_text!r}"
            ) from None
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise HttpError(
                413,
                f"body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
            )
        body = await asyncio.wait_for(
            reader.readexactly(length), timeout=idle_timeout_s
        )
    elif method in ("POST", "PUT", "PATCH"):
        raise HttpError(411, f"{method} requires Content-Length")
    return Request(
        method=method,
        target=target,
        version=version,
        headers=headers,
        body=body,
    )


def _chunk(data: bytes) -> bytes:
    return f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"


class HttpFrontEnd:
    """The asyncio server: routing, metrics, tenancy, streaming."""

    def __init__(
        self,
        tenants: TenantManager,
        telemetry: Optional[Telemetry] = None,
        event_poll_s: float = 0.05,
        max_body_bytes: int = _DEFAULT_MAX_BODY,
        idle_timeout_s: float = 30.0,
    ) -> None:
        self.tenants = tenants
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(tracing=False, metrics=True)
        )
        if self.telemetry.metrics is None:
            raise ServiceError(
                "the HTTP front-end needs a metrics-enabled Telemetry"
            )
        self.registry: MetricsRegistry = self.telemetry.metrics
        self.event_poll_s = event_poll_s
        self.max_body_bytes = max_body_bytes
        self.idle_timeout_s = idle_timeout_s
        self.host: str = ""
        self.port: int = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "set[asyncio.StreamWriter]" = set()
        self._started_at = time.time()

    # -- lifecycle ------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, host=host, port=port
        )
        sock = self._server.sockets[0]
        addr = sock.getsockname()
        self.host, self.port = addr[0], addr[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            # ``Server.close`` stops *listening*; established
            # keep-alive connections would linger past the loop's
            # lifetime (and warn at GC time) unless torn down here.
            for writer in list(self._connections):
                writer.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection loop -------------------------------------------------
    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._connections.add(writer)
        with use_telemetry(self.telemetry):
            try:
                await self._connection_loop(reader, writer)
            except (
                ConnectionError,
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
            ):
                pass  # peer vanished mid-request; nothing to answer
            finally:
                self._connections.discard(writer)
                try:
                    writer.close()
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _connection_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            try:
                request = await read_request(
                    reader,
                    max_body_bytes=self.max_body_bytes,
                    idle_timeout_s=self.idle_timeout_s,
                )
            except HttpError as exc:
                await self._write_response(
                    writer, self._error_response(exc), keep_alive=False
                )
                return
            if request is None:
                return
            t0 = time.perf_counter()
            route = self._route_label(request.path)
            try:
                response = await self._dispatch(request, writer)
            except HttpError as exc:
                response = self._error_response(exc)
            except (
                ConnectionError,
                asyncio.TimeoutError,
            ):  # client gone mid-stream
                raise
            except Exception as exc:  # noqa: BLE001 - server must answer
                response = self._error_response(
                    HttpError(500, f"internal error: {exc!r}")
                )
            self._account(
                request.method, route, response.status,
                time.perf_counter() - t0,
            )
            if response.stream:
                # The handler streamed its own body and the connection
                # state is unknowable (the peer may have hung up);
                # close rather than guess.
                return
            keep = request.keep_alive
            await self._write_response(writer, response, keep_alive=keep)
            if not keep:
                return

    def _account(
        self, method: str, route: str, status: int, elapsed_s: float
    ) -> None:
        self.registry.counter(
            "http.requests", help="HTTP requests served"
        ).inc(1, method=method, route=route, status=str(status))
        self.registry.histogram(
            "http.request_latency_s",
            help="request handling latency in seconds",
            buckets=_LATENCY_BUCKETS,
        ).observe(elapsed_s, route=route)

    @staticmethod
    def _route_label(path: str) -> str:
        """Bounded-cardinality route label for metrics."""
        if path in ("/healthz", "/metrics"):
            return path
        m = _JOBS_RE.fullmatch(path)
        if m is None:
            return "unknown"
        label = "/v1/{tenant}/jobs"
        if m.group("job"):
            label += "/{id}"
        if m.group("sub"):
            label += "/" + m.group("sub")
        return label

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: Response,
        keep_alive: bool,
    ) -> None:
        head = [
            f"HTTP/1.1 {response.status} "
            f"{_REASONS.get(response.status, 'Unknown')}",
            f"Server: {SERVER_NAME}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for key, value in response.headers.items():
            head.append(f"{key}: {value}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
            + response.body
        )
        await writer.drain()

    @staticmethod
    def _error_response(exc: HttpError) -> Response:
        return Response.json(
            exc.body(), status=exc.status, headers=exc.headers
        )

    # -- routing ----------------------------------------------------------
    async def _dispatch(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
    ) -> Response:
        path = request.path
        if path == "/healthz":
            if request.method != "GET":
                raise HttpError(405, "healthz is GET-only")
            return await self._handle_healthz()
        if path == "/metrics":
            if request.method != "GET":
                raise HttpError(405, "metrics is GET-only")
            return await self._handle_metrics()
        m = _JOBS_RE.fullmatch(path)
        if m is None:
            raise HttpError(404, f"no route for {path!r}", kind="no_route")
        tenant, job_id, sub = m.group("tenant", "job", "sub")
        store = await self._tenant_store(tenant)
        if job_id is None:
            if request.method == "POST":
                return await self._handle_submit(tenant, store, request)
            if request.method == "GET":
                return await self._handle_list(store)
            raise HttpError(405, f"{request.method} not allowed on jobs")
        if sub is None:
            if request.method == "GET":
                return await self._handle_status(store, job_id)
            if request.method == "DELETE":
                return await self._handle_cancel(store, job_id)
            raise HttpError(
                405, f"{request.method} not allowed on a job"
            )
        if request.method != "GET":
            raise HttpError(405, f"{sub} is GET-only")
        if sub == "result":
            return await self._handle_result(store, job_id)
        if sub == "report":
            return await self._handle_report(store, job_id)
        return await self._handle_events(
            store, tenant, job_id, request, writer
        )

    async def _tenant_store(self, tenant: str) -> JobStore:
        try:
            return await asyncio.to_thread(self.tenants.store, tenant)
        except ServiceError as exc:
            raise HttpError(
                400, str(exc), kind="invalid_tenant"
            ) from exc

    # -- handlers ---------------------------------------------------------
    async def _handle_healthz(self) -> Response:
        tenants = await asyncio.to_thread(self.tenants.tenant_names)
        return Response.json(
            {
                "status": "ok",
                "server": SERVER_NAME,
                "uptime_s": round(time.time() - self._started_at, 3),
                "tenants": tenants,
            }
        )

    async def _handle_metrics(self) -> Response:
        def render() -> str:
            # Refresh per-tenant gauges at scrape time so the
            # exposition reflects the stores as they are now, not as
            # they were at the last submit.
            depth_gauge = self.registry.gauge(
                "service.tenant_queue_depth",
                help="active (non-terminal) jobs per tenant",
            )
            limit_gauge = self.registry.gauge(
                "service.tenant_queue_limit",
                help="max_queue_depth per tenant",
            )
            for name, store in self.tenants.open_stores():
                depth_gauge.set(store.queue_depth(), tenant=name)
                limit_gauge.set(
                    store.config.max_queue_depth, tenant=name
                )
            return self.registry.to_prometheus()

        text = await asyncio.to_thread(render)
        return Response(
            status=200,
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _handle_submit(
        self, tenant: str, store: JobStore, request: Request
    ) -> Response:
        spec = self._parse_spec(request)
        if spec.netlist_verilog is not None:
            await asyncio.to_thread(self._gate_netlist, spec)
        try:
            job = await asyncio.to_thread(store.submit, spec)
        except ServiceBusyError as exc:
            retry_after = max(
                1, int(round(store.config.backoff_base_s + 0.5))
            )
            raise HttpError(
                429,
                str(exc),
                kind="busy",
                headers={"Retry-After": str(retry_after)},
                extra={"depth": exc.depth, "limit": exc.limit},
            ) from exc
        except ServiceError as exc:
            raise HttpError(400, str(exc), kind="rejected") from exc
        return Response.json(
            {"job": job.to_dict()},
            status=201,
            headers={"Location": f"/v1/{tenant}/jobs/{job.id}"},
        )

    def _parse_spec(self, request: Request) -> JobSpec:
        ctype = request.headers.get("content-type", "application/json")
        if "json" not in ctype:
            raise HttpError(
                400, f"unsupported content type {ctype!r}",
                kind="bad_request",
            )
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(
                400, f"body is not valid JSON: {exc}", kind="bad_json"
            ) from exc
        if not isinstance(payload, dict):
            raise HttpError(
                400, "body must be a JSON object (a JobSpec)",
                kind="bad_json",
            )
        unknown = sorted(set(payload) - _SPEC_KEYS)
        if unknown:
            raise HttpError(
                400,
                f"unknown JobSpec field(s): {', '.join(unknown)} "
                f"(accepted: {', '.join(sorted(_SPEC_KEYS))})",
                kind="bad_spec",
            )
        try:
            return JobSpec.from_dict(payload)
        except (TypeError, ValueError, AttributeError) as exc:
            raise HttpError(
                400, f"invalid JobSpec: {exc}", kind="bad_spec"
            ) from exc

    def _gate_netlist(self, spec: JobSpec) -> None:
        """Parse + DRC-gate an uploaded netlist *before* enqueueing.

        Runs the exact gate the flow itself runs
        (:data:`~repro.core.flow.DRC_GATE_FAMILIES` over the
        reconstructed design), so an accepted upload cannot fail the
        worker-side gate later; a rejected one answers 422 with the
        violations, costing zero worker time.
        """
        from ..core.flow import DRC_GATE_FAMILIES
        from ..drc import DrcContext, run_drc

        try:
            design, _ = spec.build_design_and_plan()
        except (NetlistError, LibraryError) as exc:
            raise HttpError(
                422, f"netlist rejected: {exc}", kind="netlist_error"
            ) from exc
        report = run_drc(
            DrcContext.for_design(design), families=DRC_GATE_FAMILIES
        )
        gating = report.gating_violations("error")
        if gating:
            raise HttpError(
                422,
                f"netlist failed DRC with {len(gating)} unwaived "
                f"ERROR violation(s)",
                kind="drc_rejected",
                extra={
                    "violations": [
                        {
                            "rule_id": v.rule_id,
                            "severity": v.severity,
                            "message": v.message,
                        }
                        for v in gating[:20]
                    ]
                },
            )

    async def _handle_list(self, store: JobStore) -> Response:
        jobs = await asyncio.to_thread(store.list_jobs)
        return Response.json(
            {
                "jobs": [job.to_dict() for job in jobs],
                "queue_depth": sum(1 for j in jobs if not j.terminal),
                "queue_limit": store.config.max_queue_depth,
            }
        )

    async def _handle_status(
        self, store: JobStore, job_id: str
    ) -> Response:
        job = await self._get_job(store, job_id)
        return Response.json({"job": job.to_dict()})

    async def _handle_cancel(
        self, store: JobStore, job_id: str
    ) -> Response:
        try:
            job = await asyncio.to_thread(store.cancel, job_id)
        except JobNotFoundError as exc:
            raise HttpError(404, str(exc), kind="not_found") from exc
        except ServiceError as exc:
            raise HttpError(409, str(exc), kind="conflict") from exc
        return Response.json({"job": job.to_dict()})

    async def _handle_result(
        self, store: JobStore, job_id: str
    ) -> Response:
        job = await self._get_job(store, job_id)

        def read_bytes() -> bytes:
            with open(store.result_path(job_id), "rb") as fh:
                return fh.read()

        try:
            blob = await asyncio.to_thread(read_bytes)
        except FileNotFoundError:
            raise HttpError(
                404,
                f"job {job_id} has no result artefact "
                f"(state: {job.state})",
                kind="result_missing",
            ) from None
        return Response(
            status=200,
            body=blob,
            content_type="application/octet-stream",
        )

    async def _handle_report(
        self, store: JobStore, job_id: str
    ) -> Response:
        await self._get_job(store, job_id)
        report = await asyncio.to_thread(store.load_report, job_id)
        if report is None:
            raise HttpError(
                404,
                f"job {job_id} has no RunReport yet",
                kind="report_missing",
            )
        return Response.json({"report": report.to_dict()})

    async def _get_job(self, store: JobStore, job_id: str) -> JobRecord:
        try:
            return await asyncio.to_thread(store.get, job_id)
        except JobNotFoundError as exc:
            raise HttpError(404, str(exc), kind="not_found") from exc

    # -- the event stream --------------------------------------------------
    async def _handle_events(
        self,
        store: JobStore,
        tenant: str,
        job_id: str,
        request: Request,
        writer: asyncio.StreamWriter,
    ) -> Response:
        """Chunked NDJSON tail of the job's state transitions.

        The watcher polls the job's durable record (reads are
        lock-free: every store write is an atomic rename) and emits
        one event per observed change — job state, any shard state, or
        a shard attempt counter.  The first event is the current
        snapshot, so a late subscriber still sees a well-formed,
        in-order sequence; the stream ends with the terminal event.
        """
        job = await self._get_job(store, job_id)  # 404 before headers
        try:
            timeout_s = float(request.query.get("timeout_s", "600"))
        except ValueError:
            raise HttpError(400, "timeout_s must be a number") from None

        streams = self.registry.gauge(
            "http.event_streams_active",
            help="currently open /events NDJSON streams",
        )
        streams.inc(1, tenant=tenant)
        head = (
            f"HTTP/1.1 200 OK\r\n"
            f"Server: {SERVER_NAME}\r\n"
            f"Content-Type: application/x-ndjson\r\n"
            f"Transfer-Encoding: chunked\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        seq = 0
        last: Optional[Tuple[str, Tuple[Tuple[str, int], ...]]] = None
        deadline = asyncio.get_running_loop().time() + timeout_s
        try:
            while True:
                observed = (
                    job.state,
                    tuple((s.state, s.attempts) for s in job.shards),
                )
                if observed != last:
                    last = observed
                    event = {
                        "seq": seq,
                        "ts": round(time.time(), 6),
                        "job": job.id,
                        "state": job.state,
                        "terminal": job.terminal,
                        "error": job.error,
                        "shards": [
                            {
                                "name": s.name,
                                "state": s.state,
                                "attempts": s.attempts,
                            }
                            for s in job.shards
                        ],
                    }
                    line = (
                        json.dumps(event, sort_keys=True) + "\n"
                    ).encode("utf-8")
                    writer.write(_chunk(line))
                    await writer.drain()
                    seq += 1
                if job.terminal:
                    break
                if asyncio.get_running_loop().time() > deadline:
                    timeout_event = {
                        "seq": seq,
                        "ts": round(time.time(), 6),
                        "job": job.id,
                        "event": "timeout",
                        "state": job.state,
                        "terminal": False,
                    }
                    writer.write(
                        _chunk(
                            (
                                json.dumps(timeout_event, sort_keys=True)
                                + "\n"
                            ).encode("utf-8")
                        )
                    )
                    break
                await asyncio.sleep(self.event_poll_s)
                try:
                    job = await asyncio.to_thread(store.get, job_id)
                except (JobNotFoundError, ServiceError):
                    break  # record vanished; end the stream cleanly
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            streams.inc(-1, tenant=tenant)
        return Response(status=200, stream=True)


class HttpServerThread:
    """Run an :class:`HttpFrontEnd` (and optional fleet) off-thread.

    The asyncio loop lives in a daemon thread so synchronous callers —
    the CLI, tests, the benchmark — can start a real server, talk to
    it over sockets, and tear it down deterministically::

        tenants = TenantManager(data_root)
        with HttpServerThread(tenants, fleet=TenantFleet(tenants)) as srv:
            client = HttpServiceClient(srv.base_url, tenant="default")
            ...
    """

    def __init__(
        self,
        tenants: TenantManager,
        host: str = "127.0.0.1",
        port: int = 0,
        fleet: Optional[TenantFleet] = None,
        telemetry: Optional[Telemetry] = None,
        event_poll_s: float = 0.05,
    ) -> None:
        self.front_end = HttpFrontEnd(
            tenants, telemetry=telemetry, event_poll_s=event_poll_s
        )
        self.fleet = fleet
        if fleet is not None and fleet.telemetry is None:
            # Fleet activity (shards completed, leases expired, inline
            # executions) should land in the same /metrics exposition.
            fleet.telemetry = self.front_end.telemetry
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def base_url(self) -> str:
        return f"http://{self.front_end.host}:{self.front_end.port}"

    def start(self) -> "HttpServerThread":
        if self._thread is not None:
            raise ServiceError("server already started")
        started = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(
                    self.front_end.start(self._host, self._port)
                )
            except BaseException as exc:  # noqa: BLE001 - surfaced to caller
                self._startup_error = exc
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.front_end.stop())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-http-server", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=30.0):
            raise ServiceError("HTTP server failed to start in 30s")
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
            raise ServiceError(
                f"HTTP server failed to start: {self._startup_error!r}"
            )
        if self.fleet is not None:
            self.fleet.start()
        return self

    def stop(self) -> None:
        if self.fleet is not None:
            self.fleet.stop()
        loop = self._loop
        if loop is not None and self._thread is not None:
            loop.call_soon_threadsafe(loop.stop)
            self._thread.join(timeout=30.0)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "HttpServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
