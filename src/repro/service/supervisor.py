"""Supervisor: keep a worker fleet alive, degrade gracefully to zero.

:class:`ServiceSupervisor` owns a pool of worker *subprocesses* (each
running ``python -m repro.service.worker``) over one
:class:`~repro.service.jobstore.JobStore` and a periodic :meth:`tick`
that:

* reaps expired leases (tightening reclaim latency below the lazy
  reaping :meth:`~repro.service.jobstore.JobStore.claim` already does);
* respawns workers that died — up to ``respawn_limit`` respawns per
  slot, so a crash loop cannot fork-bomb the host (the shard-level
  quarantine in the store is what actually contains poison jobs);
* **degrades gracefully**: when not a single worker process is alive —
  all crashed out, or the pool was started with ``n_workers=0`` — the
  supervisor executes shards *in-process, serially*, via the very same
  :class:`~repro.service.worker.ServiceWorker` code path (lease,
  heartbeat, fencing token and all).  Submitted jobs therefore always
  finish; a dead fleet costs throughput, never completion or
  correctness.

The supervisor is a context manager::

    with ServiceSupervisor(store, n_workers=2) as sup:
        sup.run_until_drained(timeout_s=600)
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from types import TracebackType
from typing import List, Optional, Type

from ..errors import ServiceError
from ..obs import current_telemetry
from .jobstore import JobStore
from .worker import ServiceWorker


def _src_pythonpath() -> str:
    """PYTHONPATH entry that makes ``repro`` importable in children."""
    here = os.path.abspath(__file__)
    # .../src/repro/service/supervisor.py -> .../src
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


class _WorkerSlot:
    """One supervised worker process and its respawn budget."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[subprocess.Popen[bytes]] = None
        self.spawns = 0

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


class ServiceSupervisor:
    """Run and babysit worker processes over one job store."""

    def __init__(
        self,
        store: JobStore,
        n_workers: int = 2,
        respawn_limit: int = 3,
        inline_fallback: bool = True,
    ) -> None:
        if n_workers < 0:
            raise ServiceError("n_workers must be >= 0")
        self.store = store
        self.n_workers = n_workers
        self.respawn_limit = respawn_limit
        self.inline_fallback = inline_fallback
        self._slots: List[_WorkerSlot] = [
            _WorkerSlot(i) for i in range(n_workers)
        ]
        self._inline_worker = ServiceWorker(
            store, worker_id=f"inline-{os.getpid()}"
        )

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        for slot in self._slots:
            self._spawn(slot)

    def _spawn(self, slot: _WorkerSlot) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = _src_pythonpath() + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        worker_id = f"sup{os.getpid()}-w{slot.index}-g{slot.spawns}"
        slot.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                self.store.root,
                "--worker-id",
                worker_id,
            ],
            env=env,
        )
        slot.spawns += 1

    def worker_pids(self) -> List[int]:
        """PIDs of the live worker processes (chaos tests kill these)."""
        return [
            slot.process.pid
            for slot in self._slots
            if slot.process is not None and slot.alive()
        ]

    def alive_worker_count(self) -> int:
        return sum(1 for slot in self._slots if slot.alive())

    # -- the periodic heartbeat ----------------------------------------
    def tick(self, now: Optional[float] = None) -> None:
        """One supervision round: reap, respawn, degrade if needed."""
        tel = current_telemetry()
        self.store.reap_expired(now)
        for slot in self._slots:
            if slot.alive():
                continue
            if slot.process is not None:
                slot.process.wait()  # collect the zombie
                slot.process = None
            if slot.spawns <= self.respawn_limit:
                self._spawn(slot)
                tel.count("service.workers_respawned")
        tel.gauge_set("service.queue_depth", self.store.queue_depth())
        if (
            self.inline_fallback
            and self.alive_worker_count() == 0
            and not self.store.alive_workers(now)
        ):
            # Graceful degradation: no fleet — the supervisor itself
            # becomes a (serial) worker for one shard per tick.
            if self._inline_worker.run_once():
                tel.count("service.inline_shards")

    def run_until_drained(
        self,
        poll_s: float = 0.25,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Tick until every job is terminal (or *timeout_s* elapses)."""
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        while self.store.pending_work():
            self.tick()
            if not self.store.pending_work():
                break
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"service did not drain within {timeout_s}s "
                    f"({self.store.queue_depth()} job(s) still active)"
                )
            time.sleep(poll_s)

    def shutdown(self, grace_s: float = 5.0) -> None:
        """Terminate the fleet: SIGTERM, then SIGKILL past the grace."""
        for slot in self._slots:
            if slot.process is not None and slot.alive():
                slot.process.terminate()
        deadline = time.monotonic() + grace_s
        for slot in self._slots:
            if slot.process is None:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                slot.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                slot.process.kill()
                slot.process.wait()
            slot.process = None

    # -- context manager -----------------------------------------------
    def __enter__(self) -> "ServiceSupervisor":
        self.start()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.shutdown()
