"""Client API of the ATPG job service: submit, poll, fetch.

:class:`ServiceClient` is the only interface callers need::

    client = ServiceClient("/path/to/store")
    job_id = client.submit(JobSpec(scale="tiny"))
    job = client.wait(job_id, timeout_s=600)
    patterns = client.result(job_id)["matrix"]

There is no server socket: the "service" is the durable
:class:`~repro.service.jobstore.JobStore` directory, and clients,
workers and supervisors coordinate purely through its fenced,
crash-safe records.  That keeps the front-end honest about the two
contracts the service makes:

* **Back-pressure** — :meth:`submit` surfaces the store's
  :class:`~repro.errors.ServiceBusyError` when the queue is at depth;
  nothing is queued silently past the limit, nothing is dropped.
* **Graceful degradation** — :meth:`wait` (with the default
  ``inline_fallback=True``) notices when no worker is alive and
  executes the job's shards itself, serially, through the exact worker
  code path.  A submitted job completes even on a machine where no
  worker or supervisor was ever started.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Union

from ..errors import ServiceError
from ..reporting.runreport import RunReport
from .jobstore import JobRecord, JobSpec, JobStore
from .worker import ServiceWorker


class ServiceClient:
    """Submit/poll/fetch front-end over one job store."""

    def __init__(self, store: Union[JobStore, str]) -> None:
        self.store = store if isinstance(store, JobStore) else JobStore(store)
        self._inline_worker: Optional[ServiceWorker] = None

    # ------------------------------------------------------------------
    def submit(self, spec: Optional[JobSpec] = None, **kwargs: Any) -> str:
        """Enqueue one job; returns its id.

        Raises :class:`~repro.errors.ServiceBusyError` at the queue
        depth limit — callers are expected to back off and retry, not
        to assume the job was taken.
        """
        if spec is None:
            spec = JobSpec(**kwargs)
        elif kwargs:
            raise ServiceError(
                "pass either a JobSpec or keyword fields, not both"
            )
        return self.store.submit(spec).id

    def status(self, job_id: str) -> JobRecord:
        return self.store.get(job_id)

    def jobs(self) -> List[JobRecord]:
        return self.store.list_jobs()

    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout_s: Optional[float] = None,
        poll_s: float = 0.2,
        inline_fallback: bool = True,
    ) -> JobRecord:
        """Block until the job is terminal; returns its final record.

        While waiting the client reaps expired leases (so a dead
        worker's shard is reclaimed even with no supervisor running)
        and, when ``inline_fallback`` and no live worker is registered,
        runs the pending shards itself.  Raises
        :class:`~repro.errors.ServiceError` on timeout — the job keeps
        whatever progress it made and can be waited on again.
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        while True:
            job = self.store.get(job_id)
            if job.terminal:
                return job
            self.store.reap_expired()
            if inline_fallback and not self.store.alive_workers():
                if self._worker().run_once():
                    continue
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout_s}s waiting for job "
                    f"{job_id} (state: {job.state})"
                )
            time.sleep(poll_s)

    def _worker(self) -> ServiceWorker:
        if self._inline_worker is None:
            self._inline_worker = ServiceWorker(
                self.store, worker_id="client-inline"
            )
        return self._inline_worker

    # ------------------------------------------------------------------
    def result(self, job_id: str) -> Dict[str, Any]:
        """The finished job's pattern artefacts (see
        :func:`repro.service.worker.result_payload`)."""
        return self.store.load_result(job_id)

    def report(self, job_id: str) -> Optional[RunReport]:
        """The job's RunReport: the flow's own on success, the
        synthesized failure report (log intact) on ``failed``/``dead``,
        ``None`` while still running."""
        return self.store.load_report(job_id)
