"""Client APIs of the ATPG job service: submit, poll, fetch.

Two clients, one contract:

* :class:`ServiceClient` — direct file-backed access for processes
  that can see the store directory;
* :class:`HttpServiceClient` — the same submit/status/wait/result/
  report surface spoken to a :mod:`repro.service.http` front-end,
  for everything that cannot.

::

    client = ServiceClient("/path/to/store")
    job_id = client.submit(JobSpec(scale="tiny"))
    job = client.wait(job_id, timeout_s=600)
    patterns = client.result(job_id)["matrix"]

For :class:`ServiceClient` there is no server socket: the "service" is
the durable :class:`~repro.service.jobstore.JobStore` directory, and
clients, workers and supervisors coordinate purely through its fenced,
crash-safe records.  That keeps the front-end honest about the two
contracts the service makes:

* **Back-pressure** — :meth:`submit` surfaces the store's
  :class:`~repro.errors.ServiceBusyError` when the queue is at depth;
  nothing is queued silently past the limit, nothing is dropped.
* **Graceful degradation** — :meth:`wait` (with the default
  ``inline_fallback=True``) notices when no worker is alive and
  executes the job's shards itself, serially, through the exact worker
  code path.  A submitted job completes even on a machine where no
  worker or supervisor was ever started.
"""

from __future__ import annotations

import http.client
import json
import pickle
import time
import urllib.parse
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..errors import JobNotFoundError, ServiceBusyError, ServiceError
from ..perf.resilient import backoff_delay_s
from ..reporting.runreport import RunReport
from .jobstore import JobRecord, JobSpec, JobStore
from .worker import ServiceWorker


class ServiceClient:
    """Submit/poll/fetch front-end over one job store."""

    def __init__(self, store: Union[JobStore, str]) -> None:
        self.store = store if isinstance(store, JobStore) else JobStore(store)
        self._inline_worker: Optional[ServiceWorker] = None

    # ------------------------------------------------------------------
    def submit(self, spec: Optional[JobSpec] = None, **kwargs: Any) -> str:
        """Enqueue one job; returns its id.

        Raises :class:`~repro.errors.ServiceBusyError` at the queue
        depth limit — callers are expected to back off and retry, not
        to assume the job was taken.
        """
        if spec is None:
            spec = JobSpec(**kwargs)
        elif kwargs:
            raise ServiceError(
                "pass either a JobSpec or keyword fields, not both"
            )
        return self.store.submit(spec).id

    def status(self, job_id: str) -> JobRecord:
        return self.store.get(job_id)

    def jobs(self) -> List[JobRecord]:
        return self.store.list_jobs()

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a still-``queued`` job (see
        :meth:`JobStore.cancel`); errors loudly from any other state."""
        return self.store.cancel(job_id)

    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        timeout_s: Optional[float] = None,
        poll_s: float = 0.2,
        inline_fallback: bool = True,
        poll_max_s: float = 2.0,
    ) -> JobRecord:
        """Block until the job is terminal; returns its final record.

        While waiting the client reaps expired leases (so a dead
        worker's shard is reclaimed even with no supervisor running)
        and, when ``inline_fallback`` and no live worker is registered,
        runs the pending shards itself.  Raises
        :class:`~repro.errors.ServiceError` on timeout — the job keeps
        whatever progress it made and can be waited on again.

        Polling backs off exponentially from *poll_s* to *poll_max_s*
        (the shared :func:`~repro.perf.resilient.backoff_delay_s`
        curve) while the job record does not change, and snaps back to
        *poll_s* whenever it does — a long-running shard costs a few
        capped polls per lease TTL, not thousands of busy reads of a
        flock'd ``job.json``.
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        idle_polls = 0
        last_observed: Optional[tuple] = None
        while True:
            job = self.store.get(job_id)
            if job.terminal:
                return job
            observed = (
                job.state,
                tuple((s.state, s.attempts) for s in job.shards),
            )
            if observed != last_observed:
                idle_polls = 0
                last_observed = observed
            self.store.reap_expired()
            if inline_fallback and not self.store.alive_workers():
                if self._worker().run_once():
                    continue
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout_s}s waiting for job "
                    f"{job_id} (state: {job.state})"
                )
            time.sleep(
                backoff_delay_s(
                    poll_s, 2.0, poll_max_s,
                    jitter=0.0, seed=0, index=0, attempt=idle_polls,
                )
            )
            idle_polls += 1

    def _worker(self) -> ServiceWorker:
        if self._inline_worker is None:
            self._inline_worker = ServiceWorker(
                self.store, worker_id="client-inline"
            )
        return self._inline_worker

    # ------------------------------------------------------------------
    def result(self, job_id: str) -> Dict[str, Any]:
        """The finished job's pattern artefacts (see
        :func:`repro.service.worker.result_payload`)."""
        return self.store.load_result(job_id)

    def report(self, job_id: str) -> Optional[RunReport]:
        """The job's RunReport: the flow's own on success, the
        synthesized failure report (log intact) on ``failed``/``dead``,
        ``None`` while still running."""
        return self.store.load_report(job_id)


class HttpServiceClient:
    """:class:`ServiceClient`'s contract, spoken over the wire.

    Talks to one tenant namespace of a :mod:`repro.service.http`
    front-end::

        client = HttpServiceClient("http://127.0.0.1:8787", tenant="lab")
        job_id = client.submit(JobSpec(scale="tiny"))
        client.wait(job_id, timeout_s=600)
        patterns = client.result(job_id)["matrix"]

    Differences from the file-backed client are exactly the ones the
    network forces, no others:

    * **no inline fallback** — execution lives server-side; ``wait``
      only polls (with the same shared exponential backoff);
    * **honest timeouts** — every request carries a socket timeout
      (*request_timeout_s*); a hung server raises, never blocks forever;
    * **bounded retry on connection reset** — reads (GET) retry up to
      *retries* times with backoff; ``submit``/``cancel`` retry only
      when the connection was refused outright (nothing reached the
      server), because replaying a request the server may have
      processed could double-submit.

    Server errors map back onto the service's own exceptions:
    HTTP 404 → :class:`~repro.errors.JobNotFoundError`, 429 →
    :class:`~repro.errors.ServiceBusyError` (depth/limit restored from
    the body), anything else → :class:`~repro.errors.ServiceError`
    carrying the structured error message.
    """

    def __init__(
        self,
        base_url: str,
        tenant: str = "default",
        request_timeout_s: float = 30.0,
        retries: int = 2,
        retry_base_s: float = 0.05,
    ) -> None:
        url = base_url if "://" in base_url else f"http://{base_url}"
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "http" or parsed.hostname is None:
            raise ServiceError(
                f"unsupported service URL {base_url!r} (need http://host:port)"
            )
        self.host: str = parsed.hostname
        self.port: int = parsed.port if parsed.port is not None else 80
        self.tenant = tenant
        self.request_timeout_s = request_timeout_s
        self.retries = retries
        self.retry_base_s = retry_base_s

    # -- wire plumbing --------------------------------------------------
    def _connection(
        self, timeout_s: Optional[float] = None
    ) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host,
            self.port,
            timeout=(
                self.request_timeout_s if timeout_s is None else timeout_s
            ),
        )

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        timeout_s: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request/response; bounded retry on transport failure."""
        attempts = self.retries + 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            conn = self._connection(timeout_s)
            try:
                headers = {"Host": f"{self.host}:{self.port}"}
                if body is not None:
                    headers["Content-Type"] = "application/json"
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                payload = resp.read()
                return (
                    resp.status,
                    {k.lower(): v for k, v in resp.getheaders()},
                    payload,
                )
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                last_error = exc
                conn.close()
                refused = isinstance(exc, ConnectionRefusedError)
                # Non-idempotent requests only retry when the server
                # never saw them; reads retry on any transport failure.
                retryable = method in ("GET", "HEAD") or refused
                if not retryable or attempt + 1 >= attempts:
                    raise ServiceError(
                        f"{method} {path} failed after {attempt + 1} "
                        f"attempt(s): {exc!r}"
                    ) from exc
                time.sleep(
                    backoff_delay_s(
                        self.retry_base_s, 2.0, 1.0,
                        jitter=0.25, seed=0, index=0, attempt=attempt,
                    )
                )
            finally:
                if method != "GET":
                    conn.close()
        raise ServiceError(
            f"{method} {path} failed: {last_error!r}"
        )  # pragma: no cover - loop always returns or raises

    def _json(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        body = (
            None
            if payload is None
            else json.dumps(payload).encode("utf-8")
        )
        status, headers, raw = self._request(
            method, path, body=body, timeout_s=timeout_s
        )
        if status >= 400:
            raise self._error_from_response(status, headers, raw)
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"malformed response for {method} {path}: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ServiceError(
                f"unexpected response shape for {method} {path}"
            )
        return data

    @staticmethod
    def _error_from_response(
        status: int, headers: Dict[str, str], raw: bytes
    ) -> ServiceError:
        kind, message, extra = "error", raw.decode("utf-8", "replace"), {}
        try:
            parsed = json.loads(raw.decode("utf-8"))
            err = parsed.get("error", {})
            kind = str(err.get("kind", kind))
            message = str(err.get("message", message))
            extra = {
                k: v for k, v in err.items() if k not in ("kind", "message")
            }
        except (UnicodeDecodeError, json.JSONDecodeError, AttributeError):
            pass
        if status == 404:
            return JobNotFoundError(message)
        if status == 429:
            depth = extra.get("depth")
            limit = extra.get("limit")
            return ServiceBusyError(
                message,
                depth=None if depth is None else int(depth),
                limit=None if limit is None else int(limit),
            )
        return ServiceError(f"HTTP {status} ({kind}): {message}")

    def _tenant_path(self, suffix: str = "") -> str:
        return f"/v1/{self.tenant}/jobs{suffix}"

    # -- the ServiceClient mirror --------------------------------------
    def submit(self, spec: Optional[JobSpec] = None, **kwargs: Any) -> str:
        """Enqueue one job over the wire; returns its id.

        Raises :class:`~repro.errors.ServiceBusyError` on 429 (the
        tenant's queue is at depth — the ``Retry-After`` hint is
        honoured by backing off before you resubmit) and
        :class:`~repro.errors.ServiceError` on a structured 422
        (malformed or DRC-rejected netlist upload).
        """
        if spec is None:
            spec = JobSpec(**kwargs)
        elif kwargs:
            raise ServiceError(
                "pass either a JobSpec or keyword fields, not both"
            )
        data = self._json("POST", self._tenant_path(), spec.to_dict())
        job = data.get("job")
        if not isinstance(job, dict) or "id" not in job:
            raise ServiceError("submit response carried no job record")
        return str(job["id"])

    def status(self, job_id: str) -> JobRecord:
        data = self._json("GET", self._tenant_path(f"/{job_id}"))
        return JobRecord.from_dict(data.get("job") or {})

    def jobs(self) -> List[JobRecord]:
        data = self._json("GET", self._tenant_path())
        return [
            JobRecord.from_dict(j)
            for j in data.get("jobs", [])
            if isinstance(j, dict)
        ]

    def cancel(self, job_id: str) -> JobRecord:
        data = self._json("DELETE", self._tenant_path(f"/{job_id}"))
        return JobRecord.from_dict(data.get("job") or {})

    def wait(
        self,
        job_id: str,
        timeout_s: Optional[float] = None,
        poll_s: float = 0.2,
        poll_max_s: float = 2.0,
    ) -> JobRecord:
        """Poll over the wire until the job is terminal.

        Same backoff curve as :meth:`ServiceClient.wait`; there is no
        inline fallback here — execution is the server's job.
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        idle_polls = 0
        last_observed: Optional[tuple] = None
        while True:
            job = self.status(job_id)
            if job.terminal:
                return job
            observed = (
                job.state,
                tuple((s.state, s.attempts) for s in job.shards),
            )
            if observed != last_observed:
                idle_polls = 0
                last_observed = observed
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout_s}s waiting for job "
                    f"{job_id} (state: {job.state})"
                )
            time.sleep(
                backoff_delay_s(
                    poll_s, 2.0, poll_max_s,
                    jitter=0.0, seed=0, index=0, attempt=idle_polls,
                )
            )
            idle_polls += 1

    def result(self, job_id: str) -> Dict[str, Any]:
        """The finished job's pattern artefacts (pickle over the wire)."""
        status, headers, raw = self._request(
            "GET", self._tenant_path(f"/{job_id}/result")
        )
        if status >= 400:
            raise self._error_from_response(status, headers, raw)
        payload = pickle.loads(raw)
        if not isinstance(payload, dict):
            raise ServiceError(
                f"corrupt result artefact for job {job_id}"
            )
        return payload

    def report(self, job_id: str) -> Optional[RunReport]:
        try:
            data = self._json(
                "GET", self._tenant_path(f"/{job_id}/report")
            )
        except JobNotFoundError:
            # Distinguish "job unknown" from "no report yet": the
            # server marks the latter with kind=report_missing.
            raise
        except ServiceError:
            raise
        report = data.get("report")
        if report is None:
            return None
        return RunReport.from_dict(report)

    def events(
        self,
        job_id: str,
        timeout_s: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Stream the job's state transitions as decoded NDJSON events.

        Yields each event dict as the server emits it (the connection
        stays open, chunked); ends after the terminal event.  The
        socket timeout is ``timeout_s`` (default: the client's request
        timeout) — a stalled stream raises instead of hanging.
        """
        query = "" if timeout_s is None else f"?timeout_s={timeout_s}"
        conn = self._connection(
            timeout_s if timeout_s is not None else None
        )
        try:
            conn.request(
                "GET", self._tenant_path(f"/{job_id}/events{query}")
            )
            resp = conn.getresponse()
            if resp.status >= 400:
                raw = resp.read()
                raise self._error_from_response(
                    resp.status,
                    {k.lower(): v for k, v in resp.getheaders()},
                    raw,
                )
            while True:
                line = resp.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line.decode("utf-8"))
                if isinstance(event, dict):
                    yield event
        finally:
            conn.close()

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        status, headers, raw = self._request("GET", "/metrics")
        if status >= 400:
            raise self._error_from_response(status, headers, raw)
        return raw.decode("utf-8")
