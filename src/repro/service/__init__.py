"""ATPG-as-a-service: a durable, sharded job backend for the flow.

``repro.service`` turns :func:`repro.core.run_noise_tolerant_flow`
into submit/poll/fetch jobs that survive worker crashes, hangs and
restarts:

* :class:`JobStore` — crash-safe, file-backed job/shard state machine
  (``queued → leased → running → done | failed | dead``, plus
  ``cancelled`` for jobs pulled back before any shard ran) with
  explicit back-pressure;
* :class:`Lease` / :class:`LeaseHeartbeat` — expiring, fenced shard
  ownership; dead or hung workers forfeit their shard after one TTL;
* :class:`ServiceWorker` — claims shards (= flow stages keyed by the
  flow's checkpoint keys) and resumes predecessors' work
  bit-identically from the job's checkpoint store;
* :class:`ServiceSupervisor` — keeps a worker fleet alive, respawns
  crashes, and degrades to in-process serial execution when the fleet
  is gone;
* :class:`ServiceClient` — the file-backed submit/poll/fetch front-end;
* :class:`HttpFrontEnd` / :class:`HttpServerThread` — the stdlib
  asyncio HTTP/1.1 wire API (``/v1/{tenant}/jobs``, NDJSON event
  streaming, Prometheus ``/metrics``), with
  :class:`HttpServiceClient` as its mirror-image client;
* :class:`TenantManager` / :class:`TenantFleet` — auth-less tenant
  namespaces, one lazily created store (and supervised fleet) per
  tenant under a shared data root.

CLI: ``repro serve`` (``--http HOST:PORT`` for the wire API) /
``repro submit`` / ``repro jobs``.
"""

from .client import HttpServiceClient, ServiceClient
from .http import HttpFrontEnd, HttpServerThread
from .jobstore import (
    JOB_CANCELLED,
    JOB_DEAD,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobRecord,
    JobSpec,
    JobStore,
    ServiceConfig,
    ShardRecord,
)
from .lease import Lease, LeaseHeartbeat
from .supervisor import ServiceSupervisor
from .tenants import TenantFleet, TenantManager, validate_tenant_name
from .worker import ServiceWorker, result_payload, run_shard_flow

__all__ = [
    "JOB_CANCELLED",
    "JOB_DEAD",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "HttpFrontEnd",
    "HttpServerThread",
    "HttpServiceClient",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "Lease",
    "LeaseHeartbeat",
    "ServiceClient",
    "ServiceConfig",
    "ServiceSupervisor",
    "ServiceWorker",
    "ShardRecord",
    "TenantFleet",
    "TenantManager",
    "result_payload",
    "run_shard_flow",
    "validate_tenant_name",
]
