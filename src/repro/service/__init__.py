"""ATPG-as-a-service: a durable, sharded job backend for the flow.

``repro.service`` turns :func:`repro.core.run_noise_tolerant_flow`
into submit/poll/fetch jobs that survive worker crashes, hangs and
restarts:

* :class:`JobStore` — crash-safe, file-backed job/shard state machine
  (``queued → leased → running → done | failed | dead``) with
  explicit back-pressure;
* :class:`Lease` / :class:`LeaseHeartbeat` — expiring, fenced shard
  ownership; dead or hung workers forfeit their shard after one TTL;
* :class:`ServiceWorker` — claims shards (= flow stages keyed by the
  flow's checkpoint keys) and resumes predecessors' work
  bit-identically from the job's checkpoint store;
* :class:`ServiceSupervisor` — keeps a worker fleet alive, respawns
  crashes, and degrades to in-process serial execution when the fleet
  is gone;
* :class:`ServiceClient` — the submit/poll/fetch front-end.

CLI: ``repro serve`` / ``repro submit`` / ``repro jobs``.
"""

from .client import ServiceClient
from .jobstore import (
    JOB_DEAD,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobRecord,
    JobSpec,
    JobStore,
    ServiceConfig,
    ShardRecord,
)
from .lease import Lease, LeaseHeartbeat
from .supervisor import ServiceSupervisor
from .worker import ServiceWorker, result_payload, run_shard_flow

__all__ = [
    "JOB_DEAD",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "Lease",
    "LeaseHeartbeat",
    "ServiceClient",
    "ServiceConfig",
    "ServiceSupervisor",
    "ServiceWorker",
    "ShardRecord",
    "result_payload",
    "run_shard_flow",
]
