"""Subprocess entry point: ``python -m repro.service <store> [...]``.

Runs a :class:`~repro.service.worker.ServiceWorker` loop.  This lives
in ``__main__`` (rather than ``-m repro.service.worker``) so runpy
does not re-execute a module the package ``__init__`` already
imported.
"""

from .worker import main

if __name__ == "__main__":
    raise SystemExit(main())
