"""File-backed, crash-safe store of ATPG jobs and their shards.

One :class:`JobStore` directory is the whole service state — no
database, no daemon that must stay alive for the state to exist.  Each
job owns a directory with a single ``job.json`` record (atomic
write-then-rename, fsync'd on both the file and its directory, so a
power cut mid-transition leaves the previous record intact), a
checkpoint directory for its flow stages, and its result artefacts.

The state machine, enforced by the store::

    job:    queued ──► running ──► done | failed | dead
    shard:  queued ──► leased ──► running ──► done
                 ▲         │           │
                 │         └───────────┴──► failed | dead
                 └── reclaim (lease expired / transient failure,
                     attempts < max, backoff applied)

* **queued → leased**: :meth:`claim` grants an expiring, fenced
  :class:`~repro.service.lease.Lease` (see :mod:`repro.service.lease`).
* **leased/running → queued**: the lease expired (worker SIGKILLed,
  hung, or unplugged) or the task raised a
  :class:`~repro.errors.TransientError`; the shard is requeued with
  ``attempts + 1`` and a deterministic exponential backoff shared with
  :func:`repro.perf.resilient.backoff_delay_s`.
* **→ dead**: a shard that has burned ``max_shard_attempts`` leases —
  i.e. killed that many consecutive workers — is *quarantined*: the
  job ends ``dead`` with a synthesized RunReport carrying the full
  failure log, and the queue moves on.  Poison never loops forever.
* **→ failed**: the flow raised a deterministic error; retrying would
  reproduce it, so the job fails immediately.

Shards of one job are sequential (stage *k* consumes stage *k-1*'s RNG
state and cross-graded faults), so :meth:`claim` only ever offers the
first non-``done`` shard of a job; parallelism comes from many jobs in
flight.  Because shard keys are the flow's checkpoint keys, any worker
— or the in-process supervisor — resumes a predecessor's work
bit-identically from the job's :class:`CheckpointStore`.

**Back-pressure** is explicit: :meth:`submit` refuses work beyond
``max_queue_depth`` active jobs with
:class:`~repro.errors.ServiceBusyError`; nothing is ever dropped
silently.
"""

from __future__ import annotations

import fcntl
import json
import os
import pickle
import time
import uuid
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..soc.design import SocDesign

from ..errors import JobNotFoundError, ServiceBusyError, ServiceError
from ..obs import current_telemetry
from ..perf.resilient import RetryPolicy
from ..reporting.runreport import RUN_FAILED, RunReport
from .lease import Lease

#: Job states.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_DEAD = "dead"
JOB_CANCELLED = "cancelled"
JOB_TERMINAL = frozenset({JOB_DONE, JOB_FAILED, JOB_DEAD, JOB_CANCELLED})

#: Shard states.
SHARD_QUEUED = "queued"
SHARD_LEASED = "leased"
SHARD_RUNNING = "running"
SHARD_DONE = "done"
SHARD_FAILED = "failed"
SHARD_DEAD = "dead"
SHARD_TERMINAL = frozenset({SHARD_DONE, SHARD_FAILED, SHARD_DEAD})

_CONFIG_FILE = "config.json"
_JOB_FILE = "job.json"
_FORMAT_VERSION = 1


def _atomic_write_bytes(path: str, data: bytes) -> None:
    """Write-then-rename with fsync on the file *and* its directory.

    After this returns, the new content survives a crash; mid-crash,
    the previous content survives instead.  Readers never observe a
    torn file.
    """
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def _atomic_write_json(path: str, data: Dict[str, Any]) -> None:
    blob = json.dumps(data, indent=1, sort_keys=True, default=str)
    _atomic_write_bytes(path, (blob + "\n").encode("utf-8"))


@dataclass(frozen=True)
class ServiceConfig:
    """Shared knobs of one job store (persisted as ``config.json``).

    Every process that opens the store — submitters, workers, the
    supervisor — reads the same persisted copy, so lease TTLs and
    retry budgets can never disagree across the fleet.
    """

    #: Active (non-terminal) jobs accepted before :meth:`JobStore.submit`
    #: raises :class:`~repro.errors.ServiceBusyError`.
    max_queue_depth: int = 32
    #: Lease TTL: a worker silent this long forfeits its shard.
    lease_ttl_s: float = 30.0
    #: Leases burned before a shard is quarantined as ``dead``
    #: (= consecutive workers it is allowed to kill).
    max_shard_attempts: int = 3
    #: Requeue backoff: ``base * factor**attempt`` capped at ``max``,
    #: plus deterministic jitter — the same curve
    #: :class:`repro.perf.resilient.RetryPolicy` applies to chunks.
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_s: float = 10.0
    backoff_jitter: float = 0.25
    backoff_seed: int = 0

    @property
    def heartbeat_s(self) -> float:
        """Renewal interval: a third of the TTL, so one missed beat is
        survivable and two are not."""
        return self.lease_ttl_s / 3.0

    def retry_policy(self) -> RetryPolicy:
        """The shard retry schedule as a shared
        :class:`~repro.perf.resilient.RetryPolicy`."""
        return RetryPolicy(
            max_attempts=self.max_shard_attempts,
            backoff_base_s=self.backoff_base_s,
            backoff_factor=self.backoff_factor,
            backoff_max_s=self.backoff_max_s,
            jitter=self.backoff_jitter,
            seed=self.backoff_seed,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": _FORMAT_VERSION,
            "max_queue_depth": self.max_queue_depth,
            "lease_ttl_s": self.lease_ttl_s,
            "max_shard_attempts": self.max_shard_attempts,
            "backoff_base_s": self.backoff_base_s,
            "backoff_factor": self.backoff_factor,
            "backoff_max_s": self.backoff_max_s,
            "backoff_jitter": self.backoff_jitter,
            "backoff_seed": self.backoff_seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServiceConfig":
        return cls(
            max_queue_depth=int(data.get("max_queue_depth", 32)),
            lease_ttl_s=float(data.get("lease_ttl_s", 30.0)),
            max_shard_attempts=int(data.get("max_shard_attempts", 3)),
            backoff_base_s=float(data.get("backoff_base_s", 0.25)),
            backoff_factor=float(data.get("backoff_factor", 2.0)),
            backoff_max_s=float(data.get("backoff_max_s", 10.0)),
            backoff_jitter=float(data.get("backoff_jitter", 0.25)),
            backoff_seed=int(data.get("backoff_seed", 0)),
        )


@dataclass(frozen=True)
class JobSpec:
    """What to run: one staged noise-tolerant flow, parameterised.

    The spec is the *whole* definition of the job's results — shard
    execution derives everything else (design, stage plan, checkpoint
    fingerprint) deterministically from it, which is what makes a
    reclaimed shard's rerun bit-identical.
    """

    #: Design scale (``tiny``/``small``/``bench``/``full``).
    scale: str = "tiny"
    #: SOC generator seed.
    seed: int = 2007
    #: ATPG engine seed.
    flow_seed: int = 1
    #: Total pattern budget across stages (``None`` = unbounded).
    max_patterns: Optional[int] = None
    #: Persist per-shard obs artefacts (trace + metrics) in the job dir.
    telemetry: bool = False
    #: Deterministic fault injection for chaos tests, e.g.
    #: ``{"kill_shard": 1}`` (SIGKILL own process when shard 1 starts)
    #: or ``{"fail_shard": 0}`` (raise TransientError).  Test-only.
    chaos: Optional[Dict[str, int]] = None
    #: External design: structural Verilog text (the subset
    #: :mod:`repro.netlist.verilog` round-trips).  When set, ``scale``
    #: and ``seed`` are ignored — the design is reconstructed from this
    #: text (see :func:`repro.soc.design_from_netlist`) and the stage
    #: plan derived from it (:func:`repro.soc.derive_stage_plan`), both
    #: deterministically, so every worker re-derives the same shards.
    netlist_verilog: Optional[str] = None

    def build_design_and_plan(
        self,
    ) -> Tuple["SocDesign", Sequence[Sequence[str]]]:
        """``(design, stage_plan)`` this spec runs — the single source
        shared by :meth:`shard_names`, the worker and the server-side
        DRC gate, so all three agree bit-for-bit."""
        if self.netlist_verilog is not None:
            import io

            from ..netlist.verilog import parse_verilog
            from ..soc import derive_stage_plan, design_from_netlist

            design = design_from_netlist(
                parse_verilog(io.StringIO(self.netlist_verilog))
            )
            return design, derive_stage_plan(design)
        from ..core.flow import STAGE_PLAN_TURBO_EAGLE
        from ..soc import build_turbo_eagle

        design = build_turbo_eagle(scale=self.scale, seed=self.seed)
        return design, STAGE_PLAN_TURBO_EAGLE

    def shard_names(self) -> List[str]:
        """The job's shard keys — the flow's stage/checkpoint keys."""
        from ..core.flow import flow_stage_names

        if self.netlist_verilog is None:
            return flow_stage_names()
        _, plan = self.build_design_and_plan()
        return flow_stage_names(plan)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "flow_seed": self.flow_seed,
            "max_patterns": self.max_patterns,
            "telemetry": self.telemetry,
            "chaos": dict(self.chaos) if self.chaos else None,
            "netlist_verilog": self.netlist_verilog,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        max_patterns = data.get("max_patterns")
        chaos = data.get("chaos")
        netlist = data.get("netlist_verilog")
        return cls(
            scale=str(data.get("scale", "tiny")),
            seed=int(data.get("seed", 2007)),
            flow_seed=int(data.get("flow_seed", 1)),
            max_patterns=None if max_patterns is None else int(max_patterns),
            telemetry=bool(data.get("telemetry", False)),
            chaos=None if chaos is None else {
                str(k): int(v) for k, v in chaos.items()
            },
            netlist_verilog=None if netlist is None else str(netlist),
        )


@dataclass
class ShardRecord:
    """One schedulable unit of a job: one flow stage."""

    index: int
    name: str
    state: str = SHARD_QUEUED
    #: Leases burned so far (granted and then lost or failed).
    attempts: int = 0
    #: Earliest wall-clock time the shard may be claimed again.
    not_before: float = 0.0
    #: Monotonic fencing-token counter; each grant increments it.
    next_token: int = 0
    lease: Optional[Lease] = None
    #: Append-only failure log: every lost lease / failed attempt.
    failures: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "name": self.name,
            "state": self.state,
            "attempts": self.attempts,
            "not_before": self.not_before,
            "next_token": self.next_token,
            "lease": self.lease.to_dict() if self.lease else None,
            "failures": list(self.failures),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardRecord":
        lease = data.get("lease")
        return cls(
            index=int(data["index"]),
            name=str(data["name"]),
            state=str(data.get("state", SHARD_QUEUED)),
            attempts=int(data.get("attempts", 0)),
            not_before=float(data.get("not_before", 0.0)),
            next_token=int(data.get("next_token", 0)),
            lease=None if lease is None else Lease.from_dict(lease),
            failures=[dict(f) for f in data.get("failures", [])],
        )


@dataclass
class JobRecord:
    """One submitted job: a spec plus the live state of its shards."""

    id: str
    spec: JobSpec
    state: str = JOB_QUEUED
    shards: List[ShardRecord] = field(default_factory=list)
    seq: int = 0
    created_at: float = 0.0
    updated_at: float = 0.0
    error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in JOB_TERMINAL

    def shard(self, index: int) -> ShardRecord:
        if not 0 <= index < len(self.shards):
            raise ServiceError(
                f"job {self.id} has no shard {index} "
                f"(0..{len(self.shards) - 1})"
            )
        return self.shards[index]

    def active_shard(self) -> Optional[ShardRecord]:
        """The first shard that is not ``done`` (sequential execution),
        or ``None`` when every shard finished."""
        for shard in self.shards:
            if shard.state != SHARD_DONE:
                return shard
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": _FORMAT_VERSION,
            "id": self.id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "shards": [s.to_dict() for s in self.shards],
            "seq": self.seq,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        return cls(
            id=str(data["id"]),
            spec=JobSpec.from_dict(data.get("spec") or {}),
            state=str(data.get("state", JOB_QUEUED)),
            shards=[
                ShardRecord.from_dict(s) for s in data.get("shards", [])
            ],
            seq=int(data.get("seq", 0)),
            created_at=float(data.get("created_at", 0.0)),
            updated_at=float(data.get("updated_at", 0.0)),
            error=data.get("error"),
        )


class JobStore:
    """The durable job/shard state machine under one directory.

    All *transitions* run under an exclusive ``flock`` on
    ``<root>/.lock`` (read-modify-write of a job record is a critical
    section across worker processes); *reads* are lock-free because
    every write is an atomic rename.  Methods take an optional ``now``
    so tests can drive lease expiry without sleeping.
    """

    def __init__(
        self, root: str, config: Optional[ServiceConfig] = None
    ) -> None:
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.workers_dir = os.path.join(self.root, "workers")
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.workers_dir, exist_ok=True)
        self._lock_path = os.path.join(self.root, ".lock")
        self._config_path = os.path.join(self.root, _CONFIG_FILE)
        if config is not None:
            self.config = config
            _atomic_write_json(self._config_path, config.to_dict())
        elif os.path.exists(self._config_path):
            with open(self._config_path) as fh:
                self.config = ServiceConfig.from_dict(json.load(fh))
        else:
            self.config = ServiceConfig()
            _atomic_write_json(self._config_path, self.config.to_dict())

    # -- paths ----------------------------------------------------------
    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id)

    def checkpoint_dir(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "checkpoints")

    def report_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "report.json")

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "result.pkl")

    def obs_dir(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "obs")

    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), _JOB_FILE)

    # -- locking / record IO -------------------------------------------
    @contextmanager
    def _lock(self) -> Iterator[None]:
        fd = os.open(self._lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def _read_job(self, job_id: str) -> JobRecord:
        path = self._job_path(job_id)
        try:
            with open(path) as fh:
                return JobRecord.from_dict(json.load(fh))
        except FileNotFoundError:
            raise JobNotFoundError(
                f"no job {job_id!r} in store {self.root!r}"
            ) from None
        except (OSError, json.JSONDecodeError, KeyError, ValueError) as exc:
            raise ServiceError(
                f"unreadable job record {path!r}: {exc}"
            ) from exc

    def _write_job(self, job: JobRecord, now: Optional[float] = None) -> None:
        job.updated_at = time.time() if now is None else now
        _atomic_write_json(self._job_path(job.id), job.to_dict())

    def _job_ids(self) -> List[str]:
        try:
            names = os.listdir(self.jobs_dir)
        except OSError:
            return []
        return [
            n for n in names
            if os.path.exists(self._job_path(n))
        ]

    # -- queries (lock-free) -------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        return self._read_job(job_id)

    def list_jobs(self) -> List[JobRecord]:
        jobs: List[JobRecord] = []
        for job_id in self._job_ids():
            try:
                jobs.append(self._read_job(job_id))
            except ServiceError as exc:
                warnings.warn(
                    f"skipping unreadable job record: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        jobs.sort(key=lambda j: (j.seq, j.id))
        return jobs

    def active_jobs(self) -> List[JobRecord]:
        return [j for j in self.list_jobs() if not j.terminal]

    def queue_depth(self) -> int:
        """Active (non-terminal) jobs — the back-pressure measure."""
        return len(self.active_jobs())

    def pending_work(self, now: Optional[float] = None) -> bool:
        """True while any job still needs (or is receiving) work."""
        return bool(self.active_jobs())

    # -- submission (back-pressure) ------------------------------------
    def submit(self, spec: JobSpec, now: Optional[float] = None) -> JobRecord:
        """Durably enqueue one job; refuse loudly past the depth limit.

        Submission succeeds whether or not any worker is alive — a
        supervisor (or :meth:`ServiceClient.wait`'s inline fallback)
        can always drain the queue in-process.
        """
        now = time.time() if now is None else now
        tel = current_telemetry()
        with self._lock():
            depth = self.queue_depth()
            if depth >= self.config.max_queue_depth:
                tel.count("service.submits_rejected")
                raise ServiceBusyError(
                    f"job queue at depth limit "
                    f"({depth}/{self.config.max_queue_depth} active "
                    f"jobs); retry later",
                    depth=depth,
                    limit=self.config.max_queue_depth,
                )
            seq = self._next_seq()
            job_id = f"j{seq:06d}-{uuid.uuid4().hex[:8]}"
            shards = [
                ShardRecord(index=i, name=name)
                for i, name in enumerate(spec.shard_names())
            ]
            if not shards:
                raise ServiceError("job spec produced zero shards")
            job = JobRecord(
                id=job_id,
                spec=spec,
                state=JOB_QUEUED,
                shards=shards,
                seq=seq,
                created_at=now,
            )
            os.makedirs(self.job_dir(job_id), exist_ok=True)
            os.makedirs(self.checkpoint_dir(job_id), exist_ok=True)
            self._write_job(job, now)
            tel.count("service.jobs_submitted")
            tel.gauge_set("service.queue_depth", depth + 1)
        return job

    def cancel(self, job_id: str, now: Optional[float] = None) -> JobRecord:
        """``queued → cancelled``; any other state is a loud error.

        Only a job no worker has touched can be cancelled — once a
        shard is leased the job is ``running`` and the honest answers
        are "wait" or "let it finish".  Raises
        :class:`~repro.errors.JobNotFoundError` for unknown ids and
        :class:`~repro.errors.ServiceError` naming the actual state
        otherwise, so callers (and the HTTP DELETE route) can tell
        "already running" from "never existed".  Cancellation is
        terminal: it frees the job's back-pressure slot immediately.
        """
        now = time.time() if now is None else now
        with self._lock():
            job = self._read_job(job_id)
            if job.state != JOB_QUEUED:
                raise ServiceError(
                    f"job {job_id} is {job.state!r}, not {JOB_QUEUED!r}; "
                    f"only queued jobs can be cancelled"
                )
            job.state = JOB_CANCELLED
            job.error = "cancelled before any shard ran"
            self._write_job(job, now)
            tel = current_telemetry()
            tel.count("service.jobs_cancelled")
            tel.gauge_set("service.queue_depth", self.queue_depth())
        return job

    def _next_seq(self) -> int:
        """Monotonic submission counter (caller holds the lock)."""
        path = os.path.join(self.jobs_dir, ".seq")
        seq = 0
        try:
            with open(path) as fh:
                seq = int(fh.read().strip() or 0)
        except (OSError, ValueError):
            pass
        seq += 1
        _atomic_write_bytes(path, str(seq).encode("ascii"))
        return seq

    # -- claiming and leases -------------------------------------------
    def claim(
        self, worker: str, now: Optional[float] = None
    ) -> Optional[Tuple[JobRecord, ShardRecord]]:
        """Lease the oldest runnable shard to *worker*, or ``None``.

        Expired leases encountered during the scan are reclaimed first
        (lazy reaping), so a fleet of plain workers needs no separate
        janitor for progress — the supervisor's periodic
        :meth:`reap_expired` only tightens latency.
        """
        now = time.time() if now is None else now
        with self._lock():
            for job in self.active_jobs():
                changed = self._reap_job(job, now)
                if job.terminal:
                    if changed:
                        self._write_job(job, now)
                    continue
                shard = job.active_shard()
                claimable = (
                    shard is not None
                    and shard.state == SHARD_QUEUED
                    and shard.not_before <= now
                )
                if shard is None or not claimable:
                    if changed:
                        self._write_job(job, now)
                    continue
                assert shard is not None
                shard.next_token += 1
                shard.lease = Lease(
                    worker=worker,
                    token=shard.next_token,
                    expires_at=now + self.config.lease_ttl_s,
                )
                shard.state = SHARD_LEASED
                if job.state == JOB_QUEUED:
                    job.state = JOB_RUNNING
                self._write_job(job, now)
                return job, shard
        return None

    def heartbeat(
        self,
        job_id: str,
        shard_index: int,
        worker: str,
        token: int,
        now: Optional[float] = None,
    ) -> bool:
        """Extend the lease; ``False`` means it is no longer ours."""
        now = time.time() if now is None else now
        with self._lock():
            try:
                job = self._read_job(job_id)
            except ServiceError:
                return False
            shard = job.shards[shard_index]
            if (
                shard.state not in (SHARD_LEASED, SHARD_RUNNING)
                or shard.lease is None
                or not shard.lease.matches(worker, token)
            ):
                return False
            shard.lease.expires_at = now + self.config.lease_ttl_s
            self._write_job(job, now)
            return True

    def start_shard(
        self,
        job_id: str,
        shard_index: int,
        worker: str,
        token: int,
        now: Optional[float] = None,
    ) -> bool:
        """``leased → running``; ``False`` when the lease was lost."""
        now = time.time() if now is None else now
        with self._lock():
            job = self._read_job(job_id)
            shard = job.shard(shard_index)
            if (
                shard.state != SHARD_LEASED
                or shard.lease is None
                or not shard.lease.matches(worker, token)
            ):
                return False
            shard.state = SHARD_RUNNING
            self._write_job(job, now)
            return True

    def complete_shard(
        self,
        job_id: str,
        shard_index: int,
        worker: str,
        token: int,
        now: Optional[float] = None,
    ) -> bool:
        """``running → done`` under the fencing token.

        ``False`` means the lease was reclaimed while the worker was
        stalled: its (identical, but unaccounted) result is discarded
        and the replacement worker's execution is the one of record.
        """
        now = time.time() if now is None else now
        tel = current_telemetry()
        with self._lock():
            job = self._read_job(job_id)
            shard = job.shard(shard_index)
            if (
                shard.state not in (SHARD_LEASED, SHARD_RUNNING)
                or shard.lease is None
                or not shard.lease.matches(worker, token)
            ):
                return False
            shard.state = SHARD_DONE
            shard.lease = None
            tel.count("service.shards_completed")
            if all(s.state == SHARD_DONE for s in job.shards):
                job.state = JOB_DONE
                tel.count("service.jobs_completed")
                tel.gauge_set("service.queue_depth", self.queue_depth() - 1)
            self._write_job(job, now)
            return True

    def fail_shard(
        self,
        job_id: str,
        shard_index: int,
        worker: str,
        token: int,
        error: str,
        retryable: bool = False,
        now: Optional[float] = None,
    ) -> bool:
        """Record a failed attempt under the fencing token.

        *retryable* failures (transient errors) requeue with backoff
        until the attempt budget quarantines the shard; deterministic
        failures end the job as ``failed`` immediately — rerunning a
        bug reproduces it.
        """
        now = time.time() if now is None else now
        with self._lock():
            job = self._read_job(job_id)
            shard = job.shard(shard_index)
            if (
                shard.state not in (SHARD_LEASED, SHARD_RUNNING)
                or shard.lease is None
                or not shard.lease.matches(worker, token)
            ):
                return False
            kind = "transient" if retryable else "error"
            self._record_failure(shard, worker, kind, error, now)
            if retryable:
                self._requeue_or_quarantine(job, shard, now)
            else:
                shard.state = SHARD_FAILED
                shard.lease = None
                job.state = JOB_FAILED
                job.error = error
                current_telemetry().count("service.jobs_failed")
                self._write_failure_report(job)
            self._write_job(job, now)
            return True

    # -- reaping / quarantine ------------------------------------------
    def reap_expired(self, now: Optional[float] = None) -> int:
        """Reclaim every expired lease; returns how many were reaped."""
        now = time.time() if now is None else now
        reaped = 0
        with self._lock():
            for job in self.active_jobs():
                if self._reap_job(job, now):
                    reaped += 1
                    self._write_job(job, now)
        return reaped

    def _reap_job(self, job: JobRecord, now: float) -> bool:
        """Reclaim the job's expired lease, if any (lock held)."""
        shard = job.active_shard()
        if (
            shard is None
            or shard.state not in (SHARD_LEASED, SHARD_RUNNING)
            or shard.lease is None
            or not shard.lease.expired(now)
        ):
            return False
        tel = current_telemetry()
        tel.count("service.leases_expired")
        self._record_failure(
            shard,
            shard.lease.worker,
            "lease_expired",
            f"lease expired after {self.config.lease_ttl_s}s "
            f"(worker {shard.lease.worker} presumed dead or hung)",
            now,
        )
        self._requeue_or_quarantine(job, shard, now)
        return True

    def _record_failure(
        self,
        shard: ShardRecord,
        worker: str,
        kind: str,
        error: str,
        now: float,
    ) -> None:
        shard.failures.append({
            "time": now,
            "worker": worker,
            "attempt": shard.attempts,
            "kind": kind,
            "error": error,
        })

    def _requeue_or_quarantine(
        self, job: JobRecord, shard: ShardRecord, now: float
    ) -> None:
        """Burn one attempt: backoff-requeue, or quarantine past the cap."""
        tel = current_telemetry()
        shard.attempts += 1
        shard.lease = None
        if shard.attempts >= self.config.max_shard_attempts:
            shard.state = SHARD_DEAD
            job.state = JOB_DEAD
            job.error = (
                f"shard {shard.name!r} quarantined after "
                f"{shard.attempts} failed attempt(s); see failure log"
            )
            tel.count("service.shards_quarantined")
            self._write_failure_report(job)
            return
        shard.state = SHARD_QUEUED
        policy = self.config.retry_policy()
        shard.not_before = now + policy.backoff_s(
            shard.index, shard.attempts - 1
        )
        tel.count("service.shard_retries")

    def _write_failure_report(self, job: JobRecord) -> None:
        """Synthesize the job's RunReport with the failure log intact.

        Written on quarantine and deterministic failure so a dead job
        always answers "what happened?" the same way a crashed
        in-process flow does — stage statuses plus the per-attempt
        failure log — even when the workers died without a word.
        """
        report = RunReport(
            flow="service:noise_aware_staged",
            status=RUN_FAILED,
            checkpoint_dir=self.checkpoint_dir(job.id),
            error=job.error,
        )
        status_map = {
            SHARD_DONE: "completed",
            SHARD_FAILED: "failed",
            SHARD_DEAD: "failed",
        }
        for shard in job.shards:
            report.record_stage(
                shard.name,
                status_map.get(shard.state, "pending"),
                detail={
                    "shard_state": shard.state,
                    "attempts": shard.attempts,
                },
            )
        for shard in job.shards:
            for failure in shard.failures:
                entry = dict(failure)
                entry["stage"] = shard.name
                report.failures.append(entry)
        report.save(self.report_path(job.id))

    # -- results --------------------------------------------------------
    def save_result(self, job_id: str, payload: Dict[str, Any]) -> None:
        """Persist the finished job's pattern artefacts atomically."""
        _atomic_write_bytes(
            self.result_path(job_id),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def load_result(self, job_id: str) -> Dict[str, Any]:
        path = self.result_path(job_id)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            raise ServiceError(
                f"job {job_id} has no result artefact (state: "
                f"{self.get(job_id).state})"
            ) from None
        if not isinstance(payload, dict):
            raise ServiceError(
                f"corrupt result artefact for job {job_id}: {path!r}"
            )
        return payload

    def load_report(self, job_id: str) -> Optional[RunReport]:
        path = self.report_path(job_id)
        if not os.path.exists(path):
            return None
        return RunReport.load(path)

    # -- worker registry ------------------------------------------------
    def _worker_path(self, worker_id: str) -> str:
        return os.path.join(self.workers_dir, f"{worker_id}.json")

    def register_worker(
        self, worker_id: str, pid: int, now: Optional[float] = None
    ) -> None:
        now = time.time() if now is None else now
        _atomic_write_json(
            self._worker_path(worker_id),
            {"pid": pid, "heartbeat_at": now},
        )

    def worker_heartbeat(
        self, worker_id: str, now: Optional[float] = None
    ) -> None:
        self.register_worker(worker_id, os.getpid(), now)

    def deregister_worker(self, worker_id: str) -> None:
        try:
            os.remove(self._worker_path(worker_id))
        except OSError:
            pass

    def alive_workers(self, now: Optional[float] = None) -> List[str]:
        """Workers whose registry heartbeat is within one lease TTL."""
        now = time.time() if now is None else now
        alive: List[str] = []
        try:
            names = os.listdir(self.workers_dir)
        except OSError:
            return alive
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.workers_dir, name)) as fh:
                    data = json.load(fh)
                beat = float(data.get("heartbeat_at", 0.0))
            except (OSError, json.JSONDecodeError, ValueError):
                continue
            if now - beat <= self.config.lease_ttl_s:
                alive.append(name[: -len(".json")])
        return sorted(alive)
