"""repro — supply-voltage-noise-aware transition delay fault ATPG.

A full open-source reproduction of Ahmed, Tehranipoor & Jayaram,
"Transition Delay Fault Test Pattern Generation Considering Supply
Voltage Noise in a SOC Design" (DAC 2007): a synthetic industrial-style
SOC, a gate-level timing simulator, a LOC transition-fault ATPG with
configurable don't-care fill, power-grid IR-drop analysis, the SCAP
power metric and the staged noise-tolerant pattern-generation flow.

Quickstart
----------
>>> from repro import CaseStudy
>>> study = CaseStudy(scale="tiny")
>>> study.headline_comparison()  # doctest: +SKIP

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .config import ElectricalEnv, K_VOLT, VDD_NOMINAL
from .context import RunContext, current_run_context, use_run_context
from .drc import DrcReport, Violation, check_design, run_drc
from .core import (
    CaseStudy,
    ConventionalFlow,
    NoiseAwarePatternGenerator,
    derive_scap_thresholds,
    ir_scaled_endpoint_comparison,
    run_noise_tolerant_flow,
    validate_pattern_set,
)
from .perf import (
    PatternProfileCache,
    RetryPolicy,
    execution_policy,
    pool_map,
    resilient_map,
)
from .power import PatternPowerProfile, ScapCalculator
from .reporting import CheckpointStore, RunReport
from .timing import (
    DroopBoundAnalyzer,
    DroopBoundReport,
    prescreen_pattern_set,
    prescreened_endpoint_comparison,
)
from .service import (
    JobSpec,
    JobStore,
    ServiceClient,
    ServiceConfig,
    ServiceSupervisor,
    ServiceWorker,
)
from .soc import SocDesign, build_turbo_eagle

__version__ = "1.0.0"

__all__ = [
    "CaseStudy",
    "CheckpointStore",
    "ConventionalFlow",
    "DrcReport",
    "ElectricalEnv",
    "JobSpec",
    "JobStore",
    "K_VOLT",
    "NoiseAwarePatternGenerator",
    "PatternPowerProfile",
    "PatternProfileCache",
    "RetryPolicy",
    "RunReport",
    "ScapCalculator",
    "ServiceClient",
    "ServiceConfig",
    "ServiceSupervisor",
    "ServiceWorker",
    "SocDesign",
    "VDD_NOMINAL",
    "Violation",
    "RunContext",
    "build_turbo_eagle",
    "check_design",
    "current_run_context",
    "derive_scap_thresholds",
    "execution_policy",
    "DroopBoundAnalyzer",
    "DroopBoundReport",
    "ir_scaled_endpoint_comparison",
    "prescreen_pattern_set",
    "prescreened_endpoint_comparison",
    "pool_map",
    "resilient_map",
    "run_drc",
    "run_noise_tolerant_flow",
    "use_run_context",
    "validate_pattern_set",
    "__version__",
]
